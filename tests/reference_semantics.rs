//! Differential testing of the production simulator against a naive
//! reference interpreter transcribed rule-by-rule from the paper's Figure 6
//! (Transition, Dispatch, Trace, and Network relations).
//!
//! The reference interpreter keeps every configuration explicit, scans the
//! whole pulse list for the earliest batch (`getSimPulses`), and applies the
//! Normal-κ / Error-κ rules literally — no heaps, no indices, no caching.
//! Any divergence from `rlse::core::sim` on the same circuit is a bug in
//! one of the two.

use proptest::prelude::*;
use rlse::core::circuit::NodeId;
use rlse::core::machine::{Config, InputId, Machine};
use rlse::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

// ------------------------------------------------------------ reference

/// A pending pulse headed for (node, port).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RefPulse {
    time: f64,
    node: usize,
    port: usize,
}

/// Naive network interpreter per Fig. 6. Returns events per wire name or
/// the violation, exactly like the production simulator.
fn reference_run(circ: &Circuit) -> Result<BTreeMap<String, Vec<f64>>, String> {
    let mut events: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut configs: BTreeMap<usize, Config> = BTreeMap::new();
    for n in 0..circ.node_count() {
        if let Some(m) = circ.node_machine(NodeId(n)) {
            configs.insert(n, m.initial_config());
        }
    }
    // Initial pulse list: stimulus pulses routed through their wires.
    let mut ps: Vec<RefPulse> = Vec::new();
    for n in 0..circ.node_count() {
        let node = NodeId(n);
        if let Some(times) = circ.node_source_times(node) {
            let w = circ.node_out_wires(node)[0];
            for &t in times {
                events
                    .entry(circ.wire_name(w).to_string())
                    .or_default()
                    .push(t);
                if let Some((sink, port)) = circ.wire_sink(w) {
                    ps.push(RefPulse {
                        time: t,
                        node: sink.0,
                        port,
                    });
                }
            }
        }
    }

    // Net-Cont until no pulse remains (Net-Done).
    // getSimPulses: earliest time, then (deterministically) the lowest
    // node id at that time; collect its simultaneous set.
    while let Some(time) = ps.iter().map(|p| p.time).min_by(f64::total_cmp) {
        let node = ps
            .iter()
            .filter(|p| p.time == time)
            .map(|p| p.node)
            .min()
            .expect("nonempty");
        let batch: Vec<RefPulse> = ps
            .iter()
            .copied()
            .filter(|p| p.time == time && p.node == node)
            .collect();
        ps.retain(|p| !(p.time == time && p.node == node));

        let spec: Arc<Machine> = circ
            .node_machine(NodeId(node))
            .expect("reference interpreter only handles machines")
            .clone();
        let cfg = configs.get(&node).expect("config").clone();
        let sigmas: Vec<InputId> = batch.iter().map(|p| InputId(p.port)).collect();
        // Dispatch relation, transcribed: repeatedly pick the argmin-priority
        // input, apply the Transition relation, accumulate outputs.
        let mut rest = sigmas;
        let mut cur = cfg;
        let mut outs: Vec<(usize, f64)> = Vec::new();
        while !rest.is_empty() {
            let (pos, _) = rest
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| {
                    let t = spec.transition_for(cur.state, **s);
                    (t.priority, s.0)
                })
                .expect("nonempty");
            let sigma = rest.remove(pos);
            match spec.step(&cur, sigma, time) {
                Ok((next, fired)) => {
                    cur = next;
                    outs.extend(fired.into_iter().map(|(o, t)| (o.0, t)));
                }
                Err(v) => return Err(format!("{v:?}")),
            }
        }
        configs.insert(node, cur);
        // Route outputs.
        for (oport, t_out) in outs {
            let w = circ.node_out_wires(NodeId(node))[oport];
            events
                .entry(circ.wire_name(w).to_string())
                .or_default()
                .push(t_out);
            if let Some((sink, port)) = circ.wire_sink(w) {
                ps.push(RefPulse {
                    time: t_out,
                    node: sink.0,
                    port,
                });
            }
        }
    }
    for v in events.values_mut() {
        v.sort_by(f64::total_cmp);
    }
    Ok(events)
}

// ------------------------------------------------------- random circuits

fn cell_pool() -> Vec<Arc<Machine>> {
    vec![
        rlse::cells::defs::jtl_elem(),
        rlse::cells::defs::s_elem(),
        rlse::cells::defs::m_elem(),
        rlse::cells::defs::c_elem(),
        rlse::cells::defs::c_inv_elem(),
        rlse::cells::extra::tff_elem(),
    ]
}

/// Build a random feed-forward circuit: `n_in` sources with staggered pulse
/// times, then cells drawn from `picks`, consuming the frontier of unused
/// wires (keeping everything fanout-legal by construction).
fn random_circuit(picks: &[u8], n_in: usize) -> Circuit {
    let mut circ = Circuit::new();
    // Widely spaced input pulses so async decision cells never see
    // violation-close pairs regardless of topology.
    let mut frontier: Vec<Wire> = (0..n_in)
        .map(|i| circ.inp_at(&[40.0 + 40.0 * i as f64], &format!("I{i}")))
        .collect();
    let pool = cell_pool();
    for &pick in picks {
        if frontier.is_empty() {
            break;
        }
        let spec = &pool[(pick as usize) % pool.len()];
        let need = spec.inputs().len();
        if frontier.len() < need {
            // Not enough frontier wires for this cell: use a JTL instead.
            let w = frontier.remove(0);
            let q = circ.add_machine(&pool[0], &[w]).unwrap()[0];
            frontier.push(q);
            continue;
        }
        let ins: Vec<Wire> = frontier.drain(..need).collect();
        let outs = circ.add_machine(spec, &ins).unwrap();
        frontier.extend(outs);
    }
    for (i, w) in frontier.iter().enumerate() {
        circ.inspect(*w, &format!("O{i}"));
    }
    circ
}

// ------------------------------------------------------------ the tests

fn assert_equivalent(circ_a: Circuit, circ_b: Circuit) {
    let reference = reference_run(&circ_a);
    let mut sim = Simulation::new(circ_b);
    let production = sim.run();
    match (reference, production) {
        (Ok(r), Ok(p)) => {
            for (name, times) in &r {
                let got = p.times(name);
                assert_eq!(
                    got.len(),
                    times.len(),
                    "pulse count differs on '{name}': ref {times:?} vs sim {got:?}"
                );
                for (a, b) in times.iter().zip(got) {
                    assert!((a - b).abs() < 1e-9, "'{name}': ref {a} vs sim {b}");
                }
            }
        }
        (Err(_), Err(_)) => {} // both detected a violation: equivalent
        (r, p) => panic!("divergence: reference {r:?} vs production {p:?}"),
    }
}

#[test]
fn reference_matches_simulator_on_min_max() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.inp_at(&[115.0, 215.0, 315.0], "A");
        let b = c.inp_at(&[64.0, 184.0, 304.0], "B");
        let (low, high) = rlse::designs::min_max(&mut c, a, b).unwrap();
        c.inspect(low, "LOW");
        c.inspect(high, "HIGH");
        c
    };
    assert_equivalent(build(), build());
}

#[test]
fn reference_matches_simulator_on_bitonic_4() {
    let build = || {
        let mut c = Circuit::new();
        rlse::designs::bitonic_sorter_with_inputs(&mut c, &[90.0, 20.0, 60.0, 40.0]).unwrap();
        c
    };
    assert_equivalent(build(), build());
}

#[test]
fn reference_matches_simulator_on_violating_circuit() {
    // Two near-simultaneous pulses into a C element violate its transition
    // time; both engines must flag it.
    let build = || {
        let mut c = Circuit::new();
        let a = c.inp_at(&[20.0], "A");
        let b = c.inp_at(&[20.5], "B");
        let q = rlse::cells::c(&mut c, a, b).unwrap();
        c.inspect(q, "Q");
        c
    };
    assert_equivalent(build(), build());
    // And confirm both actually error (not both silently succeed).
    assert!(reference_run(&build()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The production simulator and the Fig. 6 reference interpreter agree
    /// on random feed-forward circuits.
    #[test]
    fn reference_matches_simulator_on_random_circuits(
        picks in proptest::collection::vec(0u8..6, 1..24),
        n_in in 1usize..5,
    ) {
        let a = random_circuit(&picks, n_in);
        let b = random_circuit(&picks, n_in);
        assert_equivalent(a, b);
    }
}
