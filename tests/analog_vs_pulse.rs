//! Cross-level agreement (Table 2 / Fig. 16 methodology): the same circuit
//! description simulated at the pulse-transfer level and at the
//! schematic (analog) level must agree on *which* pulses appear and in what
//! order — even though the analog delays differ, exactly as the paper
//! observes for Cadence vs PyLSE.

use rlse::analog::synth::from_circuit;
use rlse::designs::min_max;
use rlse::prelude::*;

fn pulse_orders_agree(pulse: &Events, analog: &rlse::analog::engine::AnalogEvents) {
    // Same set of observed output wires, same pulse counts, same order of
    // first arrivals across wires.
    for (wire, times) in &analog.pulses {
        let expected = pulse.times(wire);
        assert_eq!(
            expected.len(),
            times.len(),
            "pulse count differs on '{wire}': pulse={expected:?} analog={times:?}"
        );
    }
}

#[test]
fn min_max_levels_agree_on_function() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.inp_at(&[115.0], "A");
        let b = c.inp_at(&[64.0], "B");
        let (low, high) = min_max(&mut c, a, b).unwrap();
        c.inspect(low, "LOW");
        c.inspect(high, "HIGH");
        c
    };
    let pulse_events = Simulation::new(build()).run().unwrap();
    let mut analog = from_circuit(&build()).unwrap();
    let analog_events = analog.run(300.0);
    pulse_orders_agree(&pulse_events, &analog_events);
    // The earlier input must reach LOW before HIGH fires, at both levels.
    let a_low = analog_events.pulses["LOW"][0];
    let a_high = analog_events.pulses["HIGH"][0];
    assert!(a_low < a_high);
    assert!(pulse_events.times("LOW")[0] < pulse_events.times("HIGH")[0]);
}

#[test]
fn c_element_levels_agree_over_three_rounds() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.inp_at(&[100.0, 220.0, 340.0], "A");
        let b = c.inp_at(&[130.0, 250.0, 370.0], "B");
        let q = rlse::cells::c(&mut c, a, b).unwrap();
        c.inspect(q, "Q");
        c
    };
    let pulse_events = Simulation::new(build()).run().unwrap();
    let mut analog = from_circuit(&build()).unwrap();
    let analog_events = analog.run(450.0);
    assert_eq!(pulse_events.times("Q").len(), 3);
    pulse_orders_agree(&pulse_events, &analog_events);
}

#[test]
fn analog_baseline_is_much_slower_than_pulse_level() {
    // The Table 2 shape: per-timestep ODE integration vs per-event
    // processing. Compare wall-clock on the min-max pair. Uses the naive
    // reference engine: it is the honest "what schematic simulation costs"
    // datapoint (the gated engine deliberately closes part of this gap).
    let build = || {
        let mut c = Circuit::new();
        let a = c.inp_at(&[115.0, 215.0, 315.0], "A");
        let b = c.inp_at(&[64.0, 184.0, 304.0], "B");
        let (low, high) = min_max(&mut c, a, b).unwrap();
        c.inspect(low, "LOW");
        c.inspect(high, "HIGH");
        c
    };
    let t0 = std::time::Instant::now();
    let mut sim = Simulation::new(build());
    for _ in 0..5 {
        sim.run().unwrap();
    }
    let pulse_time = t0.elapsed().as_secs_f64() / 5.0;

    let analog = from_circuit(&build()).unwrap();
    let t0 = std::time::Instant::now();
    analog.run_reference(450.0);
    let analog_time = t0.elapsed().as_secs_f64();

    assert!(
        analog_time > 10.0 * pulse_time,
        "analog {analog_time:.6}s should dwarf pulse {pulse_time:.6}s"
    );
}

#[test]
fn analog_jj_counts_scale_with_design_size() {
    let single = {
        let mut c = Circuit::new();
        let a = c.inp_at(&[20.0], "A");
        let q = rlse::cells::jtl(&mut c, a).unwrap();
        c.inspect(q, "Q");
        from_circuit(&c).unwrap().run(1.0).jjs
    };
    let minmax = {
        let mut c = Circuit::new();
        let a = c.inp_at(&[20.0], "A");
        let b = c.inp_at(&[40.0], "B");
        let (low, high) = min_max(&mut c, a, b).unwrap();
        c.inspect(low, "LOW");
        c.inspect(high, "HIGH");
        from_circuit(&c).unwrap().run(1.0).jjs
    };
    assert!(minmax > 5 * single);
}
