//! Property-based tests (proptest) over the core semantics, the DBM zone
//! library, and the larger designs: invariants that must hold for *every*
//! input, not just the paper's examples.

use proptest::prelude::*;
use rlse::cells::defs;
use rlse::core::machine::TimeKey;
use rlse::designs::{bitonic_delay, bitonic_sorter_with_inputs};
use rlse::prelude::*;
use rlse::ta::dbm::{Dbm, Rel};
use std::collections::BTreeMap;

// ---------------------------------------------------------------- machines

proptest! {
    /// The AND machine never fires more than once per clock pulse, never
    /// fires without a clock, and all output times are clock + 9.2.
    #[test]
    fn and_fires_only_on_clock_edges(
        a_times in proptest::collection::vec(0u32..20, 0..6),
        b_times in proptest::collection::vec(0u32..20, 0..6),
    ) {
        // Map slot k to time 100k + 20/30: data mid-period, clocks at 100k.
        let spec = defs::and_elem();
        let a_id = spec.input_id("a").unwrap();
        let b_id = spec.input_id("b").unwrap();
        let clk_id = spec.input_id("clk").unwrap();
        let mut sched: BTreeMap<TimeKey, Vec<rlse::core::machine::InputId>> = BTreeMap::new();
        for &k in &a_times {
            sched.entry(TimeKey::new(100.0 * k as f64 + 20.0)).or_default().push(a_id);
        }
        for &k in &b_times {
            sched.entry(TimeKey::new(100.0 * k as f64 + 30.0)).or_default().push(b_id);
        }
        let n_clk = 21;
        for k in 1..=n_clk {
            sched.entry(TimeKey::new(100.0 * k as f64)).or_default().push(clk_id);
        }
        let outs = spec.trace(&sched).unwrap();
        prop_assert!(outs.len() <= n_clk);
        for (_, t) in &outs {
            let frac = (t - 9.2).rem_euclid(100.0);
            prop_assert!(frac.abs() < 1e-6, "output at {t}");
        }
        // Reference model: fires in period k iff both a and b pulsed in it.
        let expected = (0..n_clk as u32)
            .filter(|k| a_times.contains(k) && b_times.contains(k))
            .count();
        prop_assert_eq!(outs.len(), expected);
    }

    /// Dispatch is permutation-invariant: the result of delivering a set of
    /// simultaneous inputs does not depend on the order of the input list.
    #[test]
    fn dispatch_is_order_insensitive(perm in 0usize..6) {
        let spec = defs::join2x2_elem();
        let a_t = spec.input_id("a_t").unwrap();
        let b_t = spec.input_id("b_t").unwrap();
        let b_f = spec.input_id("b_f").unwrap();
        let orders = [
            [a_t, b_t, b_f], [a_t, b_f, b_t], [b_t, a_t, b_f],
            [b_t, b_f, a_t], [b_f, a_t, b_t], [b_f, b_t, a_t],
        ];
        let cfg = spec.initial_config();
        // All simultaneous at t=10: the machine handles them by priority,
        // whatever order the set is presented in.
        let r0 = spec.dispatch(&cfg, &orders[0], 10.0);
        let rp = spec.dispatch(&cfg, &orders[perm], 10.0);
        match (r0, rp) {
            (Ok((c0, o0)), Ok((cp, op))) => {
                prop_assert_eq!(c0.state, cp.state);
                prop_assert_eq!(o0, op);
            }
            (Err(e0), Err(ep)) => prop_assert_eq!(e0.kind, ep.kind),
            (x, y) => prop_assert!(false, "diverged: {x:?} vs {y:?}"),
        }
    }

    /// Every machine's theta map only ever moves forward in time.
    #[test]
    fn theta_is_monotone(times in proptest::collection::vec(1u32..500, 1..12)) {
        let spec = defs::jtl_elem();
        let a = spec.input_id("a").unwrap();
        let mut cfg = spec.initial_config();
        let mut sorted: Vec<f64> = times.iter().map(|t| *t as f64).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let mut last = f64::NEG_INFINITY;
        for t in sorted {
            let (next, _) = spec.step(&cfg, a, t).unwrap();
            prop_assert!(next.theta[a.0] >= last);
            last = next.theta[a.0];
            cfg = next;
        }
    }
}

// ---------------------------------------------------------------- circuits

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bitonic sorter sorts *any* set of sufficiently separated times.
    #[test]
    fn bitonic_sorts_arbitrary_spaced_inputs(perm in proptest::sample::subsequence(
        (0..16usize).collect::<Vec<_>>(), 8), offset in 0u32..50)
    {
        // Build 8 distinct times with >= 10 ps spacing from the chosen slots.
        let times: Vec<f64> = perm.iter().map(|k| 15.0 + offset as f64 + 12.0 * *k as f64).collect();
        let mut c = Circuit::new();
        bitonic_sorter_with_inputs(&mut c, &times).unwrap();
        let ev = Simulation::new(c).run().unwrap();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        for (k, t) in sorted.iter().enumerate() {
            let got = ev.times(&format!("o{k}"));
            prop_assert_eq!(got.len(), 1);
            prop_assert!((got[0] - (t + bitonic_delay(8))).abs() < 1e-9);
        }
    }

    /// Both adder implementations agree with binary arithmetic on every
    /// input vector (exhaustive here, but phrased as a property).
    #[test]
    fn adders_match_reference(v in 0u8..8) {
        let (a, b, cin) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
        let ones = [a, b, cin].iter().filter(|&&x| x).count();

        let mut c = Circuit::new();
        rlse::designs::adder::full_adder_sync_with_inputs(&mut c, a, b, cin).unwrap();
        let ev = Simulation::new(c).run().unwrap();
        prop_assert_eq!(!ev.times("SUM").is_empty(), ones % 2 == 1);
        prop_assert_eq!(!ev.times("COUT").is_empty(), ones >= 2);

        let mut c = Circuit::new();
        rlse::designs::xsfq_adder::full_adder_xsfq_with_inputs(&mut c, a, b, cin).unwrap();
        let ev = Simulation::new(c).run().unwrap();
        prop_assert_eq!(!ev.times("SUM_T").is_empty(), ones % 2 == 1);
        prop_assert_eq!(!ev.times("COUT_T").is_empty(), ones >= 2);
    }
}

// -------------------------------------------------------------------- DBMs

/// Apply a random constraint sequence to a zone, skipping any op that would
/// empty it, so every generated zone is nonempty and (because `constrain`
/// maintains canonicity incrementally) canonical by construction.
fn apply_ops(mut z: Dbm, ops: &[(usize, u8, i32)]) -> Dbm {
    let clocks = z.clocks();
    for &(c, rel, v) in ops {
        let c = 1 + c % clocks;
        let rel = match rel % 5 {
            0 => Rel::Le,
            1 => Rel::Lt,
            2 => Rel::Ge,
            3 => Rel::Gt,
            _ => Rel::Eq,
        };
        let mut t = z.clone();
        if t.constrain_clock(c, rel, v) {
            z = t;
        }
    }
    z
}

/// Build a canonical nonempty zone: all clocks equal, time elapsed, then a
/// random constraint sequence.
fn zone_from_ops(clocks: usize, ops: &[(usize, u8, i32)]) -> Dbm {
    let mut z = Dbm::zero(clocks);
    z.up();
    apply_ops(z, ops)
}

/// Strategy for the random constraint sequences above.
fn op_seq() -> impl Strategy<Value = Vec<(usize, u8, i32)>> {
    proptest::collection::vec((0usize..4, 0u8..5, 0i32..60), 0..10)
}

proptest! {
    /// `constrain` maintains canonical form incrementally, so a full
    /// Floyd–Warshall `canonicalize` must be a no-op on any zone built from
    /// constraints — and `canonicalize` itself must be idempotent.
    #[test]
    fn dbm_constrain_keeps_canonical_and_canonicalize_is_idempotent(ops in op_seq()) {
        let z = zone_from_ops(4, &ops);
        let mut once = z.clone();
        once.canonicalize();
        prop_assert_eq!(&once, &z);
        let mut twice = once.clone();
        twice.canonicalize();
        prop_assert_eq!(&twice, &once);
    }

    /// Zone inclusion is a partial order: reflexive, transitive along chains
    /// of refinements, and antisymmetric on canonical representations.
    #[test]
    fn dbm_includes_is_a_partial_order(
        ops_a in op_seq(), ops_b in op_seq(), ops_c in op_seq(),
    ) {
        let a = zone_from_ops(3, &ops_a);
        prop_assert!(a.includes(&a));
        // Each refinement only adds constraints, so inclusion must chain.
        let b = apply_ops(a.clone(), &ops_b);
        let c = apply_ops(b.clone(), &ops_c);
        prop_assert!(a.includes(&b));
        prop_assert!(b.includes(&c));
        prop_assert!(a.includes(&c));
        // Antisymmetry: mutual inclusion of canonical zones forces equality.
        if a.includes(&b) && b.includes(&a) {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Maximal-constant extrapolation only ever widens a zone, for arbitrary
    /// constraint-built zones (not just upper-bounded boxes).
    #[test]
    fn dbm_extrapolate_only_widens(ops in op_seq(), max_const in 1i64..40) {
        let z = zone_from_ops(3, &ops);
        let max = vec![max_const; 3];
        let mut e = z.clone();
        e.extrapolate(&max);
        prop_assert!(e.includes(&z));
        let mut e2 = e.clone();
        e2.extrapolate(&max);
        prop_assert_eq!(&e2, &e);
    }

    /// Freeing a clock (active-clock reduction) only widens the zone and
    /// leaves it canonical, so it composes safely with inclusion checks.
    #[test]
    fn dbm_free_widens_and_keeps_canonical(ops in op_seq(), c in 1usize..4) {
        let z = zone_from_ops(3, &ops);
        let mut f = z.clone();
        f.free(c);
        prop_assert!(f.includes(&z));
        let mut canon = f.clone();
        canon.canonicalize();
        prop_assert_eq!(&canon, &f);
    }
}

proptest! {
    /// Constrain never grows a zone; up never shrinks it.
    #[test]
    fn dbm_constrain_shrinks_up_grows(
        bounds in proptest::collection::vec((1usize..5, 0i32..100), 1..8)
    ) {
        let mut z = Dbm::zero(4);
        z.up();
        for (c, v) in bounds {
            let before = z.clone();
            let ok = z.constrain_clock(c, Rel::Le, v);
            if ok {
                prop_assert!(before.includes(&z));
                let mut grown = z.clone();
                grown.up();
                prop_assert!(grown.includes(&z));
            } else {
                prop_assert!(z.is_empty());
                break;
            }
        }
    }

    /// Extrapolation only ever grows zones (soundness direction) and is
    /// idempotent.
    #[test]
    fn dbm_extrapolation_grows_and_is_idempotent(
        lows in proptest::collection::vec(0i32..200, 3),
        max_const in 1i64..50,
    ) {
        // Upper bounds alone are always mutually satisfiable, so this zone
        // is nonempty for every generated vector.
        let mut z = Dbm::zero(3);
        z.up();
        for (i, lo) in lows.iter().enumerate() {
            prop_assert!(z.constrain_clock(i + 1, Rel::Le, lo + 10));
        }
        let max = vec![max_const; 3];
        let mut e1 = z.clone();
        e1.extrapolate(&max);
        prop_assert!(e1.includes(&z));
        let mut e2 = e1.clone();
        e2.extrapolate(&max);
        prop_assert_eq!(&e1, &e2);
    }

    /// Reset then read-back: the reset clock is exactly zero and other
    /// clocks keep their ranges.
    #[test]
    fn dbm_reset_is_local(hi in 1i32..100) {
        let mut z = Dbm::zero(2);
        z.up();
        prop_assume!(z.constrain_clock(1, Rel::Eq, hi));
        let (lo2, hi2) = z.clock_range(2);
        z.reset(2);
        prop_assert_eq!(z.clock_range(2), (0, Some(0)));
        prop_assert_eq!(z.clock_range(1), (hi as i64, Some(hi as i64)));
        let _ = (lo2, hi2);
    }
}

// ---------------------------------------------------------------- sweeps

/// Small jittered fixture shared by the sweep-determinism properties.
fn sweep_fixture(trials: u64, master_seed: u64, threads: usize) -> SweepReport {
    Sweep::over(|| {
        let mut c = Circuit::new();
        let a = c.inp_at(&[115.0], "A");
        let b = c.inp_at(&[64.0], "B");
        let (low, high) = rlse::designs::min_max(&mut c, a, b).unwrap();
        c.inspect(low, "LOW");
        c.inspect(high, "HIGH");
        c
    })
    .variability(|| Variability::Gaussian { std: 0.5 })
    .trials(trials)
    .master_seed(master_seed)
    .threads(threads)
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One master seed fully determines a sweep: the report is bit-identical
    /// whether the trials run on one worker or on an arbitrary pool, because
    /// trial i's RNG stream depends only on `trial_seed(master, i)`.
    #[test]
    fn sweep_reports_are_thread_count_invariant(
        master_seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let serial = sweep_fixture(24, master_seed, 1);
        let pooled = sweep_fixture(24, master_seed, threads);
        prop_assert_eq!(&serial, &pooled);
        prop_assert_eq!(serial.trials, 24);
        // And re-running the same configuration reproduces it exactly.
        prop_assert_eq!(&serial, &sweep_fixture(24, master_seed, threads));
    }

    /// Different master seeds draw genuinely different trial streams: with
    /// continuous Gaussian jitter, the aggregated firing-time means cannot
    /// collide across seeds.
    #[test]
    fn sweep_streams_differ_across_master_seeds(master_seed in 0u64..1_000_000) {
        let a = sweep_fixture(24, master_seed, 1);
        let b = sweep_fixture(24, master_seed.wrapping_add(1), 1);
        prop_assert_ne!(a, b);
        // The per-trial seed derivation itself must also separate streams.
        prop_assert_ne!(
            rlse::core::sweep::trial_seed(master_seed, 0),
            rlse::core::sweep::trial_seed(master_seed.wrapping_add(1), 0)
        );
    }
}

// --------------------------------------------------------------- variability

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With zero-σ "jitter", variability must be a no-op.
    #[test]
    fn zero_sigma_variability_is_identity(seed in 0u64..1000) {
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[115.0], "A");
            let b = c.inp_at(&[64.0], "B");
            let (low, high) = rlse::designs::min_max(&mut c, a, b).unwrap();
            c.inspect(low, "LOW");
            c.inspect(high, "HIGH");
            c
        };
        let base = Simulation::new(build()).run().unwrap();
        let jittered = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.0 })
            .seed(seed)
            .run()
            .unwrap();
        prop_assert_eq!(base, jittered);
    }
}

// ---------------------------------------------------- adaptive margin search

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On any monotone pass/fail oracle (fail below some threshold k, pass
    /// at and above it — including the all-pass and all-fail extremes), the
    /// adaptive bisection sampler must find *exactly* the boundary the
    /// exhaustive uniform scan finds, while spending at most
    /// `2 + ceil(log2 n)` oracle evaluations.
    #[test]
    fn adaptive_boundary_matches_uniform_on_monotone_oracles(
        n in 0usize..200,
        k in 0usize..220,
    ) {
        use rlse::designs::{find_first_pass, find_first_pass_uniform};
        // Threshold oracle: index i passes iff i >= k. k >= n means the
        // whole row fails; k == 0 means it all passes.
        let mut adaptive_evals = 0usize;
        let adaptive = find_first_pass(n, |i| {
            adaptive_evals += 1;
            i >= k
        });
        let uniform = find_first_pass_uniform(n, |i| i >= k);
        prop_assert_eq!(adaptive, uniform, "n={} k={}", n, k);
        // Bisection budget: two endpoint probes plus the halving steps.
        let budget = 2 + (n.max(1) as f64).log2().ceil() as usize;
        prop_assert!(
            adaptive_evals <= budget,
            "adaptive sampler spent {} evaluations on n={} (budget {})",
            adaptive_evals, n, budget
        );
    }

    /// Consistency on *arbitrary* (not necessarily monotone) oracles: the
    /// boundary the adaptive sampler reports is always a genuinely passing
    /// index whose predecessor genuinely fails (or index 0) — it never
    /// claims a margin beyond a point it has itself seen fail.
    #[test]
    fn adaptive_boundary_never_passes_beyond_a_failure(
        raw in proptest::collection::vec(0u8..2, 0..64),
    ) {
        use rlse::designs::{find_first_pass, Boundary};
        let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
        let n = bits.len();
        match find_first_pass(n, |i| bits[i]) {
            Boundary::At(i) => {
                prop_assert!(i < n);
                prop_assert!(bits[i], "reported boundary {} does not pass", i);
                if i > 0 {
                    prop_assert!(
                        !bits[i - 1],
                        "boundary {} is not a fail->pass edge", i
                    );
                }
            }
            Boundary::AllFail => {
                // All-fail is only claimed when the endpoints both fail
                // (the sampler probes index 0 and index n-1 first).
                if n > 0 {
                    prop_assert!(!bits[0]);
                    prop_assert!(!bits[n - 1]);
                }
            }
        }
    }

    /// The uniform scan is the ground truth the adaptive sampler is judged
    /// against; pin down its own contract: it reports the *first* passing
    /// index, full stop.
    #[test]
    fn uniform_scan_reports_first_pass(
        raw in proptest::collection::vec(0u8..2, 0..64),
    ) {
        use rlse::designs::{find_first_pass_uniform, Boundary};
        let bits: Vec<bool> = raw.iter().map(|&b| b == 1).collect();
        let expect = match bits.iter().position(|&b| b) {
            Some(i) => Boundary::At(i),
            None => Boundary::AllFail,
        };
        prop_assert_eq!(find_first_pass_uniform(bits.len(), |i| bits[i]), expect);
    }
}
