//! Integration tests pinning the concrete numbers the paper calls out in
//! its figures: Fig. 12 (AND simulation), Fig. 13 (setup violation
//! diagnostic), Fig. 11 (min-max delays), and Fig. 15/16 (bitonic sorter).

use rlse::cells::and_s;
use rlse::designs::{bitonic_delay, bitonic_sorter_with_inputs, min_max};
use rlse::prelude::*;

#[test]
fn figure12_and_element_events() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
    let b = c.inp_at(&[75.0, 185.0, 225.0, 265.0], "B");
    let clk = c.inp(50.0, 50.0, 6, "CLK").unwrap();
    let q = and_s(&mut c, a, b, clk).unwrap();
    c.inspect(q, "Q");
    let events = Simulation::new(c).run().unwrap();
    assert_eq!(events.times("Q"), &[209.2, 259.2, 309.2]);
    assert_eq!(events.times("CLK").len(), 6);
    assert_eq!(events.pulse_count(), 4 + 4 + 6 + 3);
}

#[test]
fn figure13_setup_violation_diagnostic() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
    let b = c.inp_at(&[99.0, 185.0, 225.0, 265.0], "B");
    let clk = c.inp(50.0, 50.0, 6, "CLK").unwrap();
    let q = and_s(&mut c, a, b, clk).unwrap();
    c.inspect(q, "Q");
    let err = Simulation::new(c).run().unwrap_err();
    let msg = err.to_string();
    for needle in [
        "Error while sending input(s)",
        "'clk'",
        "Prior input violation on FSM 'AND'",
        "past_constraints",
        "input 'b' was seen as recently as 2.8 time units ago",
        "It was last seen at 99",
        "1.7999999999999998 time units to soon",
    ] {
        assert!(msg.contains(needle), "missing {needle:?} in: {msg}");
    }
}

#[test]
fn figure11_min_max_path_balance() {
    // Paper: earlier pulse reaches LOW after 11 + 14 = 25 ps, later one
    // reaches HIGH after 11 + 12 + 2 = 25 ps.
    let mut c = Circuit::new();
    let a = c.inp_at(&[115.0], "A");
    let b = c.inp_at(&[64.0], "B");
    let (low, high) = min_max(&mut c, a, b).unwrap();
    c.inspect(low, "LOW");
    c.inspect(high, "HIGH");
    let events = Simulation::new(c).run().unwrap();
    assert_eq!(events.times("LOW"), &[64.0 + 25.0]);
    assert_eq!(events.times("HIGH"), &[115.0 + 25.0]);
}

#[test]
fn figure16_bitonic_outputs_in_rank_order() {
    // "The pulse arriving on input IN4 (the earliest input pulse) is
    //  produced 150 ps later on OUT0, and more generally, the output pulses
    //  appear in rank order."
    let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
    let mut c = Circuit::new();
    bitonic_sorter_with_inputs(&mut c, &times).unwrap();
    let events = Simulation::new(c).run().unwrap();
    assert_eq!(bitonic_delay(8), 150.0);
    assert_eq!(events.times("o0"), &[15.0 + 150.0]); // earliest was i4
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    for (k, t) in sorted.iter().enumerate() {
        let got = events.times(&format!("o{k}"));
        assert_eq!(got.len(), 1, "o{k}");
        assert!((got[0] - (t + 150.0)).abs() < 1e-9, "o{k}");
    }
}

#[test]
fn table2_sizes_match_paper_metrics() {
    // RLSE sizes in Table 2: C = 6, InvC = 6, Min-Max = 5, Bitonic-8 = 24.
    assert_eq!(rlse::cells::defs::c_elem().definition_size(), 6);
    assert_eq!(rlse::cells::defs::c_inv_elem().definition_size(), 6);
    // The min-max body is 5 cells / ~5 lines, the 8-sorter 24 comparators.
    let mut c = Circuit::new();
    let a = c.inp_at(&[10.0], "A");
    let b = c.inp_at(&[30.0], "B");
    min_max(&mut c, a, b).unwrap();
    assert_eq!(c.stats().cells, 5);
    let schedule = rlse::designs::bitonic_schedule(8);
    assert_eq!(schedule.iter().map(Vec::len).sum::<usize>(), 24);
}
