//! The dynamic correctness checks of the paper's §5.2, phrased over the
//! events dictionary: the 2x2 join interleaving property, the race tree's
//! single-winner property, the bitonic sorter's rank order, and robustness
//! under small timing variability.

use rlse::cells::join2x2;
use rlse::designs::{bitonic_sorter_with_inputs, race_tree_with_inputs, Thresholds};
use rlse::prelude::*;

/// §5.2 "2x2 Join": a B pulse must interleave between subsequent A pulses
/// and vice versa; the check sorts all input pulses by time and asserts no
/// two consecutive ones come from the same operand.
#[test]
fn join_inputs_interleave_and_decode() {
    let mut c = Circuit::new();
    let a_t = c.inp_at(&[100.0, 300.0], "A_T");
    let a_f = c.inp_at(&[200.0], "A_F");
    let b_t = c.inp_at(&[150.0, 250.0], "B_T");
    let b_f = c.inp_at(&[350.0], "B_F");
    let (tt, tf, ft, ff) = join2x2(&mut c, a_t, a_f, b_t, b_f).unwrap();
    for (w, n) in [(tt, "TT"), (tf, "TF"), (ft, "FT"), (ff, "FF")] {
        c.inspect(w, n);
    }
    let events = Simulation::new(c).run().unwrap();
    // The interleaving invariant, as written in the paper.
    let group = |n: &str| match n {
        "A_T" | "A_F" => Some("A".to_string()),
        "B_T" | "B_F" => Some("B".to_string()),
        _ => None,
    };
    assert!(events.interleaved(group));
    // Three input pairs, three decoded outputs.
    assert_eq!(events.times("TT").len(), 1); // (1,1) at 100/150
    assert_eq!(events.times("FT").len(), 1); // (0,1) at 200/250
    assert_eq!(events.times("TF").len(), 1); // (1,0) at 300/350
    assert!(events.times("FF").is_empty());
}

/// §5.2 "Race Tree": exactly one output label per set of input pulses.
#[test]
fn race_tree_single_winner_across_feature_space() {
    for f1 in [10.0, 30.0, 45.0, 55.0, 70.0, 90.0] {
        for f2 in [5.0, 25.0, 35.0, 65.0, 75.0, 95.0] {
            let mut c = Circuit::new();
            race_tree_with_inputs(&mut c, f1, f2, 20.0, Thresholds::default()).unwrap();
            let events = Simulation::new(c).run().unwrap();
            let total: usize = ["a", "b", "c", "d"]
                .iter()
                .map(|l| events.times(l).len())
                .sum();
            assert_eq!(total, 1, "f1={f1} f2={f2}");
        }
    }
}

/// §5.2 "8-input Bitonic Sorter": the paper's rank-order assertion.
#[test]
fn bitonic_rank_order_assertion() {
    let times = [95.0, 15.0, 55.0, 75.0, 35.0, 115.0, 25.0, 105.0];
    let mut c = Circuit::new();
    bitonic_sorter_with_inputs(&mut c, &times).unwrap();
    let events = Simulation::new(c).run().unwrap();
    // Port of the paper's snippet: collect o* events, one per output,
    // non-decreasing in time.
    let mut ranked: Vec<(String, Vec<f64>)> = events
        .iter()
        .filter(|(n, _)| n.starts_with('o'))
        .map(|(n, t)| (n.to_string(), t.to_vec()))
        .collect();
    ranked.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(ranked.iter().all(|(_, es)| es.len() == 1));
    assert!(ranked
        .windows(2)
        .all(|w| w[0].1[0] <= w[1].1[0]));
}

/// §5.2 robustness: small Gaussian jitter must not corrupt the sort.
#[test]
fn bitonic_tolerates_small_variability() {
    let times = [95.0, 15.0, 55.0, 75.0, 35.0, 115.0, 25.0, 105.0];
    for seed in 0..10 {
        let mut c = Circuit::new();
        bitonic_sorter_with_inputs(&mut c, &times).unwrap();
        let events = Simulation::new(c)
            .variability(Variability::Gaussian { std: 0.05 })
            .seed(seed)
            .run()
            .unwrap();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..8 {
            let t = events.times(&format!("o{k}"));
            assert_eq!(t.len(), 1, "seed {seed} o{k}");
            assert!(t[0] >= prev, "seed {seed} o{k}");
            prev = t[0];
        }
    }
}

/// Large jitter must eventually be *detected* — either as a timing
/// violation or as a corrupted order — rather than silently absorbed.
#[test]
fn bitonic_detects_large_variability() {
    let times = [95.0, 15.0, 55.0, 75.0, 35.0, 115.0, 25.0, 105.0];
    let mut failures = 0;
    for seed in 0..10 {
        let mut c = Circuit::new();
        bitonic_sorter_with_inputs(&mut c, &times).unwrap();
        let run = Simulation::new(c)
            .variability(Variability::Gaussian { std: 4.0 })
            .seed(seed)
            .run();
        match run {
            Err(_) => failures += 1,
            Ok(events) => {
                let mut prev = f64::NEG_INFINITY;
                let mut ok = true;
                for k in 0..8 {
                    let t = events.times(&format!("o{k}"));
                    if t.len() != 1 || t[0] < prev {
                        ok = false;
                        break;
                    }
                    if let Some(&v) = t.first() {
                        prev = v;
                    }
                }
                if !ok {
                    failures += 1;
                }
            }
        }
    }
    assert!(failures > 0, "4 ps jitter should break at least one run");
}
