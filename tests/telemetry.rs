//! Integration tests for the unified telemetry layer: the Chrome-trace
//! golden shape, cross-thread determinism of the report for both the sweep
//! engine and the model checker, and the zero-cost contract of the disabled
//! handle.

use rlse::core::sweep::Sweep;
use rlse::core::telemetry::{chrome_trace_for, SpanRec};
use rlse::prelude::*;
use rlse::ta::mc::{check_with_telemetry, McOptions, McQuery};
use rlse::ta::translate::translate_machine;

fn and_inputs() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("a", vec![20.0]),
        ("b", vec![30.0]),
        ("clk", vec![50.0]),
    ]
}

/// The Chrome `trace_event` exporter is a pure function of the span list,
/// so its output is goldenable byte-for-byte.
#[test]
fn chrome_trace_golden() {
    let spans = vec![
        SpanRec {
            name: "sim.run",
            track: 0,
            seq: 0,
            start_us: 1.5,
            dur_us: 250.25,
            arg: 42,
        },
        SpanRec {
            name: "sweep.worker",
            track: 2,
            seq: 0,
            start_us: 2.0,
            dur_us: 100.0,
            arg: 7,
        },
    ];
    let got = chrome_trace_for(&spans, 3);
    let want = concat!(
        "{\"traceEvents\":[",
        "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,",
        "\"args\":{\"name\":\"main\"}},",
        "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,",
        "\"args\":{\"name\":\"worker-2\"}},",
        "\n{\"name\":\"sim.run\",\"cat\":\"rlse\",\"ph\":\"X\",\"pid\":1,\"tid\":0,",
        "\"ts\":1.500,\"dur\":250.250,\"args\":{\"arg\":42,\"seq\":0}},",
        "\n{\"name\":\"sweep.worker\",\"cat\":\"rlse\",\"ph\":\"X\",\"pid\":1,\"tid\":2,",
        "\"ts\":2.000,\"dur\":100.000,\"args\":{\"arg\":7,\"seq\":0}}",
        "\n],\"displayTimeUnit\":\"ms\",",
        "\"otherData\":{\"tool\":\"rlse-telemetry\",\"droppedSpans\":3}}",
    );
    assert_eq!(got, want);
}

/// A live handle on a real run produces a trace with the same frame.
#[test]
fn chrome_trace_from_a_real_run_has_the_golden_frame() {
    let tel = Telemetry::new();
    let mut c = Circuit::new();
    let a = c.inp_at(&[10.0, 20.0], "a");
    let q = rlse::cells::jtl(&mut c, a).unwrap();
    c.inspect(q, "q");
    Simulation::new(c).telemetry(&tel).run().unwrap();
    let trace = tel.chrome_trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"name\":\"sim.run\""));
    assert!(trace.contains("\"name\":\"sim.compile\""));
    assert!(trace.ends_with("\"droppedSpans\":0}}"));
}

/// The sweep flushes identical counters regardless of worker count: the
/// report (and its JSON rendering) is bit-identical at 1 and 8 threads.
#[test]
fn sweep_report_is_identical_across_thread_counts() {
    let report_at = |threads: usize| {
        let tel = Telemetry::new();
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 20.0, 30.0, 40.0], "a");
            let q = rlse::cells::jtl(&mut c, a).unwrap();
            c.inspect(q, "q");
            c
        };
        let sweep_report = Sweep::over(build)
            .variability(|| Variability::Gaussian { std: 0.1 })
            .trials(64)
            .master_seed(7)
            .threads(threads)
            .telemetry(&tel)
            .run();
        assert_eq!(sweep_report.trials, 64);
        tel.report()
    };
    let one = report_at(1);
    let eight = report_at(8);
    assert_eq!(one, eight);
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.counter("sweep.trials"), 64);
    assert_eq!(one.counter("sim.runs"), 64);
}

/// Same contract for the model checker at 1 vs 4 shard workers.
#[test]
fn model_checker_report_is_identical_across_thread_counts() {
    let tr = translate_machine(&rlse::cells::defs::and_elem(), &and_inputs(), 10).unwrap();
    let q2 = McQuery::query2(&tr);
    let report_at = |threads: usize| {
        let tel = Telemetry::new();
        let opts = McOptions {
            threads,
            ..Default::default()
        };
        let r = check_with_telemetry(&tr.net, &q2, opts, Some(&tel));
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
        assert_eq!(r.states() as u64, tel.report().counter("mc.states"));
        tel.report()
    };
    let seq = report_at(1);
    let par = report_at(4);
    assert_eq!(seq, par);
    assert_eq!(seq.to_json(), par.to_json());
}

/// The disabled handle is a no-op everywhere: nothing is counted, no span
/// storage exists, and attaching it to a simulation changes nothing.
#[test]
fn disabled_handle_records_nothing() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    assert!(tel.ring(0).is_none(), "no span ring is allocated");
    assert!(tel.now().is_none(), "no clock reads on the disabled path");

    let mut c = Circuit::new();
    let a = c.inp_at(&[10.0], "a");
    let q = rlse::cells::jtl(&mut c, a).unwrap();
    c.inspect(q, "q");
    let mut sim = Simulation::new(c).telemetry(&tel);
    sim.run().unwrap();

    tel.add("sim.runs", 5);
    tel.peak("sim.max_heap_depth", 5);
    let report = tel.report();
    assert!(report.is_empty(), "disabled handle stays empty: {report:?}");
    assert_eq!(report.counter("sim.runs"), 0);
    assert_eq!(tel.dropped_spans(), 0);
    assert_eq!(
        tel.chrome_trace_json(),
        chrome_trace_for(&[], 0),
        "disabled trace is the empty frame"
    );
}

/// `reset` clears counters between phases so one handle can be reused for
/// before/after comparisons.
#[test]
fn reset_clears_the_report() {
    let tel = Telemetry::new();
    tel.add("sim.runs", 2);
    tel.peak("sim.max_heap_depth", 9);
    assert!(!tel.report().is_empty());
    tel.reset();
    assert!(tel.report().is_empty());
}
