//! Netlist-IR round-trip guarantees: `Circuit -> Ir -> Circuit` must be
//! *lossless* — the rebuilt circuit replays to bit-identical `Events` — for
//! random small circuits (proptest), for every Table-3 design at several
//! scales, and through the JSON text encoding. Golden IR fixtures under
//! `tests/golden/` additionally pin the byte encoding and the canonical
//! content hash, so any change to the IR format is a visible diff plus a
//! deliberate hash bump, never a silent cache invalidation.
//!
//! To regenerate the golden fixtures after an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test ir_roundtrip
//! ```
//!
//! (the update run prints the new content hashes to paste into
//! `GOLDEN_HASHES` below).

use proptest::prelude::*;
use rlse::cells;
use rlse::core::ir::Ir;
use rlse::designs::{design_ir, design_spec, shmoo_design_names};
use rlse::prelude::*;
use std::path::Path;

/// Compare two event dictionaries bit-for-bit: same wires, same pulse
/// counts, and every pulse time identical down to the f64 bit pattern.
fn assert_events_bit_identical(a: &Events, b: &Events) {
    let collect = |e: &Events| -> Vec<(String, Vec<u64>)> {
        e.iter_all()
            .map(|(n, ts)| (n.to_string(), ts.iter().map(|t| t.to_bits()).collect()))
            .collect()
    };
    assert_eq!(collect(a), collect(b), "events diverged bit-for-bit");
}

/// Compare two simulation outcomes: clean runs must match bit-for-bit,
/// erroring runs must report the identical error (random stimulus can
/// legitimately violate a C element's transition-time constraint, and the
/// rebuilt circuit must fail in exactly the same way).
fn assert_outcomes_identical(
    a: &Result<Events, rlse::core::Error>,
    b: &Result<Events, rlse::core::Error>,
) {
    match (a, b) {
        (Ok(ea), Ok(eb)) => assert_events_bit_identical(ea, eb),
        (Err(ea), Err(eb)) => assert_eq!(format!("{ea}"), format!("{eb}")),
        (x, y) => panic!("outcomes diverged: {x:?} vs {y:?}"),
    }
}

/// Run a circuit deterministically (seed 0, no variability).
fn run(c: Circuit) -> Result<Events, rlse::core::Error> {
    Simulation::new(c).seed(0).run()
}

/// Build a random small circuit from a generated plan: a few pulse inputs
/// feeding a pool of open wires through JTL / merger / C-element / splitter
/// ops, with every surviving wire inspected. The same plan always builds
/// the same circuit, so the direct build and the IR rebuild are comparable.
fn build_random(schedules: &[Vec<u32>], ops: &[u32]) -> Circuit {
    let mut c = Circuit::new();
    let mut pool: Vec<Wire> = Vec::new();
    for (i, slots) in schedules.iter().enumerate() {
        // Slot k on input i pulses at a time no other input shares, so the
        // generated stimulus exercises distinct arrival orders.
        let mut times: Vec<f64> = slots
            .iter()
            .map(|&k| 10.0 + 7.0 * f64::from(k) + i as f64)
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        pool.push(c.inp_at(&times, &format!("I{i}")));
    }
    for &op in ops {
        match op % 4 {
            1 if pool.len() >= 2 => {
                let a = pool.remove(0);
                let b = pool.remove(0);
                pool.push(cells::m(&mut c, a, b).unwrap());
            }
            2 if pool.len() >= 2 => {
                let a = pool.remove(0);
                let b = pool.remove(0);
                pool.push(cells::c(&mut c, a, b).unwrap());
            }
            3 => {
                let w = pool.remove(0);
                let (x, y) = cells::s(&mut c, w).unwrap();
                pool.push(x);
                pool.push(y);
            }
            _ => {
                let w = pool.remove(0);
                pool.push(cells::jtl(&mut c, w).unwrap());
            }
        }
    }
    for (i, w) in pool.into_iter().enumerate() {
        c.inspect(w, &format!("O{i}"));
    }
    c
}

proptest! {
    /// Random small circuits survive `Circuit -> Ir -> Circuit` with their
    /// replayed `Events` preserved bit-for-bit, their IR equal after a JSON
    /// text round-trip, and their content hash stable across both copies.
    #[test]
    fn random_circuits_round_trip_bit_for_bit(
        schedules in proptest::collection::vec(
            proptest::collection::vec(0u32..24, 0..5), 1..4),
        ops in proptest::collection::vec(0u32..4, 0..10),
    ) {
        let direct = build_random(&schedules, &ops);
        let ir = Ir::from_circuit(&direct).unwrap();
        let rebuilt = ir.to_circuit().unwrap();
        let a = run(build_random(&schedules, &ops));
        let b = run(rebuilt);
        assert_outcomes_identical(&a, &b);

        // JSON text round-trip is lossless and hash-stable.
        let reparsed = Ir::from_json(&ir.to_json()).unwrap();
        prop_assert_eq!(&reparsed, &ir);
        prop_assert_eq!(reparsed.content_hash(), ir.content_hash());
        let c = run(reparsed.to_circuit().unwrap());
        assert_outcomes_identical(&a, &c);
    }
}

/// Every registered design — the six Table-3 designs plus the scaled
/// bitonic workloads — round-trips through the IR (and its JSON text form)
/// with bit-identical replay, at unity and non-unity delay scales.
#[test]
fn all_designs_round_trip_at_several_scales() {
    for name in shmoo_design_names() {
        let (build, _check) = design_spec(name);
        for &scale in &[1.0, 0.75, 1.5] {
            let ir = design_ir(name, scale);
            let reparsed = Ir::from_json(&ir.to_json()).unwrap();
            assert_eq!(reparsed, ir, "{name}@x{scale}: JSON round-trip");
            assert_eq!(
                reparsed.content_hash(),
                ir.content_hash(),
                "{name}@x{scale}: hash stability"
            );
            let direct = run(build(scale)).unwrap();
            let via_ir = run(reparsed.to_circuit().unwrap()).unwrap();
            assert_events_bit_identical(&direct, &via_ir);
        }
    }
}

// ------------------------------------------------------------ golden files

/// `(design name, canonical content hash of `design_ir(name, 1.0)`)`.
/// These constants pin the hash *value*, not just its stability: a format
/// change that reshuffles canonical bytes must update them consciously.
const GOLDEN_HASHES: &[(&str, u64)] = &[
    ("min_max", 0x595c_b918_7d7a_7572),
    ("bitonic_8", 0x78fb_b44b_dbda_d512),
];

#[test]
fn golden_ir_fixtures_are_byte_stable() {
    for &(name, expected_hash) in GOLDEN_HASHES {
        let ir = design_ir(name, 1.0);
        let rendered = ir.to_json();
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{name}_ir.json"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &rendered).expect("write golden IR fixture");
            eprintln!("{name}: content hash 0x{:016x}", ir.content_hash());
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden IR fixture {} ({e}); run \
                 UPDATE_GOLDEN=1 cargo test --test ir_roundtrip",
                path.display()
            )
        });
        assert!(
            expected == rendered,
            "IR encoding for '{name}' diverged from {}.\n\
             If the format change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test ir_roundtrip",
            path.display()
        );
        assert_eq!(
            ir.content_hash(),
            expected_hash,
            "{name}: canonical content hash changed — update GOLDEN_HASHES \
             if the format change is intentional"
        );
        // The checked-in bytes parse back to the same IR and hash.
        let parsed = Ir::from_json(&expected).unwrap();
        assert_eq!(parsed, ir);
        assert_eq!(parsed.content_hash(), expected_hash);
    }
}
