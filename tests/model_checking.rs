//! Cross-crate integration tests for the §5.3 verification flow: every
//! basic cell is translated to TA, model checked for Query 1 (outputs only
//! at simulation-predicted instants) and Query 2 (no error state
//! reachable), and exported as UPPAAL XML + TCTL.

use rlse::cells::defs;
use rlse::prelude::*;
use rlse::ta::prelude::*;

fn cell_circuit(name: &str) -> Option<Circuit> {
    let spec = defs::all_cells().into_iter().find(|(n, _)| *n == name)?.1;
    let stim: Vec<(&str, Vec<f64>)> = match name {
        "C" | "InvC" | "M" => vec![("a", vec![20.0]), ("b", vec![50.0])],
        "S" | "JTL" => vec![("a", vec![20.0])],
        "2x2 Join" => vec![("a_t", vec![20.0]), ("b_f", vec![40.0])],
        "DRO SR" => vec![("set", vec![20.0]), ("clk", vec![60.0])],
        "Inv" | "DRO" | "DRO C" => vec![("a", vec![20.0]), ("clk", vec![60.0])],
        _ => vec![("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![60.0])],
    };
    let mut c = Circuit::new();
    let inputs: Vec<Wire> = spec
        .inputs()
        .iter()
        .map(|i| {
            let t = stim
                .iter()
                .find(|(n, _)| n == i)
                .map(|(_, t)| t.clone())
                .unwrap_or_default();
            c.inp_at(&t, i)
        })
        .collect();
    let outs = c.add_machine(&spec, &inputs).unwrap();
    for (k, w) in outs.iter().enumerate() {
        let n = spec.outputs()[k].clone();
        c.inspect(*w, &n);
    }
    Some(c)
}

#[test]
fn every_basic_cell_passes_both_queries() {
    for (name, _) in defs::all_cells() {
        let circ = cell_circuit(name).unwrap();
        let mut sim = Simulation::new(circ);
        let events = sim.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        let circ = sim.into_circuit();
        let expected: Vec<(String, Vec<f64>)> = circ
            .output_wires()
            .into_iter()
            .map(|w| {
                let n = circ.wire_name(w).to_string();
                let t = events
                    .times(&n)
                    .iter()
                    .map(|t| (t * 10.0).round() / 10.0)
                    .collect();
                (n, t)
            })
            .collect();
        let tr = translate_circuit(&circ).unwrap();
        let refs: Vec<(&str, Vec<f64>)> = expected
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        let opts = McOptions {
            max_states: 200_000,
            ..McOptions::default()
        };
        let q1 = check(&tr.net, &McQuery::query1(&tr, &refs), opts);
        assert_eq!(q1.holds, Some(true), "{name} query1: {:?}", q1.violation);
        let q2 = check(&tr.net, &McQuery::query2(&tr), opts);
        assert_eq!(q2.holds, Some(true), "{name} query2: {:?}", q2.violation);
    }
}

#[test]
fn parallel_and_sequential_checks_agree_on_every_cell() {
    // The sharded engine must be deterministic: a 1-thread (inline
    // sequential) run and a 4-thread run have to agree not just on the
    // verdict but on the explored-state count and peak store size, for
    // every stdlib cell and both queries.
    for (name, _) in defs::all_cells() {
        let circ = cell_circuit(name).unwrap();
        let mut sim = Simulation::new(circ);
        let events = sim.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        let circ = sim.into_circuit();
        let expected: Vec<(String, Vec<f64>)> = circ
            .output_wires()
            .into_iter()
            .map(|w| {
                let n = circ.wire_name(w).to_string();
                let t = events
                    .times(&n)
                    .iter()
                    .map(|t| (t * 10.0).round() / 10.0)
                    .collect();
                (n, t)
            })
            .collect();
        let tr = translate_circuit(&circ).unwrap();
        let refs: Vec<(&str, Vec<f64>)> = expected
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        for query in [McQuery::query1(&tr, &refs), McQuery::query2(&tr)] {
            let seq = check(
                &tr.net,
                &query,
                McOptions {
                    max_states: 200_000,
                    threads: 1,
                    ..McOptions::default()
                },
            );
            let par = check(
                &tr.net,
                &query,
                McOptions {
                    max_states: 200_000,
                    threads: 4,
                    ..McOptions::default()
                },
            );
            assert_eq!(seq.holds, par.holds, "{name}");
            assert_eq!(seq.stats, par.stats, "{name}");
                        assert_eq!(seq.violation, par.violation, "{name}");
        }
    }
}

#[test]
fn model_checker_catches_injected_hold_violation() {
    // Pulse `a` 1 ps after the clock: lands inside the 3.0 ps hold window.
    let mut c = Circuit::new();
    let a = c.inp_at(&[61.0], "a");
    let b = c.inp_at(&[30.0], "b");
    let clk = c.inp_at(&[60.0], "clk");
    let q = rlse::cells::and_s(&mut c, a, b, clk).unwrap();
    c.inspect(q, "q");
    // The simulator agrees it is a violation…
    let err = Simulation::new(c).run().unwrap_err();
    assert!(matches!(err, rlse::core::Error::Timing(_)));
    // …and so does the model checker, via an err_*_h location.
    let mut c = Circuit::new();
    let a = c.inp_at(&[61.0], "a");
    let b = c.inp_at(&[30.0], "b");
    let clk = c.inp_at(&[60.0], "clk");
    let q = rlse::cells::and_s(&mut c, a, b, clk).unwrap();
    c.inspect(q, "q");
    let tr = translate_circuit(&c).unwrap();
    let q2 = check(&tr.net, &McQuery::query2(&tr), McOptions::default());
    assert_eq!(q2.holds, Some(false));
    assert!(q2.violation.unwrap().contains("err_a_h"));
}

#[test]
fn uppaal_export_for_every_cell_is_well_formed() {
    for (name, _) in defs::all_cells() {
        let circ = cell_circuit(name).unwrap();
        let tr = translate_circuit(&circ).unwrap();
        let xml = to_uppaal_xml(&tr.net);
        assert!(xml.contains("<nta>"), "{name}");
        assert_eq!(
            xml.matches("<template>").count(),
            tr.net.stats().automata,
            "{name}"
        );
        let q2 = query2_tctl(&tr);
        assert!(q2.starts_with("A[]"), "{name}");
    }
}

#[test]
fn translation_complexity_matches_paper_claim_shape() {
    // §4.4: the AND cell's TA network is far larger than its machine —
    // "PyLSE properly encapsulates this complexity."
    let spec = defs::and_elem();
    let tr = translate_machine(
        &spec,
        &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![60.0])],
        10,
    )
    .unwrap();
    let stats = tr.net.stats();
    // Machine: 4 states / 12 transitions. The TA network must be an order
    // of magnitude bigger on both axes.
    assert!(stats.locations >= 4 * 8, "locations = {}", stats.locations);
    assert!(stats.edges >= 12 * 4, "edges = {}", stats.edges);
    // Soaking factor from the paper: ceil(9.2 / 3.0) = 4 firing automata.
    let firing = tr
        .net
        .automata
        .iter()
        .filter(|a| a.name.starts_with("firing_"))
        .count();
    assert_eq!(firing, 4);
}

#[test]
fn scaled_times_match_paper_upscaling() {
    // The paper upscales 209.2 ps to the integer 2092.
    let circ = {
        let mut c = Circuit::new();
        let a = c.inp_at(&[209.2], "A");
        let q = rlse::cells::jtl(&mut c, a).unwrap();
        c.inspect(q, "Q");
        c
    };
    let tr = translate_circuit(&circ).unwrap();
    let q1 = query1_tctl(&tr, &[("Q", vec![214.9])]);
    assert!(q1.contains("global == 2149"), "{q1}");
}
