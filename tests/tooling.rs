//! Integration tests for the developer tooling around the simulator: static
//! lints, dispatch traces, VCD export, and the text waveform renderer, all
//! exercised on real designs.

use rlse::core::plot::{render, PlotOptions};
use rlse::core::validate::{analyze, Lint};
use rlse::core::vcd::{to_vcd, VcdOptions};
use rlse::designs::{bitonic_sorter_with_inputs, min_max};
use rlse::prelude::*;

#[test]
fn paper_designs_are_lint_clean() {
    // Every machine in every Table 3 design has only reachable states, and
    // the bench circuits observe all their outputs.
    let mut c = Circuit::new();
    bitonic_sorter_with_inputs(&mut c, &[95.0, 15.0, 55.0, 75.0, 35.0, 115.0, 25.0, 105.0])
        .unwrap();
    let report = analyze(&c);
    assert!(
        report.is_clean(),
        "bitonic sorter should be lint-clean:\n{report}"
    );
}

#[test]
fn trace_log_reconstructs_the_pulse_story() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[115.0], "A");
    let b = c.inp_at(&[64.0], "B");
    let (low, high) = min_max(&mut c, a, b).unwrap();
    c.inspect(low, "LOW");
    c.inspect(high, "HIGH");
    let mut sim = Simulation::new(c).with_trace();
    let events = sim.run().unwrap();
    let trace = sim.trace();
    // Every machine dispatch is logged, in nondecreasing time order.
    assert!(trace.len() >= 6, "got {} entries", trace.len());
    assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
    // The C element's firing entry matches the observed HIGH pulse.
    let c_fire = trace
        .iter()
        .find(|e| e.cell == "C" && !e.fired.is_empty())
        .expect("C fires once");
    let (out_name, t) = &c_fire.fired[0];
    assert_eq!(out_name, "q");
    // HIGH passes one more JTL (+2.0 ps).
    assert!((events.times("HIGH")[0] - (t + 2.0)).abs() < 1e-9);
    // Display formatting mentions the state movement.
    let line = c_fire.to_string();
    assert!(line.contains("C"), "{line}");
    assert!(line.contains("->"), "{line}");
}

#[test]
fn vcd_export_of_a_real_run_is_consistent() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[125.0, 175.0], "A");
    let b = c.inp_at(&[75.0, 185.0], "B");
    let clk = c.inp(50.0, 50.0, 4, "CLK").unwrap();
    let q = rlse::cells::and_s(&mut c, a, b, clk).unwrap();
    c.inspect(q, "Q");
    let events = Simulation::new(c).run().unwrap();
    let vcd = to_vcd(
        &events,
        VcdOptions {
            pulse_width: 2.0,
            module: "and_test",
        },
    );
    assert!(vcd.contains("$scope module and_test $end"));
    // One rise per pulse across all named wires.
    let rises = vcd
        .lines()
        .filter(|l| l.len() >= 2 && l.starts_with('1'))
        .count();
    assert_eq!(rises, events.pulse_count());
    // The Q pulse at 209.2 ps lands on tick 2092.
    assert!(vcd.contains("#2092"), "{vcd}");
}

#[test]
fn waveform_renderer_shows_every_named_wire() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[10.0, 90.0], "A");
    let q = rlse::cells::jtl(&mut c, a).unwrap();
    c.inspect(q, "Q");
    let events = Simulation::new(c).run().unwrap();
    let plot = render(
        &events,
        PlotOptions {
            width: 80,
            range: None,
        },
    );
    let lines: Vec<&str> = plot.lines().collect();
    assert!(lines[0].starts_with("A"));
    assert!(lines[1].starts_with("Q"));
    assert_eq!(lines[0].matches('|').count(), 2);
    assert_eq!(lines[1].matches('|').count(), 2);
}

#[test]
fn lints_fire_on_a_deliberately_fishy_circuit() {
    let mut c = Circuit::new();
    let silent = c.inp_at(&[], "NOPULSES");
    let _unobserved = rlse::cells::jtl(&mut c, silent).unwrap();
    let report = analyze(&c);
    assert!(report
        .lints
        .iter()
        .any(|l| matches!(l, Lint::SilentSource { .. })));
    assert!(report
        .lints
        .iter()
        .any(|l| matches!(l, Lint::UnobservedOutput { .. })));
}
