//! Golden-trace regression tests: each design circuit is simulated with
//! tracing enabled at seed 0 (no variability), and the full dispatched-batch
//! sequence — every `TraceEntry`, rendered one per line — must match the
//! checked-in snapshot under `tests/golden/` **byte for byte**.
//!
//! These pin the complete observable semantics of the simulator (batching
//! order, state movements, firing times) for representative designs, so any
//! change to dispatch order, cell definitions, or delay arithmetic shows up
//! as a readable diff instead of a silently shifted waveform.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```

use rlse::designs::{
    bitonic_sorter_with_inputs, bitonic_stimulus, decision_tree_with_inputs, dr_and, dr_input,
    dr_inspect, dr_xor, ripple_adder_with_inputs, shmoo_map, ShmooOptions, Tree,
};
use rlse::designs::xsfq_adder::full_adder_xsfq_with_inputs;
use rlse::prelude::*;
use std::fmt::Write as _;
use std::path::Path;

/// Simulate with tracing at seed 0 and render one line per trace entry.
fn render_trace(circuit: Circuit) -> String {
    let mut sim = Simulation::new(circuit).with_trace().seed(0);
    sim.run().expect("golden circuits simulate cleanly");
    let mut out = String::new();
    for entry in sim.trace() {
        writeln!(out, "{entry}").expect("string write");
    }
    out
}

/// Compare against (or, with `UPDATE_GOLDEN=1`, rewrite) the snapshot.
fn assert_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_traces",
            path.display()
        )
    });
    assert!(
        expected == rendered,
        "trace for '{name}' diverged from {}.\n\
         If the semantic change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_traces\n\
         --- expected ---\n{expected}\n--- got ---\n{rendered}",
        path.display()
    );
}

#[test]
fn golden_ripple_adder() {
    let mut c = Circuit::new();
    ripple_adder_with_inputs(&mut c, 4, 9, 6, false).unwrap();
    assert_golden("ripple_adder", &render_trace(c));
}

#[test]
fn golden_dual_rail() {
    // The two-level clockless circuit q = (a AND b) XOR c with a=1, b=1, c=0.
    let mut c = Circuit::new();
    let a = dr_input(&mut c, true, 20.0, "A");
    let b = dr_input(&mut c, true, 28.0, "B");
    let cw = dr_input(&mut c, false, 36.0, "C");
    let ab = dr_and(&mut c, a, b).unwrap();
    let q = dr_xor(&mut c, ab, cw).unwrap();
    dr_inspect(&mut c, q, "Q");
    assert_golden("dual_rail", &render_trace(c));
}

#[test]
fn golden_decision_tree() {
    // The paper's §5.2 race-tree shape, classifying [20, 12] → label "a".
    let tree = Tree::branch(
        0,
        50.0,
        Tree::branch(1, 30.0, Tree::leaf("a"), Tree::leaf("b")),
        Tree::branch(1, 70.0, Tree::leaf("c"), Tree::leaf("d")),
    );
    let mut c = Circuit::new();
    decision_tree_with_inputs(&mut c, &tree, &[20.0, 12.0], 20.0).unwrap();
    assert_golden("decision_tree", &render_trace(c));
}

#[test]
fn golden_xsfq_adder() {
    // The dual-rail full adder computing 1 + 0 + 1.
    let mut c = Circuit::new();
    full_adder_xsfq_with_inputs(&mut c, true, false, true).unwrap();
    assert_golden("xsfq_adder", &render_trace(c));
}

#[test]
fn golden_bitonic_16() {
    // The scaled 16-input sorter under the depth-stretched rank-gap
    // stimulus. This golden doubles as the parallel event loop's reference:
    // `tests/sim_parallel_differential.rs` renders the partitioned trace
    // and compares it to this same file byte for byte.
    let mut c = Circuit::new();
    bitonic_sorter_with_inputs(&mut c, &bitonic_stimulus(16, 15.0)).unwrap();
    assert_golden("bitonic_16", &render_trace(c));
}

#[test]
fn golden_minmax_shmoo_map() {
    // A small fixed-seed margin map for the min-max pair, pinned byte for
    // byte: every cell verdict is a deterministic function of the map's
    // master seed and the cell's grid index, so this render must never
    // drift — not across thread counts, batch widths, or adaptive vs
    // uniform evaluation order (the per-cell seeds are shared).
    let sigmas = [0.0, 1.0, 2.0];
    let scales: Vec<f64> = (0..8).map(|i| 0.05 + 0.25 * i as f64).collect();
    let opts = ShmooOptions {
        trials: 16,
        ..ShmooOptions::default()
    };
    let adaptive = shmoo_map("min_max", &sigmas, &scales, &opts);
    assert_golden("minmax_shmoo", &adaptive.render());
    // The uniform (exhaustive) map must agree on every verdict; only the
    // measured/inferred provenance and the adaptive flag may differ.
    let uniform = shmoo_map(
        "min_max",
        &sigmas,
        &scales,
        &ShmooOptions {
            adaptive: false,
            ..opts
        },
    );
    for row in 0..sigmas.len() {
        for col in 0..scales.len() {
            assert_eq!(
                adaptive.cell(row, col).passes(),
                uniform.cell(row, col).passes(),
                "verdict mismatch at row {row} col {col}"
            );
        }
    }
}

#[test]
fn golden_traces_are_seed_stable() {
    // The snapshots are taken without variability, so the seed must be
    // irrelevant: any seed yields the same trace as seed 0.
    let build = || {
        let mut c = Circuit::new();
        ripple_adder_with_inputs(&mut c, 4, 9, 6, false).unwrap();
        c
    };
    let base = render_trace(build());
    let mut sim = Simulation::new(build()).with_trace().seed(12345);
    sim.run().unwrap();
    let mut other = String::new();
    for entry in sim.trace() {
        writeln!(other, "{entry}").unwrap();
    }
    assert_eq!(base, other);
}
