//! Feedback-loop integration tests: the `until` target time of the paper's
//! §4.3 exists because designs may contain loops. These tests exercise the
//! loopback-wire API end to end, including its error paths and the
//! interaction with the events dictionary.

use rlse::designs::ring::ring_oscillator;
use rlse::prelude::*;

#[test]
fn ring_oscillator_period_scales_with_stage_count() {
    for stages in [1usize, 3, 6] {
        let mut circ = Circuit::new();
        let seed = circ.inp_at(&[10.0], "SEED");
        let osc = ring_oscillator(&mut circ, seed, stages).unwrap();
        circ.inspect(osc.tap, "TAP");
        let ev = Simulation::new(circ).until(400.0).run().unwrap();
        let taps = ev.times("TAP");
        assert!(taps.len() >= 2, "stages={stages}");
        let measured = taps[1] - taps[0];
        assert!(
            (measured - osc.period).abs() < 1e-9,
            "stages={stages}: measured {measured} vs designed {}",
            osc.period
        );
    }
}

#[test]
fn unclosed_loopback_is_rejected_at_simulation_time() {
    let mut circ = Circuit::new();
    let seed = circ.inp_at(&[10.0], "SEED");
    let pending = circ.loopback_wire();
    let merged = rlse::cells::m(&mut circ, seed, pending).unwrap();
    circ.inspect(merged, "OUT");
    // Never closed: simulation must refuse to run.
    let err = Simulation::new(circ).run().unwrap_err();
    assert!(matches!(
        err,
        rlse::core::Error::Wiring(rlse::core::error::WiringError::Unconnected { .. })
    ));
}

#[test]
fn close_loop_rejects_consumed_sources() {
    let mut circ = Circuit::new();
    let seed = circ.inp_at(&[10.0], "SEED");
    let pending = circ.loopback_wire();
    let merged = rlse::cells::m(&mut circ, seed, pending).unwrap();
    let q = rlse::cells::jtl(&mut circ, merged).unwrap();
    let q2 = rlse::cells::jtl(&mut circ, q).unwrap();
    // q already feeds the second JTL; it cannot also close the loop.
    assert!(circ.close_loop(q, pending).is_err());
    // q2 is free: closing with it succeeds.
    circ.close_loop(q2, pending).unwrap();
    circ.check().unwrap();
}

#[test]
fn until_bounds_event_recording_in_loops() {
    let mut circ = Circuit::new();
    let seed = circ.inp_at(&[10.0], "SEED");
    let osc = ring_oscillator(&mut circ, seed, 2).unwrap();
    circ.inspect(osc.tap, "TAP");
    let short = {
        let mut c2 = Circuit::new();
        let seed = c2.inp_at(&[10.0], "SEED");
        let osc = ring_oscillator(&mut c2, seed, 2).unwrap();
        c2.inspect(osc.tap, "TAP");
        Simulation::new(c2).until(100.0).run().unwrap().times("TAP").len()
    };
    let long = Simulation::new(circ)
        .until(300.0)
        .run()
        .unwrap()
        .times("TAP")
        .len();
    assert!(long > short, "long {long} vs short {short}");
}
