//! Differential test harness: the structure-of-arrays batch-sweep kernel
//! must be **bit-identical** to the per-trial-worker scalar sweep — not
//! statistically close, equal.
//!
//! For every Table-3 design, the same Monte-Carlo study (Gaussian jitter at
//! a σ hot enough to make some trials fail their functional check) is run
//! through both engines via `run_detailed`, and every per-trial verdict and
//! every output pulse time must match exactly, across thread counts
//! {1, 4, 8} and batch widths {1, 7, 64}. The aggregated `SweepReport`s
//! must also be bitwise-equal, since both engines feed the same serial
//! reduction in trial order.
//!
//! The harness drives the exact circuits the shmoo maps sweep
//! ([`rlse::designs::design_spec`]), at a scale/σ point chosen per design
//! so the verdict set is *mixed* — a guard asserts at least one passing and
//! one non-passing trial, so agreement is never vacuous.

use rlse::core::sweep::{BatchSweep, Sweep, SweepDetails, TrialVerdict};
use rlse::designs::{design_spec, shmoo_design_names, shmoo_map, ShmooOptions};
use rlse::prelude::*;

const TRIALS: u64 = 48;
const SEED: u64 = 0xD1FF;
const THREADS: [usize; 3] = [1, 4, 8];
const WIDTHS: [usize; 3] = [1, 7, 64];

/// A (scale, σ) operating point per design, tuned so that `TRIALS` trials
/// at `SEED` produce a mix of passing and non-passing verdicts: close
/// enough to the margin boundary that jitter flips some trials.
fn hot_point(design: &str) -> (f64, f64) {
    match design {
        "min_max" => (0.25, 5.0),
        "race_tree" => (0.15, 3.0),
        "adder_sync" => (0.25, 5.0),
        // The clockless xSFQ adder has no race to lose, so it only breaks
        // under jitter comparable to the cell hold times themselves.
        "adder_xsfq" => (3.0, 5.0),
        "bitonic_4" => (1.0, 5.0),
        "bitonic_8" => (0.8, 1.0),
        "bitonic_16" => (0.8, 1.0),
        "bitonic_32" => (0.8, 1.0),
        other => panic!("no hot point for design '{other}'"),
    }
}

fn scalar_details(design: &str) -> SweepDetails {
    let (build, check) = design_spec(design);
    let (scale, sigma) = hot_point(design);
    Sweep::over(move || build(scale))
        .variability(move || Variability::Gaussian { std: sigma })
        .check(check)
        .trials(TRIALS)
        .master_seed(SEED)
        .threads(1)
        .run_detailed()
}

fn batch_details(design: &str, threads: usize, width: usize) -> SweepDetails {
    let (build, check) = design_spec(design);
    let (scale, sigma) = hot_point(design);
    BatchSweep::over(move || build(scale))
        .variability(move || Variability::Gaussian { std: sigma })
        .check(check)
        .trials(TRIALS)
        .master_seed(SEED)
        .threads(threads)
        .batch_width(width)
        .run_detailed()
}

/// The core differential assertion for one design: scalar reference vs the
/// batch kernel at every (threads × width) combination, per-trial details
/// and aggregate reports both.
fn assert_engines_identical(design: &str) {
    let reference = scalar_details(design);

    // Vacuity guard: the operating point must produce mixed verdicts, or
    // the equality below proves nothing about verdict classification.
    let passing = reference
        .trials
        .iter()
        .filter(|t| t.verdict == TrialVerdict::Ok)
        .count();
    assert!(
        passing > 0 && passing < TRIALS as usize,
        "{design}: operating point not hot ({passing}/{TRIALS} trials pass) — \
         the differential comparison would be vacuous"
    );
    // And the details must carry actual pulse data for clean trials.
    assert!(
        reference
            .trials
            .iter()
            .any(|t| t.outputs.iter().any(|o| !o.is_empty())),
        "{design}: no output pulses recorded in any trial"
    );

    let (build, check) = design_spec(design);
    let (scale, sigma) = hot_point(design);
    for threads in THREADS {
        for width in WIDTHS {
            let batch = batch_details(design, threads, width);
            assert_eq!(
                reference, batch,
                "{design}: batch kernel diverged from scalar sweep at \
                 threads={threads} width={width}"
            );
            // Aggregate reports reduce in trial order on both engines, so
            // they must be bitwise-equal too.
            let scalar_report = Sweep::over(move || build(scale))
                .variability(move || Variability::Gaussian { std: sigma })
                .check(check)
                .trials(TRIALS)
                .master_seed(SEED)
                .threads(threads)
                .run();
            let batch_report = BatchSweep::over(move || build(scale))
                .variability(move || Variability::Gaussian { std: sigma })
                .check(check)
                .trials(TRIALS)
                .master_seed(SEED)
                .threads(threads)
                .batch_width(width)
                .run();
            assert_eq!(
                scalar_report, batch_report,
                "{design}: aggregate reports diverged at threads={threads} width={width}"
            );
        }
    }
}

#[test]
fn min_max_batch_matches_scalar() {
    assert_engines_identical("min_max");
}

#[test]
fn race_tree_batch_matches_scalar() {
    assert_engines_identical("race_tree");
}

#[test]
fn adder_sync_batch_matches_scalar() {
    assert_engines_identical("adder_sync");
}

#[test]
fn adder_xsfq_batch_matches_scalar() {
    assert_engines_identical("adder_xsfq");
}

#[test]
fn bitonic_4_batch_matches_scalar() {
    assert_engines_identical("bitonic_4");
}

#[test]
fn bitonic_8_batch_matches_scalar() {
    assert_engines_identical("bitonic_8");
}

#[test]
fn bitonic_16_batch_matches_scalar() {
    assert_engines_identical("bitonic_16");
}

#[test]
fn bitonic_32_batch_matches_scalar() {
    assert_engines_identical("bitonic_32");
}

#[test]
fn design_list_is_covered() {
    // If a new design joins the shmoo set, it must also join this harness.
    let covered = [
        "min_max",
        "race_tree",
        "adder_sync",
        "adder_xsfq",
        "bitonic_4",
        "bitonic_8",
        "bitonic_16",
        "bitonic_32",
    ];
    assert_eq!(shmoo_design_names(), &covered);
}

// ------------------------------------------------------------ edge cases

/// `trials == 0` is an empty study, not a panic: both engines return an
/// empty report with every counter at zero.
#[test]
fn zero_trials_is_empty_report_not_panic() {
    let (build, check) = design_spec("min_max");
    let scalar = Sweep::over(move || build(1.0))
        .check(check)
        .trials(0)
        .run();
    let batch = BatchSweep::over(move || build(1.0))
        .check(check)
        .trials(0)
        .batch_width(16)
        .run();
    for report in [&scalar, &batch] {
        assert_eq!(report.trials, 0);
        assert_eq!(report.ok, 0);
        assert_eq!(report.check_failures, 0);
        assert_eq!(report.timing_violations, 0);
        assert_eq!(report.other_errors, 0);
    }
    assert_eq!(scalar, batch);
    let details = BatchSweep::over(move || build(1.0))
        .trials(0)
        .run_detailed();
    assert!(details.trials.is_empty());
}

/// An empty parameter grid is an empty map, not a panic: no sigmas means
/// no rows, no scales means rows of zero width, and in both cases zero
/// sweeps are evaluated.
#[test]
fn empty_parameter_grid_is_empty_map_not_panic() {
    let opts = ShmooOptions {
        trials: 4,
        ..ShmooOptions::default()
    };
    let no_rows = shmoo_map("min_max", &[], &[0.5, 1.0], &opts);
    assert!(no_rows.cells.is_empty());
    assert_eq!(no_rows.evaluated, 0);

    let no_cols = shmoo_map("min_max", &[0.0, 1.0], &[], &opts);
    assert!(no_cols.cells.is_empty());
    assert_eq!(no_cols.evaluated, 0);
    assert_eq!(no_cols.margin_scale(0), None);

    let nothing = shmoo_map("min_max", &[], &[], &opts);
    assert!(nothing.cells.is_empty());
    // Rendering an empty map is well-defined, too.
    assert!(nothing.render().starts_with("shmoo design=min_max"));
}

/// Gaussian σ = 0 must be *identical* to running with no variability at
/// all: the jitter path samples a zero-width distribution, so every delay
/// equals its nominal value and the pulse times match bit for bit.
#[test]
fn sigma_zero_equals_nominal_run() {
    for design in shmoo_design_names() {
        let (build, check) = design_spec(design);
        let jittered = BatchSweep::over(move || build(1.0))
            .variability(|| Variability::Gaussian { std: 0.0 })
            .check(check)
            .trials(8)
            .master_seed(123)
            .run_detailed();
        let nominal = BatchSweep::over(move || build(1.0))
            .check(check)
            .trials(8)
            .master_seed(123)
            .run_detailed();
        assert_eq!(
            jittered, nominal,
            "{design}: σ=0 jitter must be indistinguishable from the nominal run"
        );
        // And with zero-width jitter every trial is the same trial.
        for t in &jittered.trials[1..] {
            assert_eq!(t.outputs, jittered.trials[0].outputs);
        }
    }
}
