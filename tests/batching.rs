//! `getSimPulses` batching semantics (paper Fig. 6, the Dispatch relation):
//! all pulses that share an arrival time *and* a destination node form one
//! batch and are dispatched through the machine together, while equal-time
//! pulses bound for different nodes are separate batches. Within a batch,
//! inputs dispatch one at a time by ascending `(priority, port)`.
//!
//! These tests pin the observable contract the compiled kernel must keep:
//! the simulation trace shows one entry per batch, in a deterministic order.

use rlse::prelude::*;
use std::sync::Arc;

/// The C element from the paper: fires `q` once both inputs have arrived.
fn c_element() -> Arc<Machine> {
    Machine::new(
        "C",
        &["a", "b"],
        &["q"],
        12.0,
        7,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..EdgeDef::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..EdgeDef::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "idle", firing: "q", ..EdgeDef::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..EdgeDef::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..EdgeDef::default() },
        ],
    )
    .unwrap()
}

/// A pass-through cell: every input pulse fires `q` after 3 ps.
fn buffer() -> Arc<Machine> {
    Machine::new(
        "Buf",
        &["a"],
        &["q"],
        3.0,
        1,
        &[EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default() }],
    )
    .unwrap()
}

/// Simultaneous pulses on *different ports of the same node* are one batch:
/// the trace shows a single dispatch carrying both port names, and the whole
/// batch runs through the machine before any later event.
#[test]
fn same_node_simultaneous_ports_are_one_batch() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[100.0], "A");
    let b = c.inp_at(&[100.0], "B");
    let q = c.add_machine(&c_element(), &[a, b]).unwrap()[0];
    c.inspect(q, "Q");
    let mut sim = Simulation::new(c).with_trace();
    let events = sim.run().unwrap();

    let batches: Vec<_> = sim.trace().iter().filter(|e| e.cell == "C").collect();
    assert_eq!(batches.len(), 1, "one batch, not one dispatch per pulse");
    let batch = batches[0];
    assert_eq!(batch.time, 100.0);
    assert_eq!(batch.inputs, vec!["a".to_string(), "b".to_string()]);
    // Both pulses dispatched within the batch: a moves idle -> a_arr, then b
    // completes the round trip and fires.
    assert_eq!(batch.state_before, "idle");
    assert_eq!(batch.state_after, "idle");
    assert_eq!(batch.fired, vec![("q".to_string(), 112.0)]);
    assert_eq!(events.times("Q"), &[112.0]);
}

/// Pulses at different times on the same node are separate batches even on
/// the same port.
#[test]
fn same_node_different_times_are_separate_batches() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[100.0, 150.0], "A");
    let q = c.add_machine(&buffer(), &[a]).unwrap()[0];
    c.inspect(q, "Q");
    let mut sim = Simulation::new(c).with_trace();
    sim.run().unwrap();

    let batches: Vec<_> = sim.trace().iter().filter(|e| e.cell == "Buf").collect();
    assert_eq!(batches.len(), 2);
    assert_eq!(batches[0].time, 100.0);
    assert_eq!(batches[1].time, 150.0);
    for b in batches {
        assert_eq!(b.inputs, vec!["a".to_string()]);
    }
}

/// Equal-time pulses bound for *different nodes* are separate batches, one
/// trace entry each, dispatched in node-creation order (the heap breaks
/// time ties by node index, then insertion sequence).
#[test]
fn equal_time_different_nodes_are_separate_batches() {
    let mut c = Circuit::new();
    let a1 = c.inp_at(&[100.0], "A1");
    let a2 = c.inp_at(&[100.0], "A2");
    let buf = buffer();
    let q1 = c.add_machine(&buf, &[a1]).unwrap()[0];
    let q2 = c.add_machine(&buf, &[a2]).unwrap()[0];
    c.inspect(q1, "Q1");
    c.inspect(q2, "Q2");
    let mut sim = Simulation::new(c).with_trace();
    sim.run().unwrap();

    let batches: Vec<_> = sim.trace().iter().filter(|e| e.cell == "Buf").collect();
    assert_eq!(batches.len(), 2, "no cross-node merging of equal-time pulses");
    assert!(batches.iter().all(|e| e.time == 100.0 && e.inputs.len() == 1));
    // Deterministic batch order: the first-created node dispatches first.
    assert_eq!(batches[0].node_wire, "Q1");
    assert_eq!(batches[1].node_wire, "Q2");
}

/// Within a batch, inputs dispatch by ascending `(priority, port)`: an
/// explicit lower priority number wins even when a lower-indexed port pulsed
/// at the same instant.
#[test]
fn batch_dispatch_order_follows_priority_then_port() {
    // `first` records which input was dispatched first out of `idle`: the
    // second input of the pair then fires the telltale output.
    let racer = |pa: Option<u32>, pb: Option<u32>| {
        Machine::new(
            "Racer",
            &["a", "b"],
            &["qa", "qb"],
            5.0,
            3,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "saw_a", priority: pa, ..EdgeDef::default() },
                EdgeDef { src: "idle", trigger: "b", dst: "saw_b", priority: pb, ..EdgeDef::default() },
                // `qa` fires iff a dispatched first, `qb` iff b did.
                EdgeDef { src: "saw_a", trigger: "b", dst: "idle", firing: "qa", ..EdgeDef::default() },
                EdgeDef { src: "saw_a", trigger: "a", dst: "saw_a", ..EdgeDef::default() },
                EdgeDef { src: "saw_b", trigger: "a", dst: "idle", firing: "qb", ..EdgeDef::default() },
                EdgeDef { src: "saw_b", trigger: "b", dst: "saw_b", ..EdgeDef::default() },
            ],
        )
        .unwrap()
    };
    let run = |machine: Arc<Machine>| {
        let mut c = Circuit::new();
        let a = c.inp_at(&[100.0], "A");
        let b = c.inp_at(&[100.0], "B");
        let outs = c.add_machine(&machine, &[a, b]).unwrap();
        c.inspect(outs[0], "QA");
        c.inspect(outs[1], "QB");
        Simulation::new(c).run().unwrap()
    };

    // Default priorities (declaration order): the `a` edge was declared
    // first, so `a` dispatches first and `b` fires `qa`.
    let ev = run(racer(None, None));
    assert_eq!(ev.times("QA"), &[105.0]);
    assert!(ev.times("QB").is_empty());

    // Explicit priorities inverted: `b`'s edge now outranks `a`'s, so `b`
    // dispatches first and `a` fires `qb`.
    let ev = run(racer(Some(5), Some(1)));
    assert!(ev.times("QA").is_empty());
    assert_eq!(ev.times("QB"), &[105.0]);
}

/// The whole batching pipeline is deterministic: two fresh simulations of
/// the same circuit produce identical traces, entry for entry.
#[test]
fn batch_dispatch_is_deterministic_across_runs() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.inp_at(&[100.0, 100.0, 200.0], "A");
        let b = c.inp_at(&[100.0, 200.0], "B");
        let q = c.add_machine(&c_element(), &[a, b]).unwrap()[0];
        c.inspect(q, "Q");
        c
    };
    let mut s1 = Simulation::new(build()).with_trace();
    let mut s2 = Simulation::new(build()).with_trace();
    s1.run().unwrap();
    s2.run().unwrap();
    assert_eq!(s1.trace(), s2.trace());
    // And a reused simulation replays the identical trace.
    let t1 = s1.trace().to_vec();
    s1.run().unwrap();
    assert_eq!(s1.trace(), &t1[..]);
}
