//! Differential proof that the conservative-parallel event loop is
//! bit-identical to the scalar kernel: every Table-3 design plus the scaled
//! 16- and 32-input bitonic sorters, each run scalar once and partitioned
//! at 1, 2, 4, and 8 workers.
//!
//! Three layers of agreement are checked per (design, thread count):
//!
//! 1. the `Events` dictionaries compare equal;
//! 2. every observed pulse time is equal **bitwise** (`f64::to_bits`);
//! 3. the full dispatched-batch traces render to identical strings.
//!
//! A final test renders the partitioned bitonic-16 trace and compares it
//! byte for byte against the same golden file the scalar kernel is pinned
//! to (`tests/golden/bitonic_16.txt`).

use rlse::designs::{bitonic_stimulus, bitonic_sorter_with_inputs, design_spec};
use rlse::prelude::*;
use std::fmt::Write as _;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The six Table-3 designs plus the scaled sorters, at nominal timing.
const DESIGNS: [&str; 8] = [
    "min_max",
    "race_tree",
    "adder_sync",
    "adder_xsfq",
    "bitonic_4",
    "bitonic_8",
    "bitonic_16",
    "bitonic_32",
];

fn render(trace: &[TraceEntry]) -> String {
    let mut out = String::new();
    for entry in trace {
        writeln!(out, "{entry}").expect("string write");
    }
    out
}

fn assert_bitwise_equal(design: &str, threads: usize, scalar: &Events, par: &Events) {
    assert_eq!(par, scalar, "{design} at {threads} workers: events diverged");
    for name in scalar.names() {
        let (a, b) = (scalar.times(name), par.times(name));
        assert_eq!(a.len(), b.len(), "{design}/{name} at {threads} workers: count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{design}/{name} at {threads} workers: time not bitwise equal"
            );
        }
    }
}

#[test]
fn partitioned_runs_are_bit_identical_across_designs_and_thread_counts() {
    for design in DESIGNS {
        let (build, _check) = design_spec(design);
        let mut scalar_sim = Simulation::new(build(1.0)).with_trace();
        let scalar_ev = scalar_sim.run().expect("scalar run is clean");
        let scalar_trace = render(scalar_sim.trace());
        for threads in THREADS {
            let mut par = ParallelSim::new(build(1.0)).threads(threads).with_trace();
            let par_ev = par.run().expect("partitioned run is clean");
            assert_bitwise_equal(design, threads, &scalar_ev, &par_ev);
            assert_eq!(
                render(par.trace()),
                scalar_trace,
                "{design} at {threads} workers: trace diverged"
            );
        }
    }
}

#[test]
fn partitioned_runs_take_the_parallel_path_on_scaled_designs() {
    // The scaled sorters have plenty of dispatch nodes, so at 2+ workers
    // the partitioned path (not a fallback) must be what produced the
    // bit-identical results above.
    for design in ["bitonic_16", "bitonic_32"] {
        let (build, _check) = design_spec(design);
        for threads in [2usize, 4, 8] {
            let mut par = ParallelSim::new(build(1.0)).threads(threads);
            par.run().expect("partitioned run is clean");
            assert!(
                par.last_run_parallel(),
                "{design} at {threads} workers: expected the partitioned path"
            );
        }
    }
}

#[test]
fn partitioned_bitonic_16_trace_matches_the_scalar_golden_file() {
    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/bitonic_16.txt");
    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_traces",
            golden.display()
        )
    });
    for threads in [2usize, 4, 8] {
        let mut c = Circuit::new();
        bitonic_sorter_with_inputs(&mut c, &bitonic_stimulus(16, 15.0)).unwrap();
        let mut par = ParallelSim::new(c).threads(threads).with_trace();
        par.run().expect("partitioned run is clean");
        assert!(par.last_run_parallel(), "{threads} workers: expected the partitioned path");
        assert!(
            render(par.trace()) == expected,
            "{threads} workers: partitioned trace diverged from the scalar golden bytes"
        );
    }
}
