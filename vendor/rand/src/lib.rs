//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so RLSE vendors
//! the small slice of `rand` it actually uses: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits and a [`rngs::StdRng`] generator. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for
//! simulation jitter, *not* cryptographic, and its stream is **not**
//! byte-compatible with upstream `rand`'s `StdRng` (ChaCha12). Everything in
//! RLSE that depends on reproducibility seeds explicitly, so only internal
//! consistency matters.

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` (half-open).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let v = range.start + unit_f64(rng) * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, negligible for simulation workloads.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Sample uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    /// A bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step: the seeding/stream-derivation function.
    #[inline]
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The standard RNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

/// Derive an independent 64-bit stream seed for sub-stream `index` of
/// `master`. Used by RLSE's sweep engine so trial *i* gets the same RNG
/// stream no matter which thread runs it.
pub fn derive_stream_seed(master: u64, index: u64) -> u64 {
    let mut state = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rngs::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let k: u32 = r.gen_range(3u32..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn stream_seeds_differ_per_index() {
        let a = derive_stream_seed(42, 0);
        let b = derive_stream_seed(42, 1);
        let c = derive_stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
