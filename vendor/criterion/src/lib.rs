//! Offline drop-in subset of the `criterion` benchmarking crate.
//!
//! The build environment has no network access to crates.io, so RLSE vendors
//! the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`], `bench_function`, `iter` / `iter_batched`,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is calibrated with a short warm-up to
//! pick an iteration count that fits a fixed time budget, then timed over
//! `sample_size` samples. Mean, min, and max per-iteration times are printed
//! to stdout. There is no HTML report, outlier analysis, or statistical
//! regression test — this harness exists to produce honest relative numbers
//! (e.g. "parallel sweep vs. serial rebuild") in an offline environment.

#![warn(missing_docs)]

use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration inputs are batched in `iter_batched` (accepted for API
/// compatibility; this harness materializes one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output: batch many per allocation.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Setup output per iteration.
    PerIteration,
}

/// Target time budget per benchmark, in nanoseconds.
const TARGET_NS: u128 = 400_000_000;

/// The per-benchmark timing driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration mean durations, one per sample.
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit one sample's share of budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_nanos().max(1);
        let per_sample = (TARGET_NS / self.samples as u128 / once).clamp(1, 10_000) as usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.results.push(total / per_sample as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().as_nanos().max(1);
        let per_sample = (TARGET_NS / self.samples as u128 / once.max(1)).clamp(1, 10_000) as usize;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let total = start.elapsed().as_nanos() as f64;
            self.results.push(total / per_sample as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark under this group's name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self.criterion.ran += 1;
        self
    }

    /// End the group (printing is incremental; this is a no-op hook).
    pub fn finish(&mut self) {}
}

fn report(id: &str, results: &[f64]) {
    if results.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = results.iter().sum::<f64>() / results.len() as f64;
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = results.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

/// The top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    ran: usize,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            ran: 0,
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.default_samples);
        f(&mut b);
        report(&id, &b.results);
        self.ran += 1;
        self
    }
}

/// Collect benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The bench entry point: run each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_run_batched_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
