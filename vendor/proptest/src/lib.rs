//! Offline drop-in subset of the `proptest` property-testing crate.
//!
//! The build environment has no network access to crates.io, so RLSE vendors
//! the slice of proptest its test suite uses: the [`proptest!`] macro,
//! `prop_assert*` / [`prop_assume!`], [`Strategy`](strategy::Strategy)
//! implementations for integer ranges and tuples, [`collection::vec`], and
//! [`sample::subsequence`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs verbatim;
//!   cases are deterministic (seeded by case index), so a failure reproduces
//!   by re-running the test.
//! * **Deterministic seeds.** Upstream randomizes seeds per run and persists
//!   regressions; here case `k` of every test always uses the same stream,
//!   which keeps CI reproducible without a persistence file.

pub mod test_runner {
    use rand::rngs::StdRng;
    pub use rand::RngCore;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Build a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The RNG driving generation for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic stream for case `case` of a run.
        pub fn for_case(case: u32) -> Self {
            TestRng(StdRng::seed_from_u64(
                0xA5A5_0000_0000_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-test configuration (subset: only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug + Clone;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Debug + Clone>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A vector length spec: an exact size or a half-open range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`, sized by `size` (a `usize`
    /// for an exact length or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy yielding order-preserving subsequences of a base vector.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Debug + Clone> {
        base: Vec<T>,
        size: usize,
    }

    /// Generate subsequences of exactly `size` elements of `base`, keeping
    /// the base's relative order.
    pub fn subsequence<T: Debug + Clone>(base: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= base.len(), "subsequence larger than base");
        Subsequence { base, size }
    }

    impl<T: Debug + Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Floyd's algorithm for a uniform size-k index set, then emit in
            // base order.
            let n = self.base.len();
            let k = self.size;
            let mut picked = vec![false; n];
            for j in (n - k)..n {
                let t = rng.gen_range(0..j + 1);
                if picked[t] {
                    picked[j] = true;
                } else {
                    picked[t] = true;
                }
            }
            self.base
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// The glob-import surface: strategies, config, and the assertion macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skip the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests: each `fn` runs `cases` times with fresh generated
/// inputs bound by `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strat = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                            panic!("case {case} failed: {msg}\n  inputs: {inputs}");
                        }
                        Err(payload) => {
                            eprintln!("case {case} panicked; inputs: {inputs}");
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, v in collection::vec(0i32..5, 2..6)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn subsequence_preserves_order(s in sample::subsequence((0..10usize).collect::<Vec<_>>(), 4)) {
            prop_assert_eq!(s.len(), 4);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn exact_size_vec() {
        let s = collection::vec(0u8..4, 3);
        let mut rng = crate::test_runner::TestRng::for_case(0);
        let v = crate::strategy::Strategy::generate(&s, &mut rng);
        assert_eq!(v.len(), 3);
    }
}
