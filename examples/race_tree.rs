//! Race-logic classification (paper §5.2): a decision tree whose features
//! are encoded as pulse arrival times returns exactly one label per
//! evaluation.
//!
//! Run with `cargo run --example race_tree`.

use rlse::designs::{race_tree_with_inputs, Thresholds};
use rlse::prelude::*;

fn classify(f1: f64, f2: f64) -> Result<&'static str, rlse::core::Error> {
    let mut circuit = Circuit::new();
    race_tree_with_inputs(&mut circuit, f1, f2, 20.0, Thresholds::default())?;
    let events = Simulation::new(circuit).run()?;
    let winners: Vec<&str> = ["a", "b", "c", "d"]
        .into_iter()
        .filter(|l| !events.times(l).is_empty())
        .collect();
    assert_eq!(winners.len(), 1, "race trees return exactly one label");
    Ok(["a", "b", "c", "d"]
        .into_iter()
        .find(|l| !events.times(l).is_empty())
        .expect("one winner"))
}

fn main() -> Result<(), rlse::core::Error> {
    // Thresholds: f1 < 50 goes left; then f2 < 30 (left) / f2 < 70 (right).
    println!("tree: f1<50 ? (f2<30 ? a : b) : (f2<70 ? c : d)\n");
    for (f1, f2) in [(20.0, 10.0), (20.0, 60.0), (80.0, 40.0), (80.0, 95.0), (45.0, 25.0)] {
        let label = classify(f1, f2)?;
        println!("f1={f1:>5.1}  f2={f2:>5.1}  ->  label {label}");
    }
    println!("\nOK: every evaluation produced exactly one winning label.");
    Ok(())
}
