//! Debugging workflows: the dispatch trace log, the static linter, VCD
//! export for external waveform viewers, and the telemetry layer (run
//! counters, per-cell tallies, and a Chrome `trace_event` timeline for
//! `about:tracing`/Perfetto).
//!
//! Run with `cargo run --example debugging`.

use rlse::core::validate::analyze;
use rlse::core::vcd::to_vcd_default;
use rlse::designs::min_max;
use rlse::prelude::*;

fn main() -> Result<(), rlse::core::Error> {
    let mut circuit = Circuit::new();
    let a = circuit.inp_at(&[115.0], "A");
    let b = circuit.inp_at(&[64.0], "B");
    let silent = circuit.inp_at(&[], "UNUSED"); // deliberately fishy
    let _ = rlse::cells::jtl(&mut circuit, silent)?;
    let (low, high) = min_max(&mut circuit, a, b)?;
    circuit.inspect(low, "LOW");
    circuit.inspect(high, "HIGH");

    // 1. Static lints before simulating.
    println!("--- lints ---");
    print!("{}", analyze(&circuit));

    // 2. Simulate with the dispatch trace and a telemetry handle enabled.
    let tel = Telemetry::new();
    let mut sim = Simulation::new(circuit).with_trace().telemetry(&tel);
    let events = sim.run()?;
    println!("\n--- dispatch trace ---");
    for entry in sim.trace() {
        println!("{entry}");
    }
    assert!(sim
        .trace()
        .iter()
        .any(|e| e.cell == "C_INV" && !e.fired.is_empty()));

    // 3. Export a VCD for GTKWave and friends.
    let vcd = to_vcd_default(&events);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/min_max.vcd", &vcd).expect("write vcd");
    println!("\nwrote target/min_max.vcd ({} bytes)", vcd.len());

    // 4. The telemetry report: what did that run actually do? Counters are
    // deterministic (they never include wall-clock), so they make good
    // regression anchors.
    let report = tel.report();
    println!("\n--- telemetry ---");
    print!("{report}");
    assert_eq!(report.counter("sim.runs"), 1);
    assert_eq!(
        report.counter("sim.wire_pulses"),
        events.pulse_count_all() as u64
    );
    assert!(report.cells.iter().any(|(name, _)| name == "C_INV"));

    // 5. And the wall-clock side: a Chrome trace_event timeline of the
    // compile/run spans, viewable in about:tracing or https://ui.perfetto.dev.
    let trace = tel.chrome_trace_json();
    std::fs::write("target/min_max_timeline.json", &trace).expect("write timeline");
    println!(
        "\nwrote target/min_max_timeline.json ({} bytes) — open in about:tracing",
        trace.len()
    );
    Ok(())
}
