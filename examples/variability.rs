//! Robustness under timing variability (paper §5.2): every propagation
//! delay gets Gaussian jitter, and the events dictionary is checked for
//! rank-order correctness after each run.
//!
//! Run with `cargo run --example variability --release`.

use rlse::designs::bitonic_sorter_with_inputs;
use rlse::prelude::*;

fn run(sigma: f64, seed: u64) -> Result<bool, rlse::core::Error> {
    let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
    let mut circuit = Circuit::new();
    bitonic_sorter_with_inputs(&mut circuit, &times)?;
    let events = Simulation::new(circuit)
        .variability(Variability::Gaussian { std: sigma })
        .seed(seed)
        .run()?;
    let mut prev = f64::NEG_INFINITY;
    for k in 0..8 {
        let t = events.times(&format!("o{k}"));
        if t.len() != 1 || t[0] < prev {
            return Ok(false);
        }
        prev = t[0];
    }
    Ok(true)
}

fn main() -> Result<(), rlse::core::Error> {
    println!("bitonic-8 under Gaussian delay jitter (30 seeds per sigma):\n");
    for sigma in [0.1, 0.5, 1.0, 2.0, 3.0] {
        let mut ok = 0;
        let mut violations = 0;
        for seed in 0..30 {
            match run(sigma, seed) {
                Ok(true) => ok += 1,
                Ok(false) => {}
                Err(_) => violations += 1,
            }
        }
        println!(
            "sigma = {sigma:>4.1} ps: {ok:>2}/30 sorted correctly, {violations} timing violations"
        );
    }
    println!("\nSmall jitter is absorbed; jitter comparable to the cells'");
    println!("transition times starts corrupting order or tripping constraints.");
    Ok(())
}
