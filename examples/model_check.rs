//! Formal verification (paper §4.4/§5.3): translate a design to timed
//! automata, check the paper's two queries with the built-in zone-based
//! model checker, and export UPPAAL artifacts for `verifyta`.
//!
//! Run with `cargo run --example model_check --release`.

use rlse::cells::defs::and_elem;
use rlse::designs::min_max;
use rlse::prelude::*;
use rlse::ta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The Synchronous AND cell in isolation -------------------------
    let tr = translate_machine(
        &and_elem(),
        &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
        10,
    )?;
    println!("AND cell TA network: {:?}", tr.net.stats());
    let q2 = check(&tr.net, &McQuery::query2(&tr), McOptions::default());
    println!(
        "Query 2 (no error state reachable): holds={:?}, {} states, {:.3}s",
        q2.holds, q2.states(), q2.time_secs
    );
    let q1 = check(
        &tr.net,
        &McQuery::query1(&tr, &[("q", vec![59.2])]),
        McOptions::default(),
    );
    println!(
        "Query 1 (q fires only at 59.2 ps):  holds={:?}, {} states, {:.3}s",
        q1.holds, q1.states(), q1.time_secs
    );
    assert_eq!(q1.holds, Some(true));
    assert_eq!(q2.holds, Some(true));

    // --- The min-max pair with the paper's §5.3 stimulus ----------------
    let mut circuit = Circuit::new();
    let a = circuit.inp_at(&[115.0, 215.0, 315.0], "A");
    let b = circuit.inp_at(&[64.0, 184.0, 304.0], "B");
    let (low, high) = min_max(&mut circuit, a, b)?;
    circuit.inspect(low, "LOW");
    circuit.inspect(high, "HIGH");
    let tr = translate_circuit(&circuit)?;
    let expected = [
        ("LOW", vec![89.0, 209.0, 329.0]),
        ("HIGH", vec![140.0, 240.0, 340.0]),
    ];
    let q1 = check(&tr.net, &McQuery::query1(&tr, &expected), McOptions::default());
    println!(
        "\nmin-max Query 1: holds={:?}, {} states, {:.3}s",
        q1.holds, q1.states(), q1.time_secs
    );
    assert_eq!(q1.holds, Some(true));

    // --- UPPAAL artifacts -----------------------------------------------
    let dir = std::path::Path::new("target/uppaal");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("min_max.xml"), to_uppaal_xml(&tr.net))?;
    std::fs::write(
        dir.join("min_max.q"),
        format!("{}\n{}\n", query1_tctl(&tr, &expected), query2_tctl(&tr)),
    )?;
    println!("\nwrote target/uppaal/min_max.xml and .q (feed these to verifyta)");
    println!("generated Query 1 TCTL:\n{}", query1_tctl(&tr, &expected));
    Ok(())
}
