//! Mixing behavioral software models with pulse circuits: the 16×2-bit
//! memory "hole" of the paper's Figure 9, scripted and plotted (Figure 10).
//!
//! Run with `cargo run --example memory_hole`.

use rlse::designs::{memory_bench, MemOp};
use rlse::designs::memory::decode_reads;
use rlse::prelude::*;

fn main() -> Result<(), rlse::core::Error> {
    let ops = [
        MemOp::Write { addr: 5, data: 3 },
        MemOp::Write { addr: 9, data: 1 },
        MemOp::Read { addr: 5 },
        MemOp::Read { addr: 9 },
        MemOp::Write { addr: 5, data: 2 },
        MemOp::Read { addr: 5 },
    ];
    let mut circuit = Circuit::new();
    memory_bench(&mut circuit, &ops)?;
    let events = Simulation::new(circuit).run()?;
    println!("{}", rlse::core::plot::render_default(&events));

    let vals = decode_reads(&events, ops.len());
    for (k, (op, v)) in ops.iter().zip(&vals).enumerate() {
        println!("period {k}: {op:?} -> read {v}");
    }
    assert_eq!(vals, vec![3, 1, 3, 1, 2, 2]);
    println!("OK: every write/read round-trips through the hole.");
    Ok(())
}
