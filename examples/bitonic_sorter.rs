//! An 8-input bitonic sorter over min-max comparators (paper Fig. 15/16c):
//! pulses go in at arbitrary times and come out in arrival-time order.
//!
//! Run with `cargo run --example bitonic_sorter`.

use rlse::designs::{bitonic_delay, bitonic_sorter_with_inputs};
use rlse::prelude::*;

fn main() -> Result<(), rlse::core::Error> {
    let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
    let mut circuit = Circuit::new();
    bitonic_sorter_with_inputs(&mut circuit, &times)?;
    println!(
        "circuit: {} cells across 24 comparators, network delay {} ps",
        circuit.stats().cells,
        bitonic_delay(8)
    );

    let events = Simulation::new(circuit).run()?;
    println!("{}", rlse::core::plot::render_default(&events));

    // Rank-order correctness (§5.2): one pulse per output, ascending.
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    for (k, t_in) in sorted.iter().enumerate() {
        let out = events.times(&format!("o{k}"));
        assert_eq!(out.len(), 1);
        assert!((out[0] - (t_in + bitonic_delay(8))).abs() < 1e-9);
        println!("o{k}: {:>6.1} ps   (= input {t_in} + 150)", out[0]);
    }
    println!("OK: outputs appear in rank order, 150 ps after their inputs.");
    Ok(())
}
