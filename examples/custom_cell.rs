//! Defining a custom SCE cell (paper §4.1, Cell Definition level): a T1
//! toggle element that emits a pulse on every *second* input, built from
//! scratch as a PyLSE Machine and simulated alongside library cells.
//!
//! Run with `cargo run --example custom_cell`.

use rlse::core::machine::{EdgeDef, Machine};
use rlse::prelude::*;

fn main() -> Result<(), rlse::core::Error> {
    // A toggle (T1) cell: idle -> half on the first pulse, half -> idle
    // (firing q) on the second. Transition times model its hold behavior.
    let toggle = Machine::new(
        "T1",
        &["a"],
        &["q"],
        6.5, // firing delay, ps
        5,   // JJ count
        &[
            EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "half",
                transition_time: 2.0,
                ..EdgeDef::default()
            },
            EdgeDef {
                src: "half",
                trigger: "a",
                dst: "idle",
                transition_time: 2.0,
                firing: "q",
                ..EdgeDef::default()
            },
        ],
    )?;
    println!("{toggle}");

    // Divide a pulse train by four with two toggles in series.
    let mut circuit = Circuit::new();
    let a = circuit.inp(20.0, 20.0, 8, "A")?;
    let half = circuit.add_machine(&toggle, &[a])?[0];
    circuit.inspect(half, "DIV2");
    // Fanout rule: to also observe DIV2 we must split it.
    let (tap, onward) = rlse::cells::s(&mut circuit, half)?;
    circuit.inspect(tap, "DIV2_TAP");
    let quarter = circuit.add_machine(&toggle, &[onward])?[0];
    circuit.inspect(quarter, "DIV4");

    let events = Simulation::new(circuit).run()?;
    println!("{}", rlse::core::plot::render_default(&events));
    assert_eq!(events.times("A").len(), 8);
    assert_eq!(events.times("DIV2_TAP").len(), 4);
    assert_eq!(events.times("DIV4").len(), 2);
    println!("OK: 8 input pulses -> 4 -> 2 through the toggle chain.");
    Ok(())
}
