//! Quickstart: simulate a Synchronous And Element (the paper's Figure 12).
//!
//! Run with `cargo run --example quickstart`.

use rlse::prelude::*;

fn main() -> Result<(), rlse::core::Error> {
    // Inputs: pulses on A and B at explicit times, a 50 ps periodic clock.
    let mut circuit = Circuit::new();
    let a = circuit.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
    let b = circuit.inp_at(&[75.0, 185.0, 225.0, 265.0], "B");
    let clk = circuit.inp(50.0, 50.0, 6, "CLK")?;

    // One AND cell; name its output wire for observation.
    let q = rlse::cells::and_s(&mut circuit, a, b, clk)?;
    circuit.inspect(q, "Q");

    // Simulate and inspect the events dictionary.
    let events = Simulation::new(circuit).run()?;
    println!("{}", rlse::core::plot::render_default(&events));
    println!("events['Q'] = {:?}", events.times("Q"));

    // The paper's assertion: Q fires 9.2 ps after each clock that ends a
    // period in which both A and B pulsed.
    assert_eq!(events.times("Q"), &[209.2, 259.2, 309.2]);
    println!("OK: pulses appear exactly where the paper says they should.");
    Ok(())
}
