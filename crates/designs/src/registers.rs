//! Sequential building blocks: a DRO shift register and a toggle-chain
//! ripple counter — the standard RSFQ demonstrations of stateful cells
//! under a common clock.

use rlse_cells::{dro, s, split_n, tff};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// Build an `n`-stage shift register: data pulses on `d` advance one DRO
/// per clock pulse; returns the per-stage outputs (stage 0 first, which is
/// the input end — a pulse appears on stage `k`'s output `k+1` clocks after
/// entering).
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(
    circ: &mut Circuit,
    d: Wire,
    clk: Wire,
    n: usize,
) -> Result<Vec<Wire>, Error> {
    assert!(n > 0, "a shift register needs at least one stage");
    // Clock fanout: each stage gets its own copy. Stage k's clock passes
    // through k extra splitter levels in split_n's tree, but the skew is
    // identical for neighbours up to one splitter delay (11 ps), far less
    // than a clock period.
    let clocks = split_n(circ, clk, n)?;
    let mut data = d;
    let mut taps = Vec::with_capacity(n);
    for (k, ck) in clocks.into_iter().enumerate() {
        let q = dro(circ, data, ck)?;
        if k + 1 < n {
            let (tap, onward) = s(circ, q)?;
            taps.push(tap);
            data = onward;
        } else {
            taps.push(q);
        }
    }
    Ok(taps)
}

/// Build an `n`-bit ripple counter from toggle flip-flops: bit `k` toggles
/// at 1/2^(k+1) of the input rate. Returns one observed tap per bit
/// (LSB first).
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_counter(circ: &mut Circuit, pulses: Wire, n: usize) -> Result<Vec<Wire>, Error> {
    assert!(n > 0, "a counter needs at least one bit");
    let mut taps = Vec::with_capacity(n);
    let mut feed = pulses;
    for k in 0..n {
        let q = tff(circ, feed)?;
        if k + 1 < n {
            let (tap, onward) = s(circ, q)?;
            taps.push(tap);
            feed = onward;
        } else {
            taps.push(q);
        }
    }
    Ok(taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn shift_register_delays_by_one_clock_per_stage() {
        let mut circ = Circuit::new();
        let d = circ.inp_at(&[30.0], "D");
        let clk = circ.inp(100.0, 100.0, 5, "CLK").unwrap();
        let taps = shift_register(&mut circ, d, clk, 3).unwrap();
        for (k, t) in taps.iter().enumerate() {
            circ.inspect(*t, &format!("T{k}"));
        }
        let ev = Simulation::new(circ).run().unwrap();
        // One pulse per stage, in strictly increasing clock periods.
        let mut last = 0.0;
        for k in 0..3 {
            let t = ev.times(&format!("T{k}"));
            assert_eq!(t.len(), 1, "T{k}: {t:?}");
            assert!(t[0] > last, "T{k} at {} after {last}", t[0]);
            last = t[0];
        }
        // Stage 0 reads out on the first clock (~100), stage 2 on the third.
        assert!(ev.times("T0")[0] < 200.0);
        assert!(ev.times("T2")[0] > 300.0);
    }

    #[test]
    fn shift_register_pipelines_multiple_tokens() {
        let mut circ = Circuit::new();
        let d = circ.inp_at(&[30.0, 130.0], "D");
        let clk = circ.inp(100.0, 100.0, 6, "CLK").unwrap();
        let taps = shift_register(&mut circ, d, clk, 2).unwrap();
        circ.inspect(taps[1], "OUT");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("OUT").len(), 2);
    }

    #[test]
    fn counter_divides_by_powers_of_two() {
        let mut circ = Circuit::new();
        let pulses = circ.inp(20.0, 20.0, 16, "IN").unwrap();
        let taps = ripple_counter(&mut circ, pulses, 3).unwrap();
        for (k, t) in taps.iter().enumerate() {
            circ.inspect(*t, &format!("B{k}"));
        }
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("B0").len(), 8);
        assert_eq!(ev.times("B1").len(), 4);
        assert_eq!(ev.times("B2").len(), 2);
    }

    #[test]
    fn counter_bits_toggle_in_order() {
        let mut circ = Circuit::new();
        let pulses = circ.inp(20.0, 20.0, 4, "IN").unwrap();
        let taps = ripple_counter(&mut circ, pulses, 2).unwrap();
        circ.inspect(taps[0], "B0");
        circ.inspect(taps[1], "B1");
        let ev = Simulation::new(circ).run().unwrap();
        // B1's only pulse comes after B0's second pulse.
        assert!(ev.times("B1")[0] > ev.times("B0")[1]);
    }
}
