//! A race tree (paper §5.2, citing Tzimpragos et al. \[51\]): a decision tree
//! evaluated with race logic, where feature values are encoded as pulse
//! arrival times relative to a start-of-evaluation pulse.
//!
//! Each internal decision node compares a feature's arrival time against a
//! threshold pulse (the start pulse delayed through a JTL chain) using a
//! complementary-output DRO: `q` fires if the feature beat the threshold
//! (go left), `qn` otherwise (go right). Leaf labels are coincidence (C)
//! elements combining the decisions along the root-to-leaf path, so exactly
//! one label fires per evaluation.
//!
//! The tree built here has 3 decision nodes and 4 labels (`a`–`d`) over two
//! features, using 18 basic cells in total — the size the paper reports.
//!
//! ```text
//!            f1 < t1 ?
//!           /         \
//!     f2 < t2 ?     f2 < t3 ?
//!      /    \        /    \
//!     a      b      c      d
//! ```

use rlse_cells::{c, dro_c, jtl_chain, jtl_delay, s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// The three thresholds of the tree, in ps relative to the start pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Root node threshold on feature 1.
    pub t1: f64,
    /// Left child threshold on feature 2.
    pub t2: f64,
    /// Right child threshold on feature 2.
    pub t3: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            t1: 50.0,
            t2: 30.0,
            t3: 70.0,
        }
    }
}

/// Build the race tree. `f1` and `f2` carry one pulse each (the encoded
/// feature values); `start` is the start-of-evaluation pulse from which the
/// three threshold pulses are derived. Returns the four label wires
/// `[a, b, c, d]`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn race_tree(
    circ: &mut Circuit,
    f1: Wire,
    f2: Wire,
    start: Wire,
    th: Thresholds,
) -> Result<[Wire; 4], Error> {
    // Distribute the start pulse to the three threshold generators.
    let (s1, rest) = s(circ, start)?;
    let (s2, s3) = s(circ, rest)?;
    // Path balancing: the feature and threshold paths into each decision
    // node must carry the same fixed delay so that the node compares
    // `f_i` against `t_i` exactly.
    //
    //   node 1: f1 goes through 3 JTLs (17.1 ps); thr1 through one splitter
    //           (11 ps) + a JTL of t1 + 6.1 ps  ⇒  left iff f1 < t1.
    //   nodes 2/3: f2 goes through 1 splitter (11 ps); thr through two
    //           splitters (22 ps) + a JTL of t − 11 ps  ⇒  left iff f2 < t.
    let thr1 = jtl_delay(circ, s1, th.t1 + 6.1)?;
    let thr2 = jtl_delay(circ, s2, th.t2 - 11.0)?;
    let thr3 = jtl_delay(circ, s3, th.t3 - 11.0)?;
    // Feature 2 feeds both second-level nodes.
    let (f2a, f2b) = s(circ, f2)?;
    let f1 = jtl_chain(circ, f1, 3)?;
    // Decision nodes.
    let (l1, r1) = dro_c(circ, f1, thr1)?;
    let (l2, r2) = dro_c(circ, f2a, thr2)?;
    let (l3, r3) = dro_c(circ, f2b, thr3)?;
    // Path conjunction: one C element per leaf.
    let (l1a, l1b) = s(circ, l1)?;
    let (r1a, r1b) = s(circ, r1)?;
    let label_a = c(circ, l1a, l2)?;
    let label_b = c(circ, l1b, r2)?;
    let label_c = c(circ, r1a, l3)?;
    let label_d = c(circ, r1b, r3)?;
    Ok([label_a, label_b, label_c, label_d])
}

/// Build a complete race-tree circuit with fresh inputs: feature pulses at
/// `start + f1`/`start + f2` and the start pulse at `start`, labels
/// observed as `a`–`d`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn race_tree_with_inputs(
    circ: &mut Circuit,
    f1: f64,
    f2: f64,
    start: f64,
    th: Thresholds,
) -> Result<[Wire; 4], Error> {
    let f1 = circ.inp_at(&[start + f1], "f1");
    let f2 = circ.inp_at(&[start + f2], "f2");
    let st = circ.inp_at(&[start], "start");
    let labels = race_tree(circ, f1, f2, st, th)?;
    for (w, n) in labels.iter().zip(["a", "b", "c", "d"]) {
        circ.inspect(*w, n);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    fn winner(f1: f64, f2: f64) -> &'static str {
        let mut circ = Circuit::new();
        race_tree_with_inputs(&mut circ, f1, f2, 20.0, Thresholds::default()).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let fired: Vec<&str> = ["a", "b", "c", "d"]
            .into_iter()
            .filter(|l| !ev.times(l).is_empty())
            .collect();
        // The single-winner property of §5.2.
        assert_eq!(
            ["a", "b", "c", "d"]
                .iter()
                .map(|l| ev.times(l).len())
                .sum::<usize>(),
            1,
            "exactly one label pulse"
        );
        fired[0]
    }

    #[test]
    fn all_four_leaves_are_reachable() {
        // Thresholds: t1=50 on f1; t2=30, t3=70 on f2.
        assert_eq!(winner(20.0, 10.0), "a"); // f1<50, f2<30
        assert_eq!(winner(20.0, 60.0), "b"); // f1<50, f2>30
        assert_eq!(winner(80.0, 40.0), "c"); // f1>50, f2<70
        assert_eq!(winner(80.0, 95.0), "d"); // f1>50, f2>70
    }

    #[test]
    fn uses_18_cells_like_the_paper() {
        let mut circ = Circuit::new();
        race_tree_with_inputs(&mut circ, 20.0, 10.0, 20.0, Thresholds::default()).unwrap();
        assert_eq!(circ.stats().cells, 18);
    }

    #[test]
    fn boundary_feature_values_still_pick_one_label() {
        for (f1, f2) in [(5.0, 5.0), (95.0, 95.0), (40.0, 60.0), (60.0, 20.0)] {
            let _ = winner(f1, f2); // asserts the single-winner property
        }
    }
}
