//! The memory "hole" of the paper's Figure 9: a 16-address × 2-bit memory
//! implemented as pure behavioral code wrapped in a pulse interface.
//!
//! Address and data bits accumulate between clock pulses; on a clock pulse,
//! the write (if enabled) and read are performed, the read value is emitted
//! on the 2-bit output, and the accumulators reset for the next period.

use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;
use rlse_core::functional::Hole;

/// Input port names of the memory hole, in order: read address bits
/// (`ra3..ra0`, MSB first), write address bits (`wa3..wa0`), data bits
/// (`d1`, `d0`), write enable (`we`), and clock (`clk`).
pub const MEMORY_INPUTS: [&str; 12] = [
    "ra3", "ra2", "ra1", "ra0", "wa3", "wa2", "wa1", "wa0", "d1", "d0", "we", "clk",
];

/// Output port names: the 2-bit read value, MSB first.
pub const MEMORY_OUTPUTS: [&str; 2] = ["q1", "q0"];

/// Create the memory hole (Fig. 9): 16 addresses each storing 2 bits, with
/// a 5.0 ps firing delay.
pub fn memory_hole() -> Hole {
    let mut mem = [0u8; 16];
    let (mut raddr, mut waddr, mut wenable, mut data) = (0usize, 0usize, false, 0u8);
    Hole::new(
        "memory",
        5.0,
        &MEMORY_INPUTS,
        &MEMORY_OUTPUTS,
        move |ins, _time| {
            let bit = |i: usize| usize::from(ins[i]);
            raddr |= bit(0) * 8 + bit(1) * 4 + bit(2) * 2 + bit(3);
            waddr |= bit(4) * 8 + bit(5) * 4 + bit(6) * 2 + bit(7);
            data |= (bit(8) * 2 + bit(9)) as u8;
            wenable |= ins[10];
            if ins[11] {
                // Clock pulse: commit the write, perform the read, reset.
                if wenable {
                    mem[waddr] = data;
                }
                let value = mem[raddr];
                raddr = 0;
                waddr = 0;
                wenable = false;
                data = 0;
                vec![(value >> 1) & 1 == 1, value & 1 == 1]
            } else {
                vec![false, false]
            }
        },
    )
}

/// Wire a memory hole into `circ`, connecting the given inputs in
/// [`MEMORY_INPUTS`] order; returns `(q1, q0)`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn add_memory(circ: &mut Circuit, inputs: &[Wire; 12]) -> Result<(Wire, Wire), Error> {
    let outs = circ.add_hole(memory_hole(), inputs)?;
    Ok((outs[0], outs[1]))
}

/// Build a scripted memory test bench: a sequence of `(period, op)` where
/// each period is 100 ps long and the clock pulses at the end of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Write `data` to `addr` (and read `addr` back in the same period).
    Write {
        /// Address to write (0–15).
        addr: u8,
        /// 2-bit value to store.
        data: u8,
    },
    /// Read `addr`.
    Read {
        /// Address to read (0–15).
        addr: u8,
    },
    /// Idle period (clock only).
    Idle,
}

/// Build a circuit driving the memory with the given schedule (one op per
/// 100 ps period, address/data bits pulsed mid-period, clock at the period
/// end). Observes `q1`/`q0`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn memory_bench(circ: &mut Circuit, ops: &[MemOp]) -> Result<(Wire, Wire), Error> {
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); 12];
    for (k, op) in ops.iter().enumerate() {
        let t = 100.0 * k as f64 + 50.0;
        let clk_t = 100.0 * k as f64 + 90.0;
        times[11].push(clk_t);
        match *op {
            MemOp::Write { addr, data } => {
                for b in 0..4 {
                    if addr & (1 << (3 - b)) != 0 {
                        times[4 + b].push(t); // wa bits
                        times[b].push(t); // also read back: ra bits
                    }
                }
                if data & 2 != 0 {
                    times[8].push(t);
                }
                if data & 1 != 0 {
                    times[9].push(t);
                }
                times[10].push(t); // we
            }
            MemOp::Read { addr } => {
                for (b, ra) in times.iter_mut().enumerate().take(4) {
                    if addr & (1 << (3 - b)) != 0 {
                        ra.push(t);
                    }
                }
            }
            MemOp::Idle => {}
        }
    }
    let wires: Vec<Wire> = MEMORY_INPUTS
        .iter()
        .zip(&times)
        .map(|(name, ts)| circ.inp_at(ts, name))
        .collect();
    let inputs: [Wire; 12] = wires.try_into().expect("12 wires");
    let (q1, q0) = add_memory(circ, &inputs)?;
    circ.inspect(q1, "q1");
    circ.inspect(q0, "q0");
    Ok((q1, q0))
}

/// Decode the observed `q1`/`q0` pulses back into a per-period read value.
/// Returns `values[k]` = the 2-bit value read in period `k`.
pub fn decode_reads(events: &rlse_core::events::Events, periods: usize) -> Vec<u8> {
    let mut vals = vec![0u8; periods];
    for (wire, weight) in [("q1", 2u8), ("q0", 1u8)] {
        for &t in events.times(wire) {
            let k = ((t - 90.0 - 5.0) / 100.0).round() as usize;
            if k < periods {
                vals[k] |= weight;
            }
        }
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn write_then_read_round_trips() {
        let ops = [
            MemOp::Write { addr: 5, data: 3 },
            MemOp::Write { addr: 9, data: 1 },
            MemOp::Read { addr: 5 },
            MemOp::Read { addr: 9 },
            MemOp::Read { addr: 0 },
        ];
        let mut circ = Circuit::new();
        memory_bench(&mut circ, &ops).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let vals = decode_reads(&ev, ops.len());
        // Period 0 writes 3 to addr 5 and reads it back; period 1 writes 1
        // to addr 9; periods 2–4 read 5, 9, and the untouched 0.
        assert_eq!(vals, vec![3, 1, 3, 1, 0]);
    }

    #[test]
    fn idle_periods_read_zero_from_address_zero() {
        let ops = [MemOp::Idle, MemOp::Write { addr: 0, data: 2 }, MemOp::Idle];
        let mut circ = Circuit::new();
        memory_bench(&mut circ, &ops).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let vals = decode_reads(&ev, 3);
        assert_eq!(vals, vec![0, 2, 2]); // idle = read addr 0
    }

    #[test]
    fn overwrite_takes_effect() {
        let ops = [
            MemOp::Write { addr: 7, data: 1 },
            MemOp::Write { addr: 7, data: 2 },
            MemOp::Read { addr: 7 },
        ];
        let mut circ = Circuit::new();
        memory_bench(&mut circ, &ops).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(decode_reads(&ev, 3), vec![1, 2, 2]);
    }
}
