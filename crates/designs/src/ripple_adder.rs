//! An n-bit ripple-carry adder built from the synchronous full adder —
//! demonstrating the "elaboration-through-execution" scaling the paper's
//! §4.1 describes: Rust code generates arbitrarily wide hardware from the
//! 1-bit building block.
//!
//! Bit *i*'s adder is clocked `i` carry-latencies later than bit 0 (carry
//! ripple), so one clock pulse per addition suffices: each stage's
//! carry-out pulse is stored by the next stage's stateful gates until that
//! stage's (delayed) clock phases arrive.

use crate::adder::{full_adder_sync, SyncAdderOutputs};
use rlse_cells::{jtl_delay, s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// Clock stagger between consecutive bits (ps): must exceed the 1-bit
/// adder's data-in to carry-out latency (~100 ps after its own clock).
pub const STAGE_SKEW: f64 = 110.0;

/// The wires of an [`ripple_adder`] instance.
#[derive(Debug, Clone)]
pub struct RippleAdderOutputs {
    /// Per-bit sum outputs, LSB first.
    pub sums: Vec<Wire>,
    /// Final carry out.
    pub carry: Wire,
}

/// Build an `n`-bit ripple-carry adder over per-bit operand wires (`a` and
/// `b`, LSB first), a carry-in, and a single clock pulse per addition.
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length or are empty.
pub fn ripple_adder(
    circ: &mut Circuit,
    a: &[Wire],
    b: &[Wire],
    cin: Wire,
    clk: Wire,
) -> Result<RippleAdderOutputs, Error> {
    assert!(!a.is_empty() && a.len() == b.len(), "operand width mismatch");
    let n = a.len();
    // Clock tree: one staggered phase per bit.
    let mut phases = Vec::with_capacity(n);
    let mut rest = clk;
    for i in 0..n {
        let phase_delay = STAGE_SKEW * i as f64;
        if i + 1 < n {
            let (ph, more) = s(circ, rest)?;
            rest = more;
            phases.push(jtl_delay(circ, ph, phase_delay.max(0.1))?);
        } else {
            phases.push(jtl_delay(circ, rest, phase_delay.max(0.1))?);
        }
    }
    let mut carry = cin;
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let SyncAdderOutputs { sum, cout } =
            full_adder_sync(circ, a[i], b[i], carry, phases[i])?;
        sums.push(sum);
        carry = cout;
    }
    Ok(RippleAdderOutputs { sums, carry })
}

/// Build a complete test bench adding the `n`-bit values `x + y + cin`:
/// data pulses at 20 ps, one clock at 50 ps, outputs observed as
/// `S0..S{n-1}` and `COUT`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn ripple_adder_with_inputs(
    circ: &mut Circuit,
    n: usize,
    x: u64,
    y: u64,
    cin: bool,
) -> Result<RippleAdderOutputs, Error> {
    let bit_wire = |circ: &mut Circuit, v: u64, i: usize, name: String| {
        let times: &[f64] = if v & (1 << i) != 0 { &[20.0] } else { &[] };
        circ.inp_at(times, &name)
    };
    let a: Vec<Wire> = (0..n).map(|i| bit_wire(circ, x, i, format!("A{i}"))).collect();
    let b: Vec<Wire> = (0..n).map(|i| bit_wire(circ, y, i, format!("B{i}"))).collect();
    let cin_w = circ.inp_at(if cin { &[20.0] } else { &[] }, "CIN");
    let clk = circ.inp_at(&[50.0], "CLK");
    let outs = ripple_adder(circ, &a, &b, cin_w, clk)?;
    for (i, s) in outs.sums.iter().enumerate() {
        circ.inspect(*s, &format!("S{i}"));
    }
    circ.inspect(outs.carry, "COUT");
    Ok(outs)
}

/// Decode a simulated ripple-adder run back into an integer result.
pub fn decode_sum(events: &rlse_core::events::Events, n: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..n {
        if !events.times(&format!("S{i}")).is_empty() {
            v |= 1 << i;
        }
    }
    if !events.times("COUT").is_empty() {
        v |= 1 << n;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    fn add(n: usize, x: u64, y: u64, cin: bool) -> u64 {
        let mut circ = Circuit::new();
        ripple_adder_with_inputs(&mut circ, n, x, y, cin).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        decode_sum(&ev, n)
    }

    #[test]
    fn two_bit_exhaustive() {
        for x in 0..4u64 {
            for y in 0..4u64 {
                for cin in [false, true] {
                    assert_eq!(
                        add(2, x, y, cin),
                        x + y + cin as u64,
                        "{x} + {y} + {cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_bit_spot_checks() {
        assert_eq!(add(4, 9, 6, false), 15);
        assert_eq!(add(4, 15, 15, true), 31);
        assert_eq!(add(4, 0, 0, false), 0);
        assert_eq!(add(4, 8, 8, false), 16);
    }

    #[test]
    fn cell_count_scales_linearly() {
        let count = |n: usize| {
            let mut circ = Circuit::new();
            ripple_adder_with_inputs(&mut circ, n, 0, 0, false).unwrap();
            circ.stats().cells
        };
        let c1 = count(1);
        let c4 = count(4);
        // Each extra bit adds one full adder (19 cells) + clock fanout.
        assert!(c4 > 3 * c1, "c1={c1} c4={c4}");
        assert!(c4 < 5 * c1 + 20, "c1={c1} c4={c4}");
    }
}
