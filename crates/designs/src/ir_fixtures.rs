//! Netlist-IR emitters for the evaluation designs.
//!
//! Every design named by [`shmoo_design_names`](crate::shmoo_design_names)
//! can be exported as a self-contained [`Ir`] document at any stimulus
//! time-scale factor. The emitters are the fixture source for the IR
//! round-trip tests, the golden JSON files, and the `rlse-serve` request
//! corpus: the exported IR rebuilds the exact circuit (bit-identical
//! `Events`), and its content hash keys the compiled-artifact cache.

use crate::margins::design_spec;
use rlse_core::ir::{Ir, IrQuery};
use rlse_core::prelude::*;

/// Export one design's scaled stimulus bench as an IR document.
///
/// The IR is named `{name}@x{scale}` (display metadata only — the content
/// hash ignores it) and carries a [`IrQuery::NoErrorState`] query, the
/// paper's Query 2 for the design.
///
/// # Panics
///
/// Panics if `name` is not one of
/// [`shmoo_design_names`](crate::shmoo_design_names).
pub fn design_ir(name: &str, scale: f64) -> Ir {
    let (build, _check) = design_spec(name);
    let circuit = build(scale);
    let mut ir = Ir::from_circuit(&circuit)
        .expect("shmoo designs are hole-free and fully wired")
        .with_name(&format!("{name}@x{scale}"));
    ir.queries.push(IrQuery::NoErrorState);
    ir
}

/// [`design_ir`] plus an [`IrQuery::OutputsOnlyAt`] query whose expected
/// pulse times come from one reference simulation of the design at σ = 0 —
/// the paper's Query 1, self-certifying by construction.
///
/// # Panics
///
/// Panics as [`design_ir`] does, or if the reference simulation fails.
pub fn design_ir_with_expected_outputs(name: &str, scale: f64) -> Ir {
    let mut ir = design_ir(name, scale);
    let circuit = ir.to_circuit().expect("freshly exported IR imports");
    let events = Simulation::new(circuit)
        .run()
        .expect("reference simulation of a shmoo design");
    let outputs = events
        .names()
        .map(|n| (n.to_string(), events.times(n).to_vec()))
        .collect();
    ir.queries.push(IrQuery::OutputsOnlyAt { outputs });
    ir
}

/// Every shmoo design exported at the given scale, in
/// [`shmoo_design_names`](crate::shmoo_design_names) order.
pub fn all_design_irs(scale: f64) -> Vec<Ir> {
    crate::shmoo_design_names()
        .iter()
        .map(|n| design_ir(n, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exported_ir_rebuilds_the_same_events() {
        for name in ["min_max", "adder_sync"] {
            let (build, _) = design_spec(name);
            let direct = Simulation::new(build(1.0)).run().unwrap();
            let ir = design_ir(name, 1.0);
            let rebuilt = Simulation::new(ir.to_circuit().unwrap()).run().unwrap();
            assert_eq!(direct, rebuilt, "{name}");
        }
    }

    #[test]
    fn content_hash_is_stable_across_rebuilds_and_ignores_the_name() {
        let a = design_ir("min_max", 1.0);
        let b = design_ir("min_max", 1.0).with_name("renamed");
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(
            a.content_hash(),
            design_ir("min_max", 2.0).content_hash(),
            "scale changes the stimulus and must change the hash"
        );
    }

    #[test]
    fn expected_output_queries_hold_under_model_independent_replay() {
        let ir = design_ir_with_expected_outputs("min_max", 1.0);
        assert_eq!(ir.queries.len(), 2);
        let IrQuery::OutputsOnlyAt { outputs } = &ir.queries[1] else {
            panic!("second query must be OutputsOnlyAt");
        };
        assert!(!outputs.is_empty());
        // The recorded times replay exactly.
        let events = Simulation::new(ir.to_circuit().unwrap()).run().unwrap();
        for (name, times) in outputs {
            assert_eq!(events.times(name), times.as_slice(), "{name}");
        }
    }
}
