//! The min-max pair (comparator) of the paper's Figure 11.
//!
//! Inputs `a` and `b` are duplicated by splitters; the first copy of each
//! enters an inverted C element, which fires `low` after the *first* input
//! arrives, and the second copies enter a C element whose output (the
//! *second* arrival) is delayed by a 2.0 ps JTL for path balancing before
//! being emitted as `high`. Both paths have a total propagation delay of
//! 11 + 14 = 11 + 12 + 2 = 25 ps.

use rlse_cells::{c, c_inv, jtl_delay, s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// Total propagation delay from either input to either output (ps).
pub const MIN_MAX_DELAY: f64 = 25.0;

/// Build a min-max pair: returns `(low, high)` where `low` carries the
/// earlier of the two input pulses (plus [`MIN_MAX_DELAY`]) and `high` the
/// later.
///
/// # Errors
///
/// Fails if `a` or `b` already has a reader (fanout violation).
///
/// ```
/// use rlse_core::prelude::*;
/// use rlse_designs::minmax::min_max;
///
/// # fn main() -> Result<(), rlse_core::Error> {
/// let mut circ = Circuit::new();
/// let a = circ.inp_at(&[115.0], "A");
/// let b = circ.inp_at(&[64.0], "B");
/// let (low, high) = min_max(&mut circ, a, b)?;
/// circ.inspect(low, "LOW");
/// circ.inspect(high, "HIGH");
/// let ev = Simulation::new(circ).run()?;
/// assert_eq!(ev.times("LOW"), &[89.0]);
/// assert_eq!(ev.times("HIGH"), &[140.0]);
/// # Ok(())
/// # }
/// ```
pub fn min_max(circ: &mut Circuit, a: Wire, b: Wire) -> Result<(Wire, Wire), Error> {
    let (a0, a1) = s(circ, a)?;
    let (b0, b1) = s(circ, b)?;
    let low = c_inv(circ, a0, b0)?;
    let high = c(circ, a1, b1)?;
    let high = jtl_delay(circ, high, 2.0)?;
    Ok((low, high))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn paper_stimulus_three_rounds() {
        // The §5.3 stimulus: A at 115/215/315, B at 64/184/304; outputs at
        // min+25 on LOW and max+25 on HIGH each round.
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[115.0, 215.0, 315.0], "A");
        let b = circ.inp_at(&[64.0, 184.0, 304.0], "B");
        let (low, high) = min_max(&mut circ, a, b).unwrap();
        circ.inspect(low, "LOW");
        circ.inspect(high, "HIGH");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("LOW"), &[89.0, 209.0, 329.0]);
        assert_eq!(ev.times("HIGH"), &[140.0, 240.0, 340.0]);
    }

    #[test]
    fn order_is_insensitive_to_which_input_is_earlier() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[10.0], "A");
        let b = circ.inp_at(&[40.0], "B");
        let (low, high) = min_max(&mut circ, a, b).unwrap();
        circ.inspect(low, "LOW");
        circ.inspect(high, "HIGH");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("LOW"), &[35.0]);
        assert_eq!(ev.times("HIGH"), &[65.0]);
    }

    #[test]
    fn uses_five_cells_like_figure11() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[10.0], "A");
        let b = circ.inp_at(&[40.0], "B");
        let _ = min_max(&mut circ, a, b).unwrap();
        assert_eq!(circ.stats().cells, 5); // 2 S, C, InvC, JTL
    }
}
