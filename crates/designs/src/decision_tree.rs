//! Arbitrary-depth race-logic decision trees: a generalization of the
//! paper's §5.2 race tree (and of Tzimpragos et al.'s boosted race trees
//! \[51\]) from the fixed 3-node/4-label shape to any tree over any number of
//! temporally-encoded features.
//!
//! Every internal node compares one feature's pulse arrival time against a
//! threshold pulse (derived from the start-of-evaluation pulse through a
//! calibrated JTL delay) with a complementary-output DRO; every leaf label
//! is the coincidence (C-element) conjunction of the decisions along its
//! root-to-leaf path. Exactly one label fires per evaluation.

use rlse_cells::{c, dro_c, jtl_delay, s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;
use std::collections::BTreeMap;

/// A decision-tree specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Tree {
    /// A leaf with its class label.
    Leaf(String),
    /// An internal node: go left if `feature < threshold`, else right.
    Branch {
        /// Index into the feature array.
        feature: usize,
        /// Threshold in ps relative to the start pulse.
        threshold: f64,
        /// Taken when the feature pulse beats the threshold.
        left: Box<Tree>,
        /// Taken otherwise.
        right: Box<Tree>,
    },
}

impl Tree {
    /// Convenience constructor for a branch.
    pub fn branch(feature: usize, threshold: f64, left: Tree, right: Tree) -> Tree {
        Tree::Branch {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor for a leaf.
    pub fn leaf(label: &str) -> Tree {
        Tree::Leaf(label.to_string())
    }

    /// Number of internal nodes.
    pub fn branch_count(&self) -> usize {
        match self {
            Tree::Leaf(_) => 0,
            Tree::Branch { left, right, .. } => 1 + left.branch_count() + right.branch_count(),
        }
    }

    /// Leaf labels, left to right.
    pub fn labels(&self) -> Vec<&str> {
        match self {
            Tree::Leaf(l) => vec![l.as_str()],
            Tree::Branch { left, right, .. } => {
                let mut v = left.labels();
                v.extend(right.labels());
                v
            }
        }
    }

    /// Software reference: which label does a feature vector reach?
    pub fn classify(&self, features: &[f64]) -> &str {
        match self {
            Tree::Leaf(l) => l,
            Tree::Branch {
                feature,
                threshold,
                left,
                right,
            } => {
                if features[*feature] < *threshold {
                    left.classify(features)
                } else {
                    right.classify(features)
                }
            }
        }
    }

    fn feature_uses(&self, counts: &mut BTreeMap<usize, usize>) {
        if let Tree::Branch {
            feature,
            left,
            right,
            ..
        } = self
        {
            *counts.entry(*feature).or_insert(0) += 1;
            left.feature_uses(counts);
            right.feature_uses(counts);
        }
    }
}

/// A tap chain: split a wire into `n` taps with *known* per-tap delays
/// (chained splitters: tap k has passed k+1 splitters, except the last,
/// which reuses the final splitter's second output).
fn tap_chain(circ: &mut Circuit, w: Wire, n: usize) -> Result<Vec<(Wire, f64)>, Error> {
    const S_DELAY: f64 = 11.0;
    if n == 1 {
        return Ok(vec![(w, 0.0)]);
    }
    let mut taps = Vec::with_capacity(n);
    let mut rest = w;
    for k in 0..n - 1 {
        let (tap, more) = s(circ, rest)?;
        taps.push((tap, S_DELAY * (k + 1) as f64));
        rest = more;
    }
    taps.push((rest, S_DELAY * (n - 1) as f64));
    Ok(taps)
}

/// Build the tree. `features[i]` carries one pulse at `start + value_i`;
/// `start` is the start-of-evaluation pulse. Returns `(label, wire)` pairs
/// in left-to-right leaf order.
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if the tree is a bare leaf, references a missing feature, or has
/// a threshold too small for the internal path-balancing delays
/// (thresholds must exceed the splitter-chain skew, ~11 ps per extra use
/// of the same feature).
pub fn decision_tree(
    circ: &mut Circuit,
    tree: &Tree,
    features: &[Wire],
    start: Wire,
) -> Result<Vec<(String, Wire)>, Error> {
    assert!(
        tree.branch_count() > 0,
        "a decision tree needs at least one branch"
    );
    // Tap chains for every used feature and for the start pulse.
    let mut uses = BTreeMap::new();
    tree.feature_uses(&mut uses);
    let branches = tree.branch_count();
    let mut feature_taps: BTreeMap<usize, Vec<(Wire, f64)>> = BTreeMap::new();
    for (&f, &n) in &uses {
        assert!(f < features.len(), "tree references missing feature {f}");
        feature_taps.insert(f, tap_chain(circ, features[f], n)?);
    }
    let mut start_taps = tap_chain(circ, start, branches)?;
    start_taps.reverse(); // pop from the front in construction order

    struct Builder<'a> {
        feature_taps: BTreeMap<usize, Vec<(Wire, f64)>>,
        start_taps: Vec<(Wire, f64)>,
        out: Vec<(String, Wire)>,
        features_len: usize,
        _marker: std::marker::PhantomData<&'a ()>,
    }

    impl Builder<'_> {
        fn build(
            &mut self,
            circ: &mut Circuit,
            tree: &Tree,
            enable: Option<Wire>,
        ) -> Result<(), Error> {
            match tree {
                Tree::Leaf(label) => {
                    let w = enable.expect("leaf below at least one branch");
                    self.out.push((label.clone(), w));
                    Ok(())
                }
                Tree::Branch {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let (f_tap, f_delay) = self
                        .feature_taps
                        .get_mut(feature)
                        .expect("tap chain exists")
                        .remove(0);
                    let (s_tap, s_delay) = self.start_taps.pop().expect("one tap per branch");
                    // Balance: feature arrives at start + value + f_delay;
                    // clocking the comparison at start + s_delay + d makes
                    // the decision boundary exactly `value < threshold` when
                    // d = threshold + f_delay - s_delay.
                    let d = threshold + f_delay - s_delay;
                    assert!(
                        d >= 0.1,
                        "threshold {threshold} too small for path skew ({f_delay} vs {s_delay})"
                    );
                    let thr = jtl_delay(circ, s_tap, d)?;
                    let (l_en, r_en) = dro_c(circ, f_tap, thr)?;
                    let (l_gate, r_gate) = match enable {
                        None => (l_en, r_en),
                        Some(en) => {
                            let (en_l, en_r) = s(circ, en)?;
                            (c(circ, en_l, l_en)?, c(circ, en_r, r_en)?)
                        }
                    };
                    self.build(circ, left, Some(l_gate))?;
                    self.build(circ, right, Some(r_gate))?;
                    let _ = self.features_len;
                    Ok(())
                }
            }
        }
    }

    let mut b = Builder {
        feature_taps,
        start_taps,
        out: Vec::new(),
        features_len: features.len(),
        _marker: std::marker::PhantomData,
    };
    b.build(circ, tree, None)?;
    Ok(b.out)
}

/// Build a complete evaluation bench: features encoded as pulses at
/// `start + value`, labels observed under their own names.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn decision_tree_with_inputs(
    circ: &mut Circuit,
    tree: &Tree,
    values: &[f64],
    start: f64,
) -> Result<Vec<(String, Wire)>, Error> {
    let features: Vec<Wire> = values
        .iter()
        .enumerate()
        .map(|(i, v)| circ.inp_at(&[start + v], &format!("f{i}")))
        .collect();
    let st = circ.inp_at(&[start], "start");
    let labels = decision_tree(circ, tree, &features, st)?;
    for (label, w) in &labels {
        circ.inspect(*w, label);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rlse_core::prelude::*;

    /// A depth-3 tree over 3 features with 8 leaves.
    fn deep_tree() -> Tree {
        Tree::branch(
            0,
            60.0,
            Tree::branch(
                1,
                40.0,
                Tree::branch(2, 50.0, Tree::leaf("l0"), Tree::leaf("l1")),
                Tree::branch(2, 70.0, Tree::leaf("l2"), Tree::leaf("l3")),
            ),
            Tree::branch(
                1,
                80.0,
                Tree::branch(2, 50.0, Tree::leaf("l4"), Tree::leaf("l5")),
                Tree::branch(2, 70.0, Tree::leaf("l6"), Tree::leaf("l7")),
            ),
        )
    }

    fn hardware_classify(tree: &Tree, values: &[f64]) -> String {
        let mut circ = Circuit::new();
        decision_tree_with_inputs(&mut circ, tree, values, 20.0).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let mut winners: Vec<String> = tree
            .labels()
            .into_iter()
            .filter(|l| !ev.times(l).is_empty())
            .map(String::from)
            .collect();
        assert_eq!(winners.len(), 1, "exactly one winner for {values:?}");
        // Each winner fires exactly once.
        assert_eq!(ev.times(&winners[0]).len(), 1);
        winners.remove(0)
    }

    #[test]
    fn shape_metadata() {
        let t = deep_tree();
        assert_eq!(t.branch_count(), 7);
        assert_eq!(t.labels().len(), 8);
        assert_eq!(t.classify(&[10.0, 10.0, 10.0]), "l0");
        assert_eq!(t.classify(&[90.0, 90.0, 90.0]), "l7");
    }

    #[test]
    fn depth3_tree_matches_reference_on_corners() {
        let t = deep_tree();
        for f0 in [20.0, 100.0] {
            for f1 in [15.0, 110.0] {
                for f2 in [25.0, 95.0] {
                    let values = [f0, f1, f2];
                    assert_eq!(
                        hardware_classify(&t, &values),
                        t.classify(&values),
                        "{values:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_shape_tree_as_special_case() {
        // The §5.2 race tree: f1<50 ? (f2<30 ? a : b) : (f2<70 ? c : d).
        let t = Tree::branch(
            0,
            50.0,
            Tree::branch(1, 30.0, Tree::leaf("a"), Tree::leaf("b")),
            Tree::branch(1, 70.0, Tree::leaf("c"), Tree::leaf("d")),
        );
        assert_eq!(hardware_classify(&t, &[20.0, 12.0]), "a");
        assert_eq!(hardware_classify(&t, &[20.0, 60.0]), "b");
        assert_eq!(hardware_classify(&t, &[80.0, 41.0]), "c");
        assert_eq!(hardware_classify(&t, &[80.0, 95.0]), "d");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Hardware agrees with the software reference on random feature
        /// vectors kept ≥ 8 ps away from every threshold (the setup window
        /// of the comparing DRO).
        #[test]
        fn random_vectors_agree_with_reference(
            raw in proptest::collection::vec(0usize..10, 3)
        ) {
            // A grid that stays ≥ 4 ps away from every threshold
            // (40/50/60/70/80), clearing the 2.8 ps setup window.
            const GRID: [f64; 10] =
                [12.0, 25.0, 34.0, 45.0, 56.0, 65.0, 76.0, 87.0, 96.0, 107.0];
            let values: Vec<f64> = raw.iter().map(|r| GRID[*r]).collect();
            let t = deep_tree();
            prop_assert_eq!(hardware_classify(&t, &values), t.classify(&values));
        }
    }
}
