//! A synchronous (clocked RSFQ) full adder built from the standard library
//! gates — the paper's "Adder (Sync)" design (Table 3, 19 cells).
//!
//! `sum = (a ⊕ b) ⊕ cin` and `cout = a·b + (a ⊕ b)·cin`, evaluated over
//! three clock phases derived from one clock input with JTL delays
//! (concurrent-flow clocking): phase 1 clocks the first-level XOR/AND,
//! phase 2 the second-level XOR/AND, and phase 3 the final OR. The stateful
//! gates themselves buffer intermediate pulses between phases, so no extra
//! retiming cells are needed.

use rlse_cells::{and_s, jtl, jtl_delay, or_s, s, xor_s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// Phase-2 clock skew relative to phase 1 (ps).
pub const PHASE2_SKEW: f64 = 35.0;
/// Phase-3 clock skew relative to phase 1 (ps).
pub const PHASE3_SKEW: f64 = 70.0;

/// The outputs of [`full_adder_sync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncAdderOutputs {
    /// The sum bit (pulse = 1) for each clocked period.
    pub sum: Wire,
    /// The carry-out bit.
    pub cout: Wire,
}

/// Build the synchronous full adder. Data pulses on `a`, `b`, `cin` must
/// arrive before the clock pulse on `clk` (minus the splitter delays and
/// setup time); `sum` appears ~82 ps and `cout` ~100 ps after the clock.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn full_adder_sync(
    circ: &mut Circuit,
    a: Wire,
    b: Wire,
    cin: Wire,
    clk: Wire,
) -> Result<SyncAdderOutputs, Error> {
    // Input fanout.
    let (a1, a2) = s(circ, a)?;
    let (b1, b2) = s(circ, b)?;
    let (cin1, cin2) = s(circ, cin)?;
    let cin1 = jtl(circ, cin1)?;
    let cin2 = jtl(circ, cin2)?;
    // Clock tree: three phases.
    let (k1, krest) = s(circ, clk)?;
    let (k2, k3) = s(circ, krest)?;
    let (p1x, p1a) = s(circ, k1)?;
    let k2 = jtl_delay(circ, k2, PHASE2_SKEW)?;
    let (p2x, p2a) = s(circ, k2)?;
    let p3 = jtl_delay(circ, k3, PHASE3_SKEW)?;
    // Level 1: x = a ⊕ b, g = a · b.
    let x = xor_s(circ, a1, b1, p1x)?;
    let g = and_s(circ, a2, b2, p1a)?;
    let g = jtl(circ, g)?;
    let (x1, x2) = s(circ, x)?;
    // Level 2: sum = x ⊕ cin, p = x · cin.
    let sum = xor_s(circ, x1, cin1, p2x)?;
    let sum = jtl(circ, sum)?;
    let p = and_s(circ, x2, cin2, p2a)?;
    // Level 3: cout = g + p.
    let cout = or_s(circ, g, p, p3)?;
    Ok(SyncAdderOutputs { sum, cout })
}

/// Build a full-adder test circuit for one input vector: data pulses at
/// `t=20` (where the vector bit is 1) and a single clock pulse at `t=50`,
/// with `SUM`/`COUT` observed.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn full_adder_sync_with_inputs(
    circ: &mut Circuit,
    a: bool,
    b: bool,
    cin: bool,
) -> Result<SyncAdderOutputs, Error> {
    let mk = |circ: &mut Circuit, bit: bool, name: &str| {
        let times: &[f64] = if bit { &[20.0] } else { &[] };
        circ.inp_at(times, name)
    };
    let a = mk(circ, a, "A");
    let b = mk(circ, b, "B");
    let cin = mk(circ, cin, "CIN");
    let clk = circ.inp_at(&[50.0], "CLK");
    let outs = full_adder_sync(circ, a, b, cin, clk)?;
    circ.inspect(outs.sum, "SUM");
    circ.inspect(outs.cout, "COUT");
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    fn run(a: bool, b: bool, cin: bool) -> (bool, bool) {
        let mut circ = Circuit::new();
        full_adder_sync_with_inputs(&mut circ, a, b, cin).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        assert!(ev.times("SUM").len() <= 1);
        assert!(ev.times("COUT").len() <= 1);
        (!ev.times("SUM").is_empty(), !ev.times("COUT").is_empty())
    }

    #[test]
    fn exhaustive_truth_table() {
        for v in 0u8..8 {
            let (a, b, cin) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
            let ones = [a, b, cin].iter().filter(|&&x| x).count();
            let (sum, cout) = run(a, b, cin);
            assert_eq!(sum, ones % 2 == 1, "sum for {a}{b}{cin}");
            assert_eq!(cout, ones >= 2, "cout for {a}{b}{cin}");
        }
    }

    #[test]
    fn uses_19_cells_like_the_paper() {
        let mut circ = Circuit::new();
        full_adder_sync_with_inputs(&mut circ, true, true, true).unwrap();
        assert_eq!(circ.stats().cells, 19);
    }

    #[test]
    fn output_latency_shape() {
        // sum ≈ clk + 68 + 7.9 + 5.7, cout ≈ clk + 92 + 8.2.
        let mut circ = Circuit::new();
        full_adder_sync_with_inputs(&mut circ, true, false, false).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let sum_t = ev.times("SUM")[0];
        assert!((sum_t - (50.0 + 68.0 + 7.9 + 5.7)).abs() < 1e-9, "{sum_t}");
    }
}
