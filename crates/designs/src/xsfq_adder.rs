//! A clockless dual-rail full adder in the style of xSFQ alternating logic
//! (paper Table 3, "Adder (xSFQ)").
//!
//! Every logical signal is a *pair* of wires: a pulse on the `t` rail means
//! 1, on the `f` rail means 0; exactly one rail pulses per evaluation wave.
//! The adder is built from 2x2 joins (which wait for one rail of each
//! operand pair and fire the rail-product output), splitters, and mergers.
//! No clock is needed — completion is signalled by the output rails
//! themselves.
//!
//! Note: the paper's xSFQ adder (83 cells) uses the full alternating-logic
//! discipline with first/last-arrival gate pairs; this design implements the
//! same dual-rail interface and function with the join-based construction,
//! which is considerably smaller (see EXPERIMENTS.md).

use rlse_cells::{join2x2, jtl, m, s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// A dual-rail signal: a pulse on `t` encodes 1, on `f` encodes 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualRail {
    /// True rail.
    pub t: Wire,
    /// False rail.
    pub f: Wire,
}

/// The outputs of [`full_adder_xsfq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsfqAdderOutputs {
    /// Dual-rail sum bit.
    pub sum: DualRail,
    /// Dual-rail carry-out bit.
    pub cout: DualRail,
}

/// Build the dual-rail full adder over dual-rail operands `a`, `b`, `cin`.
///
/// Exactly one rail of `sum` and one rail of `cout` pulses per input wave.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn full_adder_xsfq(
    circ: &mut Circuit,
    a: DualRail,
    b: DualRail,
    cin: DualRail,
) -> Result<XsfqAdderOutputs, Error> {
    // First join: decode the (a, b) pair.
    let (tt, tf, ft, ff) = join2x2(circ, a.t, a.f, b.t, b.f)?;
    // tt (a=b=1) is needed both for x_f and as the carry generate.
    let (tt_x, tt_g) = s(circ, tt)?;
    // ff (a=b=0) is needed both for x_f and as the carry kill.
    let (ff_x, ff_k) = s(circ, ff)?;
    // x = a ⊕ b as a dual-rail pair.
    let x_t = m(circ, tf, ft)?;
    let x_f = m(circ, tt_x, ff_x)?;
    // Second join: decode the (x, cin) pair.
    let (xc_tt, xc_tf, xc_ft, xc_ff) = join2x2(circ, x_t, x_f, cin.t, cin.f)?;
    // xc_tt (x=1, cin=1): sum=0 and cout=1. xc_tf (x=1, cin=0): sum=1, cout=0.
    let (xc_tt_s, xc_tt_c) = s(circ, xc_tt)?;
    let (xc_tf_s, xc_tf_c) = s(circ, xc_tf)?;
    // sum = x ⊕ cin.
    let s_t = m(circ, xc_tf_s, xc_ft)?;
    let s_f = m(circ, xc_tt_s, xc_ff)?;
    // cout: 1 via generate (a·b) or propagate-with-carry (x·cin);
    //       0 via kill (a̅·b̅) or propagate-without-carry (x·c̅in).
    let tt_g = jtl(circ, tt_g)?; // balance the join stage the xc_* rails pass
    let ff_k = jtl(circ, ff_k)?;
    let c_t = m(circ, tt_g, xc_tt_c)?;
    let c_f = m(circ, ff_k, xc_tf_c)?;
    Ok(XsfqAdderOutputs {
        sum: DualRail { t: s_t, f: s_f },
        cout: DualRail { t: c_t, f: c_f },
    })
}

/// Build a complete dual-rail adder circuit for one input vector, pulsing
/// the appropriate rail of each operand (staggered at 20/26/32 ps) and
/// observing `SUM_T`, `SUM_F`, `COUT_T`, `COUT_F`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn full_adder_xsfq_with_inputs(
    circ: &mut Circuit,
    a: bool,
    b: bool,
    cin: bool,
) -> Result<XsfqAdderOutputs, Error> {
    let mk = |circ: &mut Circuit, bit: bool, t0: f64, name: &str| {
        let t_times: &[f64] = if bit { &[t0] } else { &[] };
        let f_times: &[f64] = if bit { &[] } else { &[t0] };
        DualRail {
            t: circ.inp_at(t_times, &format!("{name}_T")),
            f: circ.inp_at(f_times, &format!("{name}_F")),
        }
    };
    let a = mk(circ, a, 20.0, "A");
    let b = mk(circ, b, 26.0, "B");
    let cin = mk(circ, cin, 32.0, "CIN");
    let outs = full_adder_xsfq(circ, a, b, cin)?;
    circ.inspect(outs.sum.t, "SUM_T");
    circ.inspect(outs.sum.f, "SUM_F");
    circ.inspect(outs.cout.t, "COUT_T");
    circ.inspect(outs.cout.f, "COUT_F");
    Ok(outs)
}

/// An n-bit clockless ripple-carry adder: chain [`full_adder_xsfq`] cells,
/// passing each stage's dual-rail carry to the next. No clock tree is
/// needed at any width — completion ripples with the carry rails.
///
/// Operands are per-bit dual-rail signals, LSB first.
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if the operands differ in width or are empty.
pub fn ripple_adder_xsfq(
    circ: &mut Circuit,
    a: &[DualRail],
    b: &[DualRail],
    cin: DualRail,
) -> Result<(Vec<DualRail>, DualRail), Error> {
    assert!(!a.is_empty() && a.len() == b.len(), "operand width mismatch");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (abit, bbit) in a.iter().zip(b) {
        let out = full_adder_xsfq(circ, *abit, *bbit, carry)?;
        sums.push(out.sum);
        carry = out.cout;
    }
    Ok((sums, carry))
}

/// Build a complete `bits`-wide clockless adder circuit computing
/// `a + b + cin`, with per-bit dual-rail inputs (`A{i}`, `B{i}`, `CIN`,
/// staggered 7 ps per bit position) and observed outputs `S{i}_T/F` and
/// `COUT_T/F`. The carry chain self-times, so any width works without a
/// clock tree — this is the scaled composition the parallel-simulation
/// benches drive.
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if `bits` is 0 or exceeds 64.
pub fn ripple_adder_xsfq_with_inputs(
    circ: &mut Circuit,
    bits: usize,
    a: u64,
    b: u64,
    cin: bool,
) -> Result<(), Error> {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    use crate::dual_rail::{dr_input, dr_inspect};
    let mk = |circ: &mut Circuit, v: u64, t0: f64, name: &str| -> Vec<DualRail> {
        (0..bits)
            .map(|i| {
                dr_input(circ, v >> i & 1 != 0, t0 + 7.0 * i as f64, &format!("{name}{i}"))
            })
            .collect()
    };
    let a = mk(circ, a, 20.0, "A");
    let b = mk(circ, b, 23.5, "B");
    let cin_w = dr_input(circ, cin, 34.0, "CIN");
    let (sums, cout) = ripple_adder_xsfq(circ, &a, &b, cin_w)?;
    for (i, s) in sums.iter().enumerate() {
        dr_inspect(circ, *s, &format!("S{i}"));
    }
    dr_inspect(circ, cout, "COUT");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    fn run(a: bool, b: bool, cin: bool) -> (bool, bool) {
        let mut circ = Circuit::new();
        full_adder_xsfq_with_inputs(&mut circ, a, b, cin).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        // Dual-rail invariant: exactly one rail of each pair pulses, once.
        for pair in [("SUM_T", "SUM_F"), ("COUT_T", "COUT_F")] {
            let total = ev.times(pair.0).len() + ev.times(pair.1).len();
            assert_eq!(total, 1, "exactly one pulse across {pair:?}");
        }
        (
            !ev.times("SUM_T").is_empty(),
            !ev.times("COUT_T").is_empty(),
        )
    }

    #[test]
    fn exhaustive_truth_table() {
        for v in 0u8..8 {
            let (a, b, cin) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
            let ones = [a, b, cin].iter().filter(|&&x| x).count();
            let (sum, cout) = run(a, b, cin);
            assert_eq!(sum, ones % 2 == 1, "sum for {a}{b}{cin}");
            assert_eq!(cout, ones >= 2, "cout for {a}{b}{cin}");
        }
    }

    #[test]
    fn clockless_ripple_adder_adds() {
        use crate::dual_rail::{dr_input, dr_inspect};
        for (x, y, cin) in [(0u64, 0u64, false), (3, 1, false), (2, 3, true), (3, 3, true)] {
            let mut circ = Circuit::new();
            let mk = |circ: &mut Circuit, v: u64, t0: f64, name: &str| -> Vec<DualRail> {
                (0..2)
                    .map(|i| {
                        dr_input(circ, v & (1 << i) != 0, t0 + 7.0 * i as f64, &format!("{name}{i}"))
                    })
                    .collect()
            };
            let a = mk(&mut circ, x, 20.0, "A");
            let b = mk(&mut circ, y, 23.5, "B");
            let cin_w = dr_input(&mut circ, cin, 34.0, "CIN");
            let (sums, cout) = ripple_adder_xsfq(&mut circ, &a, &b, cin_w).unwrap();
            for (i, s) in sums.iter().enumerate() {
                dr_inspect(&mut circ, *s, &format!("S{i}"));
            }
            dr_inspect(&mut circ, cout, "COUT");
            let ev = Simulation::new(circ).run().unwrap();
            let mut got = 0u64;
            for i in 0..2 {
                // Exactly one rail per sum bit.
                let t = ev.times(&format!("S{i}_T")).len();
                let f = ev.times(&format!("S{i}_F")).len();
                assert_eq!(t + f, 1, "S{i} rails for {x}+{y}+{cin}");
                if t == 1 {
                    got |= 1 << i;
                }
            }
            if !ev.times("COUT_T").is_empty() {
                got |= 4;
            }
            assert_eq!(got, x + y + cin as u64, "{x}+{y}+{cin}");
        }
    }

    #[test]
    fn wide_adder_ripples_worst_case_carry() {
        // a = 2^16 − 1 plus b = 1: the carry ripples the full width and the
        // sum is exactly 2^16 (only the carry-out's true rail fires).
        let bits = 16;
        let mut circ = Circuit::new();
        ripple_adder_xsfq_with_inputs(&mut circ, bits, (1u64 << bits) - 1, 1, false).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        for i in 0..bits {
            assert_eq!(ev.times(&format!("S{i}_T")).len(), 0, "S{i}_T");
            assert_eq!(ev.times(&format!("S{i}_F")).len(), 1, "S{i}_F");
        }
        assert_eq!(ev.times("COUT_T").len(), 1);
        assert!(ev.times("COUT_F").is_empty());
    }

    #[test]
    fn cell_inventory() {
        let mut circ = Circuit::new();
        full_adder_xsfq_with_inputs(&mut circ, true, false, true).unwrap();
        // 2 joins + 4 splitters + 6 mergers + 2 JTLs.
        assert_eq!(circ.stats().cells, 14);
    }
}
