//! Sweep-based timing-margin analyses for the larger designs: how much
//! Gaussian delay jitter (paper §5.2) can the ripple-carry adder and the
//! race-logic decision tree absorb before they mis-compute?
//!
//! Each analysis runs a deterministic Monte-Carlo [`Sweep`] per jitter σ
//! with a functional-correctness check (sum decodes correctly; the fired
//! label matches the software reference) and reports the per-σ failure
//! breakdown. The smallest σ whose failure rate exceeds a tolerance is the
//! design's *margin*.

use crate::decision_tree::{decision_tree_with_inputs, Tree};
use crate::ripple_adder::{decode_sum, ripple_adder_with_inputs};
use rlse_core::circuit::Circuit;
use rlse_core::sweep::{Sweep, SweepReport};
use rlse_core::sim::Variability;

/// One row of a margin analysis: the jitter σ applied and the sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginPoint {
    /// Standard deviation of the Gaussian delay jitter, in ps.
    pub sigma: f64,
    /// The aggregated sweep under that jitter.
    pub report: SweepReport,
}

/// The outcome of sweeping a design across a σ ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginAnalysis {
    /// One point per σ, in the order given.
    pub points: Vec<MarginPoint>,
}

impl MarginAnalysis {
    /// The smallest σ whose failure rate exceeds `tolerance`, if any — the
    /// design's usable jitter margin ends just below it.
    pub fn margin_sigma(&self, tolerance: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.report.failure_rate() > tolerance)
            .map(|p| p.sigma)
    }
}

fn sweep_margin<'a>(
    build: impl Fn() -> Circuit + Sync + 'a,
    check: impl Fn(&rlse_core::events::Events) -> bool + Sync + 'a,
    sigmas: &[f64],
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> MarginAnalysis {
    let build = &build;
    let check = &check;
    let points = sigmas
        .iter()
        .map(|&sigma| MarginPoint {
            sigma,
            report: Sweep::over(build)
                .variability(move || Variability::Gaussian { std: sigma })
                .check(check)
                .trials(trials)
                .master_seed(master_seed)
                .threads(threads)
                .run(),
        })
        .collect();
    MarginAnalysis { points }
}

/// Sweep the `n`-bit ripple-carry adder computing `x + y` across the given
/// jitter σ ladder: a trial passes when the decoded sum is arithmetically
/// correct.
pub fn ripple_adder_margin(
    n: usize,
    x: u64,
    y: u64,
    sigmas: &[f64],
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> MarginAnalysis {
    let expected = x + y;
    sweep_margin(
        move || {
            let mut circ = Circuit::new();
            ripple_adder_with_inputs(&mut circ, n, x, y, false).expect("valid adder bench");
            circ
        },
        move |ev| decode_sum(ev, n) == expected,
        sigmas,
        trials,
        master_seed,
        threads,
    )
}

/// Sweep a race-logic decision tree classifying `values` across the jitter
/// σ ladder: a trial passes when exactly the reference label fires, exactly
/// once.
pub fn decision_tree_margin(
    tree: &Tree,
    values: &[f64],
    sigmas: &[f64],
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> MarginAnalysis {
    let expected = tree.classify(values).to_string();
    let labels: Vec<String> = tree.labels().into_iter().map(String::from).collect();
    let tree = tree.clone();
    let values = values.to_vec();
    sweep_margin(
        move || {
            let mut circ = Circuit::new();
            decision_tree_with_inputs(&mut circ, &tree, &values, 20.0)
                .expect("valid decision-tree bench");
            circ
        },
        move |ev| {
            labels
                .iter()
                .all(|l| ev.times(l).len() == usize::from(*l == expected))
        },
        sigmas,
        trials,
        master_seed,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_margin_clean_at_zero_sigma_and_degrades() {
        let analysis = ripple_adder_margin(2, 1, 2, &[0.0, 8.0], 24, 11, 0);
        // σ=0: every trial decodes 1+2=3.
        assert_eq!(analysis.points[0].report.ok, 24);
        // σ=8 ps rivals the cell delays themselves: the adder must break.
        assert!(analysis.points[1].report.failure_rate() > 0.0);
        assert_eq!(analysis.margin_sigma(0.01), Some(8.0));
    }

    #[test]
    fn adder_margin_is_deterministic_across_thread_counts() {
        let run = |threads| ripple_adder_margin(2, 2, 1, &[0.3], 16, 5, threads);
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn tree_margin_clean_at_zero_sigma() {
        let tree = Tree::branch(
            0,
            50.0,
            Tree::branch(1, 30.0, Tree::leaf("a"), Tree::leaf("b")),
            Tree::branch(1, 70.0, Tree::leaf("c"), Tree::leaf("d")),
        );
        let analysis = decision_tree_margin(&tree, &[20.0, 12.0], &[0.0], 16, 3, 0);
        assert_eq!(analysis.points[0].report.ok, 16);
        assert_eq!(analysis.margin_sigma(0.01), None);
    }

    #[test]
    fn tree_margin_degrades_near_threshold() {
        let tree = Tree::branch(
            0,
            50.0,
            Tree::branch(1, 30.0, Tree::leaf("a"), Tree::leaf("b")),
            Tree::branch(1, 70.0, Tree::leaf("c"), Tree::leaf("d")),
        );
        // f0 = 49: only 1 ps below the 50 ps threshold, so even small
        // jitter flips decisions some of the time.
        let analysis = decision_tree_margin(&tree, &[49.0, 12.0], &[2.0], 32, 3, 0);
        assert!(analysis.points[0].report.failure_rate() > 0.0);
    }
}
