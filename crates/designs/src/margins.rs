//! Sweep-based timing-margin analyses for the larger designs: how much
//! Gaussian delay jitter (paper §5.2) can the ripple-carry adder and the
//! race-logic decision tree absorb before they mis-compute?
//!
//! Each analysis runs a deterministic Monte-Carlo [`Sweep`] per jitter σ
//! with a functional-correctness check (sum decodes correctly; the fired
//! label matches the software reference) and reports the per-σ failure
//! breakdown. The smallest σ whose failure rate exceeds a tolerance is the
//! design's *margin*.
//!
//! On top of the 1-D σ ladders, [`shmoo_map`] produces the paper's 2-D
//! *shmoo* view (Fig. 13 / Table 3) for every Table-3 design: jitter σ on
//! one axis, a per-design **time-scale factor** on the other (how much the
//! stimulus timing is stretched relative to a nominal schedule — larger is
//! looser, so passes accumulate on the large-scale side). Each cell is one
//! deterministic [`BatchSweep`] run; the adaptive mapper bisects the
//! pass–fail boundary per row ([`find_first_pass`]) so a W-cell row costs
//! O(log W) sweeps instead of W, with an exhaustive-scan fallback for
//! distrusted oracles.

use crate::adder::full_adder_sync;
use crate::bitonic::bitonic_sorter_with_inputs;
use crate::decision_tree::{decision_tree_with_inputs, Tree};
use crate::minmax::min_max;
use crate::race_tree::{race_tree_with_inputs, Thresholds};
use crate::ripple_adder::{decode_sum, ripple_adder_with_inputs};
use crate::xsfq_adder::{full_adder_xsfq, DualRail};
use rlse_core::circuit::Circuit;
use rlse_core::events::Events;
use rlse_core::sim::Variability;
use rlse_core::sweep::{trial_seed, BatchSweep, Sweep, SweepReport};

/// One row of a margin analysis: the jitter σ applied and the sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginPoint {
    /// Standard deviation of the Gaussian delay jitter, in ps.
    pub sigma: f64,
    /// The aggregated sweep under that jitter.
    pub report: SweepReport,
}

/// The outcome of sweeping a design across a σ ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginAnalysis {
    /// One point per σ, in the order given.
    pub points: Vec<MarginPoint>,
}

impl MarginAnalysis {
    /// The smallest σ whose failure rate exceeds `tolerance`, if any — the
    /// design's usable jitter margin ends just below it.
    pub fn margin_sigma(&self, tolerance: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.report.failure_rate() > tolerance)
            .map(|p| p.sigma)
    }
}

fn sweep_margin<'a>(
    build: impl Fn() -> Circuit + Sync + 'a,
    check: impl Fn(&rlse_core::events::Events) -> bool + Sync + 'a,
    sigmas: &[f64],
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> MarginAnalysis {
    let build = &build;
    let check = &check;
    let points = sigmas
        .iter()
        .map(|&sigma| MarginPoint {
            sigma,
            report: Sweep::over(build)
                .variability(move || Variability::Gaussian { std: sigma })
                .check(check)
                .trials(trials)
                .master_seed(master_seed)
                .threads(threads)
                .run(),
        })
        .collect();
    MarginAnalysis { points }
}

/// Sweep the `n`-bit ripple-carry adder computing `x + y` across the given
/// jitter σ ladder: a trial passes when the decoded sum is arithmetically
/// correct.
pub fn ripple_adder_margin(
    n: usize,
    x: u64,
    y: u64,
    sigmas: &[f64],
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> MarginAnalysis {
    let expected = x + y;
    sweep_margin(
        move || {
            let mut circ = Circuit::new();
            ripple_adder_with_inputs(&mut circ, n, x, y, false).expect("valid adder bench");
            circ
        },
        move |ev| decode_sum(ev, n) == expected,
        sigmas,
        trials,
        master_seed,
        threads,
    )
}

/// Sweep a race-logic decision tree classifying `values` across the jitter
/// σ ladder: a trial passes when exactly the reference label fires, exactly
/// once.
pub fn decision_tree_margin(
    tree: &Tree,
    values: &[f64],
    sigmas: &[f64],
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> MarginAnalysis {
    let expected = tree.classify(values).to_string();
    let labels: Vec<String> = tree.labels().into_iter().map(String::from).collect();
    let tree = tree.clone();
    let values = values.to_vec();
    sweep_margin(
        move || {
            let mut circ = Circuit::new();
            decision_tree_with_inputs(&mut circ, &tree, &values, 20.0)
                .expect("valid decision-tree bench");
            circ
        },
        move |ev| {
            labels
                .iter()
                .all(|l| ev.times(l).len() == usize::from(*l == expected))
        },
        sigmas,
        trials,
        master_seed,
        threads,
    )
}

/// Where the pass–fail boundary of a fail→pass monotone oracle sits on a
/// grid of `n` points (see [`find_first_pass`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// The smallest index that passes; every index `>= i` is (assumed)
    /// passing, every index `< i` failing.
    At(usize),
    /// No grid point passes.
    AllFail,
}

impl Boundary {
    /// The boundary index, if any point passes.
    pub fn first_pass(self) -> Option<usize> {
        match self {
            Boundary::At(i) => Some(i),
            Boundary::AllFail => None,
        }
    }
}

/// Adaptive boundary sampler: find the smallest passing index of a
/// fail→pass monotone oracle over `0..n` with O(log n) evaluations.
///
/// Both endpoints are always evaluated, then the pass–fail boundary is
/// bisected keeping the invariant *fail(lo) ∧ pass(hi)* — so every
/// evaluated failing point lies strictly below the returned boundary and
/// every evaluated passing point at or above it. On a genuinely monotone
/// oracle the result equals [`find_first_pass_uniform`] exactly, at
/// `2 + ⌈log₂ n⌉` evaluations instead of `n`.
///
/// If the endpoints reveal a non-monotone direction (index 0 passes), the
/// smallest passing index is by definition 0 and is returned directly;
/// oracles that are not even approximately monotone should use the uniform
/// fallback instead.
pub fn find_first_pass(n: usize, mut passes: impl FnMut(usize) -> bool) -> Boundary {
    if n == 0 {
        return Boundary::AllFail;
    }
    if passes(0) {
        return Boundary::At(0);
    }
    if n == 1 || !passes(n - 1) {
        return Boundary::AllFail;
    }
    // Invariant: fail(lo), pass(hi).
    let (mut lo, mut hi) = (0usize, n - 1);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if passes(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Boundary::At(hi)
}

/// Exhaustive fallback for [`find_first_pass`]: evaluate every grid point
/// in order and return the smallest passing index. Correct for any oracle,
/// monotone or not, at `n` evaluations.
pub fn find_first_pass_uniform(n: usize, mut passes: impl FnMut(usize) -> bool) -> Boundary {
    for i in 0..n {
        if passes(i) {
            return Boundary::At(i);
        }
    }
    Boundary::AllFail
}

/// One cell of a [`ShmooMap`]: its pass/fail verdict and whether the cell
/// was measured by a sweep or inferred from the row's bisected boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// A sweep ran and the failure rate was within tolerance.
    PassMeasured,
    /// Not measured; at or beyond the row's measured pass boundary.
    PassInferred,
    /// A sweep ran and the failure rate exceeded tolerance.
    FailMeasured,
    /// Not measured; below the row's measured pass boundary.
    FailInferred,
}

impl CellState {
    /// The cell's verdict, measured or inferred.
    pub fn passes(self) -> bool {
        matches!(self, CellState::PassMeasured | CellState::PassInferred)
    }

    /// True if a sweep actually ran for this cell.
    pub fn measured(self) -> bool {
        matches!(self, CellState::PassMeasured | CellState::FailMeasured)
    }
}

/// Knobs for [`shmoo_map`]. The defaults suit interactive exploration;
/// drop `trials` for smoke runs, raise it for publication-grade maps.
#[derive(Debug, Clone)]
pub struct ShmooOptions {
    /// Monte-Carlo trials per evaluated cell (default 200).
    pub trials: u64,
    /// Master seed; each cell derives its own seed from it and the cell's
    /// grid index, so adaptive and uniform mapping measure identical
    /// verdicts for every cell they share (default 0xB10C).
    pub master_seed: u64,
    /// Sweep worker threads, 0 = available parallelism (default 0).
    pub threads: usize,
    /// Batch width (lanes per block) for the batch kernel (default 16).
    pub batch_width: usize,
    /// A cell passes when its sweep failure rate is `<= tolerance`
    /// (default 0.05).
    pub tolerance: f64,
    /// Bisect each row's pass–fail boundary instead of sweeping every cell
    /// (default true).
    pub adaptive: bool,
}

impl Default for ShmooOptions {
    fn default() -> Self {
        ShmooOptions {
            trials: 200,
            master_seed: 0xB10C,
            threads: 0,
            batch_width: 16,
            tolerance: 0.05,
            adaptive: true,
        }
    }
}

/// A 2-D pass/fail margin map: jitter σ per row, time-scale factor per
/// column (larger = looser timing, so each row is fail→pass monotone in
/// the scale). Produced by [`shmoo_map`]; render with
/// [`render`](Self::render).
#[derive(Debug, Clone, PartialEq)]
pub struct ShmooMap {
    /// The design swept (one of [`shmoo_design_names`]).
    pub design: String,
    /// Row axis: Gaussian jitter σ in ps.
    pub sigmas: Vec<f64>,
    /// Column axis: the per-design stimulus time-scale factor.
    pub scales: Vec<f64>,
    /// Trials per evaluated cell.
    pub trials: u64,
    /// The master seed the per-cell seeds derive from.
    pub master_seed: u64,
    /// The failure-rate pass threshold.
    pub tolerance: f64,
    /// Whether rows were bisected (true) or fully swept (false).
    pub adaptive: bool,
    /// Row-major cell states, `cells[row * scales.len() + col]`.
    pub cells: Vec<CellState>,
    /// How many cells were actually measured by a sweep.
    pub evaluated: u64,
}

impl ShmooMap {
    /// The cell at (σ row, scale column).
    pub fn cell(&self, row: usize, col: usize) -> CellState {
        self.cells[row * self.scales.len() + col]
    }

    /// The smallest passing time-scale factor of a σ row, if any — the
    /// row's timing margin boundary.
    pub fn margin_scale(&self, row: usize) -> Option<f64> {
        (0..self.scales.len())
            .find(|&col| self.cell(row, col).passes())
            .map(|col| self.scales[col])
    }

    /// Deterministic text rendering (the golden-file format): a header
    /// naming the sweep configuration, then one row per σ with one
    /// character per cell — `P`/`p` pass (measured/inferred), `F`/`f` fail.
    /// Byte-identical for equal maps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "shmoo design={} trials={} seed={} tol={} adaptive={}\n",
            self.design, self.trials, self.master_seed, self.tolerance, self.adaptive
        ));
        out.push_str("legend: P=pass p=pass(inferred) F=fail f=fail(inferred)\n");
        out.push_str(&format!("scales: {:?}\n", self.scales));
        for (row, sigma) in self.sigmas.iter().enumerate() {
            out.push_str(&format!("sigma {sigma:>5}: "));
            for col in 0..self.scales.len() {
                out.push(match self.cell(row, col) {
                    CellState::PassMeasured => 'P',
                    CellState::PassInferred => 'p',
                    CellState::FailMeasured => 'F',
                    CellState::FailInferred => 'f',
                });
            }
            out.push('\n');
        }
        out
    }
}

/// The Table-3 designs [`shmoo_map`] knows how to sweep.
pub fn shmoo_design_names() -> &'static [&'static str] {
    &[
        "min_max",
        "race_tree",
        "adder_sync",
        "adder_xsfq",
        "bitonic_4",
        "bitonic_8",
        "bitonic_16",
        "bitonic_32",
    ]
}

/// A scaled stimulus bench builder: constructs a design with its input
/// schedule stretched by the given time-scale factor.
pub type ScaledBuild = fn(f64) -> Circuit;

/// A functional-correctness predicate over a design's observed outputs.
pub type OutputCheck = fn(&Events) -> bool;

/// Each design's scaled stimulus bench: `build(scale)` constructs the
/// circuit with its input schedule stretched by `scale`, and `check`
/// verifies functional correctness of the observed outputs.
///
/// Exposed so the differential test harness can drive the exact circuits
/// the shmoo maps sweep.
///
/// # Panics
///
/// Panics if `name` is not one of [`shmoo_design_names`].
pub fn design_spec(name: &str) -> (ScaledBuild, OutputCheck) {
    match name {
        "min_max" => (build_min_max, check_min_max),
        "race_tree" => (build_race_tree, check_race_tree),
        "adder_sync" => (build_adder_sync, check_adder_sync),
        "adder_xsfq" => (build_adder_xsfq, check_adder_xsfq),
        "bitonic_4" => (build_bitonic_4, check_bitonic_4),
        "bitonic_8" => (build_bitonic_8, check_bitonic_8),
        "bitonic_16" => (build_bitonic_16, check_bitonic_16),
        "bitonic_32" => (build_bitonic_32, check_bitonic_32),
        other => panic!("unknown shmoo design '{other}' (expected one of {:?})", shmoo_design_names()),
    }
}

/// Two min-max rounds with the inter-pulse spacing scaled: A leads B by
/// `12·s` ps and rounds are `120·s` ps apart. Tight scales collide the
/// rounds inside the comparator cells.
fn build_min_max(s: f64) -> Circuit {
    let mut c = Circuit::new();
    let a = c.inp_at(&[30.0, 30.0 + 120.0 * s], "A");
    let b = c.inp_at(&[30.0 + 12.0 * s, 30.0 + 132.0 * s], "B");
    let (low, high) = min_max(&mut c, a, b).expect("valid min_max bench");
    c.inspect(low, "LOW");
    c.inspect(high, "HIGH");
    c
}

fn check_min_max(ev: &Events) -> bool {
    let low = ev.times("LOW");
    let high = ev.times("HIGH");
    low.len() == 2 && high.len() == 2 && low.iter().zip(high).all(|(l, h)| l <= h)
}

/// Race tree classifying toward label `a`: feature 1 sits `30·s` ps below
/// its 50 ps threshold, so tight scales put the race photo-finish close.
fn build_race_tree(s: f64) -> Circuit {
    let mut c = Circuit::new();
    race_tree_with_inputs(&mut c, 50.0 - 30.0 * s, 10.0, 20.0, Thresholds::default())
        .expect("valid race-tree bench");
    c
}

fn check_race_tree(ev: &Events) -> bool {
    ev.times("a").len() == 1
        && ev.times("b").is_empty()
        && ev.times("c").is_empty()
        && ev.times("d").is_empty()
}

/// Synchronous adder computing 1+1+0: data at 20 ps, the clock at `50·s`
/// ps (nominal schedule at s = 1). Tight scales fire the phase-1 clock
/// before the data reaches the capture gates, so the pipeline never emits.
fn build_adder_sync(s: f64) -> Circuit {
    let mut c = Circuit::new();
    let a = c.inp_at(&[20.0], "A");
    let b = c.inp_at(&[20.0], "B");
    let cin = c.inp_at(&[], "CIN");
    let clk = c.inp_at(&[50.0 * s], "CLK");
    let outs = full_adder_sync(&mut c, a, b, cin, clk).expect("valid sync-adder bench");
    c.inspect(outs.sum, "SUM");
    c.inspect(outs.cout, "COUT");
    c
}

fn check_adder_sync(ev: &Events) -> bool {
    // 1 + 1 + 0 = 10₂: no sum pulse, one carry pulse.
    ev.times("SUM").is_empty() && ev.times("COUT").len() == 1
}

/// Dual-rail adder computing 1+1+0 with the input stagger scaled
/// (operands at 20, 20+6·s, 20+12·s ps).
fn build_adder_xsfq(s: f64) -> Circuit {
    let mut c = Circuit::new();
    let mk = |c: &mut Circuit, bit: bool, t0: f64, name: &str| {
        let t_times: &[f64] = if bit { &[t0] } else { &[] };
        let f_times: &[f64] = if bit { &[] } else { &[t0] };
        DualRail {
            t: c.inp_at(t_times, &format!("{name}_T")),
            f: c.inp_at(f_times, &format!("{name}_F")),
        }
    };
    let a = mk(&mut c, true, 20.0, "A");
    let b = mk(&mut c, true, 20.0 + 6.0 * s, "B");
    let cin = mk(&mut c, false, 20.0 + 12.0 * s, "CIN");
    let outs = full_adder_xsfq(&mut c, a, b, cin).expect("valid xSFQ-adder bench");
    c.inspect(outs.sum.t, "SUM_T");
    c.inspect(outs.sum.f, "SUM_F");
    c.inspect(outs.cout.t, "COUT_T");
    c.inspect(outs.cout.f, "COUT_F");
    c
}

fn check_adder_xsfq(ev: &Events) -> bool {
    // 1 + 1 + 0 = 10₂ in dual rail: SUM_F and COUT_T pulse exactly once.
    ev.times("SUM_T").is_empty()
        && ev.times("SUM_F").len() == 1
        && ev.times("COUT_T").len() == 1
        && ev.times("COUT_F").is_empty()
}

/// Bitonic sorter stimulus: input `k` pulses at
/// `20 + rank_gap(n)·s·((7k+3) mod n)` — a permuted ramp with
/// `rank_gap(n)·s` ps between adjacent ranks (distinct for every `k` since
/// gcd(7, n) = 1; the gap is a flat 10 ps through n = 8 and depth-stretched
/// beyond, see [`crate::bitonic::bitonic_rank_gap`]), so tight scales leave
/// the comparators no timing headroom to rank-order the pulses.
fn build_bitonic(n: usize, s: f64) -> Circuit {
    let gap = crate::bitonic::bitonic_rank_gap(n);
    let times: Vec<f64> = (0..n)
        .map(|k| 20.0 + gap * s * ((k * 7 + 3) % n) as f64)
        .collect();
    let mut c = Circuit::new();
    bitonic_sorter_with_inputs(&mut c, &times).expect("valid bitonic bench");
    c
}

fn check_bitonic(n: usize, ev: &Events) -> bool {
    let mut prev = f64::NEG_INFINITY;
    for k in 0..n {
        let t = ev.times(&format!("o{k}"));
        if t.len() != 1 || t[0] < prev {
            return false;
        }
        prev = t[0];
    }
    true
}

fn build_bitonic_4(s: f64) -> Circuit {
    build_bitonic(4, s)
}
fn check_bitonic_4(ev: &Events) -> bool {
    check_bitonic(4, ev)
}
fn build_bitonic_8(s: f64) -> Circuit {
    build_bitonic(8, s)
}
fn check_bitonic_8(ev: &Events) -> bool {
    check_bitonic(8, ev)
}
fn build_bitonic_16(s: f64) -> Circuit {
    build_bitonic(16, s)
}
fn check_bitonic_16(ev: &Events) -> bool {
    check_bitonic(16, ev)
}
fn build_bitonic_32(s: f64) -> Circuit {
    build_bitonic(32, s)
}
fn check_bitonic_32(ev: &Events) -> bool {
    check_bitonic(32, ev)
}

/// Sweep a design across the (σ, time-scale) grid and classify every cell.
///
/// Each evaluated cell runs one deterministic [`BatchSweep`] of
/// `opts.trials` trials; its master seed is a pure function of the map's
/// seed and the cell's grid index, so the verdict of a cell does not
/// depend on evaluation order, adaptivity, thread count, or batch width —
/// adaptive and uniform maps agree on every cell both measure, and equal
/// arguments produce byte-identical [`render`](ShmooMap::render) output.
///
/// With `opts.adaptive`, each σ row's fail→pass boundary over the scale
/// axis is bisected via [`find_first_pass`] and the unmeasured cells are
/// inferred from it; otherwise every cell is measured.
///
/// # Panics
///
/// Panics if `design` is not one of [`shmoo_design_names`].
pub fn shmoo_map(design: &str, sigmas: &[f64], scales: &[f64], opts: &ShmooOptions) -> ShmooMap {
    let (build, check) = design_spec(design);
    let n_cols = scales.len();
    let mut cells = vec![CellState::FailInferred; sigmas.len() * n_cols];
    let mut evaluated = 0u64;
    for (row, &sigma) in sigmas.iter().enumerate() {
        let eval = |col: usize| {
            let scale = scales[col];
            let seed = trial_seed(opts.master_seed, (row * n_cols + col) as u64);
            let report = BatchSweep::over(move || build(scale))
                .variability(move || Variability::Gaussian { std: sigma })
                .check(check)
                .trials(opts.trials)
                .master_seed(seed)
                .threads(opts.threads)
                .batch_width(opts.batch_width)
                .run();
            report.failure_rate() <= opts.tolerance
        };
        let mut measured: Vec<Option<bool>> = vec![None; n_cols];
        let boundary = if opts.adaptive {
            find_first_pass(n_cols, |col| {
                let p = eval(col);
                measured[col] = Some(p);
                p
            })
        } else {
            find_first_pass_uniform(n_cols, |col| {
                let p = eval(col);
                measured[col] = Some(p);
                p
            })
        };
        if !opts.adaptive {
            // Uniform mode measures the whole row, including cells past
            // the boundary the scan stopped at.
            for (col, slot) in measured.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = Some(eval(col));
                }
            }
        }
        for (col, slot) in measured.iter().enumerate() {
            cells[row * n_cols + col] = match slot {
                Some(true) => CellState::PassMeasured,
                Some(false) => CellState::FailMeasured,
                None => match boundary {
                    Boundary::At(i) if col >= i => CellState::PassInferred,
                    _ => CellState::FailInferred,
                },
            };
        }
        evaluated += measured.iter().flatten().count() as u64;
    }
    ShmooMap {
        design: design.to_string(),
        sigmas: sigmas.to_vec(),
        scales: scales.to_vec(),
        trials: opts.trials,
        master_seed: opts.master_seed,
        tolerance: opts.tolerance,
        adaptive: opts.adaptive,
        cells,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_margin_clean_at_zero_sigma_and_degrades() {
        let analysis = ripple_adder_margin(2, 1, 2, &[0.0, 8.0], 24, 11, 0);
        // σ=0: every trial decodes 1+2=3.
        assert_eq!(analysis.points[0].report.ok, 24);
        // σ=8 ps rivals the cell delays themselves: the adder must break.
        assert!(analysis.points[1].report.failure_rate() > 0.0);
        assert_eq!(analysis.margin_sigma(0.01), Some(8.0));
    }

    #[test]
    fn adder_margin_is_deterministic_across_thread_counts() {
        let run = |threads| ripple_adder_margin(2, 2, 1, &[0.3], 16, 5, threads);
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn tree_margin_clean_at_zero_sigma() {
        let tree = Tree::branch(
            0,
            50.0,
            Tree::branch(1, 30.0, Tree::leaf("a"), Tree::leaf("b")),
            Tree::branch(1, 70.0, Tree::leaf("c"), Tree::leaf("d")),
        );
        let analysis = decision_tree_margin(&tree, &[20.0, 12.0], &[0.0], 16, 3, 0);
        assert_eq!(analysis.points[0].report.ok, 16);
        assert_eq!(analysis.margin_sigma(0.01), None);
    }

    #[test]
    fn tree_margin_degrades_near_threshold() {
        let tree = Tree::branch(
            0,
            50.0,
            Tree::branch(1, 30.0, Tree::leaf("a"), Tree::leaf("b")),
            Tree::branch(1, 70.0, Tree::leaf("c"), Tree::leaf("d")),
        );
        // f0 = 49: only 1 ps below the 50 ps threshold, so even small
        // jitter flips decisions some of the time.
        let analysis = decision_tree_margin(&tree, &[49.0, 12.0], &[2.0], 32, 3, 0);
        assert!(analysis.points[0].report.failure_rate() > 0.0);
    }

    #[test]
    fn boundary_search_matches_uniform_on_monotone_oracles() {
        for n in 0..=24usize {
            for k in 0..=n {
                // Oracle: fail below k, pass at and above k (monotone).
                let mut evals = 0usize;
                let adaptive = find_first_pass(n, |i| {
                    evals += 1;
                    i >= k
                });
                let uniform = find_first_pass_uniform(n, |i| i >= k);
                assert_eq!(adaptive, uniform, "n={n} k={k}");
                let expected = if k < n {
                    Boundary::At(k)
                } else {
                    Boundary::AllFail
                };
                assert_eq!(adaptive, expected, "n={n} k={k}");
                let budget = 2 + (n.max(1) as f64).log2().ceil() as usize;
                assert!(evals <= budget, "n={n} k={k}: {evals} evals > {budget}");
            }
        }
    }

    #[test]
    fn boundary_search_never_places_pass_below_observed_fail() {
        // A non-monotone oracle: the sampler may disagree with the uniform
        // scan, but every index it reports passing must not sit below an
        // index it observed failing.
        let pattern = [false, true, false, false, true, true, false, true];
        let mut observed_fail = Vec::new();
        let b = find_first_pass(pattern.len(), |i| {
            if !pattern[i] {
                observed_fail.push(i);
            }
            pattern[i]
        });
        if let Boundary::At(i) = b {
            assert!(pattern[i], "reported boundary must itself pass");
            assert!(observed_fail.iter().all(|&f| f < i));
        }
    }

    #[test]
    fn shmoo_adaptive_and_uniform_agree_on_min_max() {
        let sigmas = [0.0, 2.0];
        let scales = [0.05, 0.4, 1.0, 1.6];
        let opts = ShmooOptions {
            trials: 24,
            threads: 2,
            ..ShmooOptions::default()
        };
        let adaptive = shmoo_map("min_max", &sigmas, &scales, &opts);
        let uniform = shmoo_map(
            "min_max",
            &sigmas,
            &scales,
            &ShmooOptions {
                adaptive: false,
                ..opts.clone()
            },
        );
        assert!(adaptive.evaluated <= uniform.evaluated);
        for row in 0..sigmas.len() {
            for col in 0..scales.len() {
                assert_eq!(
                    adaptive.cell(row, col).passes(),
                    uniform.cell(row, col).passes(),
                    "row {row} col {col}"
                );
                // Cells both maps measured must agree exactly, not just on
                // the verdict — the per-cell seed makes them the same sweep.
                if adaptive.cell(row, col).measured() {
                    assert_eq!(adaptive.cell(row, col), uniform.cell(row, col));
                }
            }
        }
        // Loose timing at σ=0 must pass; margins shrink as σ grows.
        assert!(adaptive.cell(0, scales.len() - 1).passes());
        assert!(adaptive.margin_scale(0) <= adaptive.margin_scale(1).or(Some(f64::INFINITY)));
    }

    #[test]
    fn shmoo_is_deterministic_across_threads_and_widths() {
        let sigmas = [1.0];
        let scales = [0.1, 0.8, 1.5];
        let base = ShmooOptions {
            trials: 16,
            ..ShmooOptions::default()
        };
        let a = shmoo_map("race_tree", &sigmas, &scales, &base);
        let b = shmoo_map(
            "race_tree",
            &sigmas,
            &scales,
            &ShmooOptions {
                threads: 3,
                batch_width: 5,
                ..base
            },
        );
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn every_shmoo_design_passes_loose_and_fails_tight() {
        // The scale axis is the designs' common timing knob: each bench
        // must fail nominally at a crushed schedule and pass at a loose
        // one, otherwise its shmoo map would be all-pass or all-fail.
        for name in shmoo_design_names() {
            let opts = ShmooOptions {
                trials: 4,
                ..ShmooOptions::default()
            };
            let map = shmoo_map(name, &[0.0], &[0.01, 1.5], &opts);
            assert!(
                !map.cell(0, 0).passes(),
                "{name} should fail at scale 0.01"
            );
            assert!(map.cell(0, 1).passes(), "{name} should pass at scale 1.5");
        }
    }

    #[test]
    fn empty_shmoo_grids_yield_empty_maps() {
        let opts = ShmooOptions {
            trials: 4,
            ..ShmooOptions::default()
        };
        let no_rows = shmoo_map("min_max", &[], &[0.5, 1.0], &opts);
        assert!(no_rows.cells.is_empty());
        assert_eq!(no_rows.evaluated, 0);
        let no_cols = shmoo_map("min_max", &[0.0, 1.0], &[], &opts);
        assert!(no_cols.cells.is_empty());
        assert_eq!(no_cols.evaluated, 0);
        assert_eq!(no_cols.margin_scale(0), None);
    }
}
