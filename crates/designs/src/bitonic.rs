//! Batcher's bitonic sorting network over min-max pairs (paper Fig. 15).
//!
//! An `n = 2^k` input sorter is a network of `(n/2)·k·(k+1)/2` comparators
//! of depth `k·(k+1)/2`; for `n = 8` that is 24 comparators of depth 6, so
//! each pulse takes `6 × 25 = 150` ps to traverse the network and the
//! outputs appear in arrival-time rank order: the earliest input pulse on
//! `o0`, the latest on `o7`.

use crate::minmax::{min_max, MIN_MAX_DELAY};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// One comparator position in the network: compare lines `i` and `j`
/// (`i < j`), placing the earlier pulse on `i` if `ascending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Lower line index.
    pub i: usize,
    /// Upper line index.
    pub j: usize,
    /// Earlier pulse goes to line `i` when true.
    pub ascending: bool,
}

/// The comparator schedule of a bitonic network over `n = 2^k` lines, as a
/// list of parallel stages.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is less than 2.
pub fn bitonic_schedule(n: usize) -> Vec<Vec<Comparator>> {
    assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
    let mut stages = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            let mut stage = Vec::new();
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    stage.push(Comparator {
                        i,
                        j: l,
                        ascending: i & k == 0,
                    });
                }
            }
            stages.push(stage);
            j /= 2;
        }
        k *= 2;
    }
    stages
}

/// The comparator depth of an `n`-input bitonic network (`k(k+1)/2` for
/// `n = 2^k`).
pub fn bitonic_depth(n: usize) -> usize {
    bitonic_schedule(n).len()
}

/// Total network latency: depth × the 25 ps comparator delay.
pub fn bitonic_delay(n: usize) -> f64 {
    bitonic_depth(n) as f64 * MIN_MAX_DELAY
}

/// Build a bitonic sorter over the given input wires; returns the output
/// wires `o0..o(n-1)`, on which pulses appear in arrival-time order
/// (earliest on `o0`).
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if the number of inputs is not a power of two `>= 2`.
pub fn bitonic_sorter(circ: &mut Circuit, inputs: &[Wire]) -> Result<Vec<Wire>, Error> {
    let n = inputs.len();
    let mut lines: Vec<Wire> = inputs.to_vec();
    for stage in bitonic_schedule(n) {
        for cmp in stage {
            let (low, high) = min_max(circ, lines[cmp.i], lines[cmp.j])?;
            if cmp.ascending {
                lines[cmp.i] = low;
                lines[cmp.j] = high;
            } else {
                lines[cmp.i] = high;
                lines[cmp.j] = low;
            }
        }
    }
    Ok(lines)
}

/// Convenience: build an `n`-input sorter with fresh named inputs `i0..` and
/// observed outputs `o0..`, pulsing input `k` at `times[k]`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn bitonic_sorter_with_inputs(
    circ: &mut Circuit,
    times: &[f64],
) -> Result<Vec<Wire>, Error> {
    let inputs: Vec<Wire> = times
        .iter()
        .enumerate()
        .map(|(k, &t)| circ.inp_at(&[t], &format!("i{k}")))
        .collect();
    let outs = bitonic_sorter(circ, &inputs)?;
    for (k, w) in outs.iter().enumerate() {
        circ.inspect(*w, &format!("o{k}"));
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn schedule_shape_for_8() {
        let stages = bitonic_schedule(8);
        assert_eq!(stages.len(), 6);
        assert_eq!(stages.iter().map(Vec::len).sum::<usize>(), 24);
        assert_eq!(bitonic_delay(8), 150.0);
    }

    #[test]
    fn schedule_shape_for_4() {
        let stages = bitonic_schedule(4);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages.iter().map(Vec::len).sum::<usize>(), 6);
    }

    fn run_sorter(times: &[f64]) -> Events {
        let mut circ = Circuit::new();
        bitonic_sorter_with_inputs(&mut circ, times).unwrap();
        Simulation::new(circ).run().unwrap()
    }

    #[test]
    fn sorts_eight_pulses_into_rank_order() {
        // Distinct arrival times, ≥10 ps apart.
        let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
        let ev = run_sorter(&times);
        let mut sorted = times.to_vec();
        sorted.sort_by(f64::total_cmp);
        for (k, t) in sorted.iter().enumerate() {
            let got = ev.times(&format!("o{k}"));
            assert_eq!(got.len(), 1, "o{k}");
            assert!(
                (got[0] - (t + 150.0)).abs() < 1e-9,
                "o{k}: got {} want {}",
                got[0],
                t + 150.0
            );
        }
    }

    #[test]
    fn earliest_input_reaches_o0_after_150ps() {
        // The paper's observation: IN4 earliest → OUT0 150 ps later.
        let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
        let ev = run_sorter(&times);
        assert_eq!(ev.times("o0"), &[165.0]);
    }

    #[test]
    fn sorter_uses_24_comparators_of_5_cells() {
        let mut circ = Circuit::new();
        let times: Vec<f64> = (0..8).map(|i| 15.0 + 12.0 * i as f64).collect();
        bitonic_sorter_with_inputs(&mut circ, &times).unwrap();
        assert_eq!(circ.stats().cells, 24 * 5);
    }

    #[test]
    fn four_input_sorter_works_too() {
        let times = [90.0, 20.0, 60.0, 40.0];
        let mut circ = Circuit::new();
        bitonic_sorter_with_inputs(&mut circ, &times).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let delay = bitonic_delay(4); // 3 × 25
        for (k, t) in [20.0, 40.0, 60.0, 90.0].iter().enumerate() {
            assert_eq!(ev.times(&format!("o{k}")), &[t + delay], "o{k}");
        }
    }

    #[test]
    fn sixteen_input_sorter_scales() {
        let times: Vec<f64> = (0..16).map(|i| 15.0 + 13.0 * ((i * 7) % 16) as f64).collect();
        let mut circ = Circuit::new();
        bitonic_sorter_with_inputs(&mut circ, &times).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let delay = bitonic_delay(16);
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        for (k, t) in sorted.iter().enumerate() {
            assert_eq!(ev.times(&format!("o{k}")), &[t + delay], "o{k}");
        }
    }
}
