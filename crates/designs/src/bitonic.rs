//! Batcher's bitonic sorting network over min-max pairs (paper Fig. 15).
//!
//! An `n = 2^k` input sorter is a network of `(n/2)·k·(k+1)/2` comparators
//! of depth `k·(k+1)/2`; for `n = 8` that is 24 comparators of depth 6, so
//! each pulse takes `6 × 25 = 150` ps to traverse the network and the
//! outputs appear in arrival-time rank order: the earliest input pulse on
//! `o0`, the latest on `o7`.

use crate::minmax::{min_max, MIN_MAX_DELAY};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// One comparator position in the network: compare lines `i` and `j`
/// (`i < j`), placing the earlier pulse on `i` if `ascending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Lower line index.
    pub i: usize,
    /// Upper line index.
    pub j: usize,
    /// Earlier pulse goes to line `i` when true.
    pub ascending: bool,
}

/// The comparator schedule of a bitonic network over `n = 2^k` lines, as a
/// list of parallel stages.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is less than 2.
pub fn bitonic_schedule(n: usize) -> Vec<Vec<Comparator>> {
    assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
    let mut stages = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            let mut stage = Vec::new();
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    stage.push(Comparator {
                        i,
                        j: l,
                        ascending: i & k == 0,
                    });
                }
            }
            stages.push(stage);
            j /= 2;
        }
        k *= 2;
    }
    stages
}

/// The comparator depth of an `n`-input bitonic network (`k(k+1)/2` for
/// `n = 2^k`).
pub fn bitonic_depth(n: usize) -> usize {
    bitonic_schedule(n).len()
}

/// Total network latency: depth × the 25 ps comparator delay.
pub fn bitonic_delay(n: usize) -> f64 {
    bitonic_depth(n) as f64 * MIN_MAX_DELAY
}

/// Separation (ps) between adjacent stimulus ranks for an `n`-input sorter.
///
/// The paper's n ≤ 8 designs use a flat 10 ps; deeper networks accumulate
/// skew across more comparator stages, so past n = 8 the gap stretches by
/// `√(depth(n) / depth(8))` — enough headroom that the scaled sorters keep
/// the same relative margin the 8-input one has.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2`.
pub fn bitonic_rank_gap(n: usize) -> f64 {
    let stretch = (bitonic_depth(n) as f64 / bitonic_depth(8) as f64).sqrt();
    10.0 * stretch.max(1.0)
}

/// Scrambled rank-order stimulus for an `n`-input sorter: input `k` pulses
/// once at `base + rank_gap(n) · ((7k + 3) mod n)`. The multiplier 7 is
/// coprime to every power of two, so all `n` ranks are hit exactly once.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2`.
pub fn bitonic_stimulus(n: usize, base: f64) -> Vec<f64> {
    let gap = bitonic_rank_gap(n);
    (0..n).map(|k| base + gap * ((k * 7 + 3) % n) as f64).collect()
}

/// Minimum safe spacing between successive stimulus waves through an
/// `n`-input sorter. Every input-to-output path has the same delay, so the
/// skew between lines at any stage never exceeds the stimulus spread
/// `rank_gap · (n − 1)`; one wave is fully clear of every comparator before
/// the next arrives as long as waves are at least that far apart plus a
/// C-element settling margin.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2`.
pub fn bitonic_wave_period(n: usize) -> f64 {
    bitonic_rank_gap(n) * (n - 1) as f64 + 100.0
}

/// Multi-wave stimulus: `waves` pulse trains through the sorter, each a
/// freshly scrambled ramp (`(7k + 3 + w) mod n`) offset by
/// [`bitonic_wave_period`]. Returns one ascending pulse-time vector per
/// input line.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2`.
pub fn bitonic_wave_stimulus(n: usize, waves: usize, base: f64) -> Vec<Vec<f64>> {
    let gap = bitonic_rank_gap(n);
    let period = bitonic_wave_period(n);
    (0..n)
        .map(|k| {
            (0..waves)
                .map(|w| base + period * w as f64 + gap * ((k * 7 + 3 + w) % n) as f64)
                .collect()
        })
        .collect()
}

/// Build an `n`-input sorter driven by `waves` successive pulse waves
/// (see [`bitonic_wave_stimulus`]), with named inputs `i0..` and observed
/// outputs `o0..`.
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2`.
pub fn bitonic_sorter_with_waves(
    circ: &mut Circuit,
    n: usize,
    waves: usize,
) -> Result<Vec<Wire>, Error> {
    let stim = bitonic_wave_stimulus(n, waves, 15.0);
    let inputs: Vec<Wire> = stim
        .iter()
        .enumerate()
        .map(|(k, ts)| circ.inp_at(ts, &format!("i{k}")))
        .collect();
    let outs = bitonic_sorter(circ, &inputs)?;
    for (k, w) in outs.iter().enumerate() {
        circ.inspect(*w, &format!("o{k}"));
    }
    Ok(outs)
}

/// Build a bitonic sorter over the given input wires; returns the output
/// wires `o0..o(n-1)`, on which pulses appear in arrival-time order
/// (earliest on `o0`).
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if the number of inputs is not a power of two `>= 2`.
pub fn bitonic_sorter(circ: &mut Circuit, inputs: &[Wire]) -> Result<Vec<Wire>, Error> {
    let n = inputs.len();
    let mut lines: Vec<Wire> = inputs.to_vec();
    for stage in bitonic_schedule(n) {
        for cmp in stage {
            let (low, high) = min_max(circ, lines[cmp.i], lines[cmp.j])?;
            if cmp.ascending {
                lines[cmp.i] = low;
                lines[cmp.j] = high;
            } else {
                lines[cmp.i] = high;
                lines[cmp.j] = low;
            }
        }
    }
    Ok(lines)
}

/// Convenience: build an `n`-input sorter with fresh named inputs `i0..` and
/// observed outputs `o0..`, pulsing input `k` at `times[k]`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn bitonic_sorter_with_inputs(
    circ: &mut Circuit,
    times: &[f64],
) -> Result<Vec<Wire>, Error> {
    let inputs: Vec<Wire> = times
        .iter()
        .enumerate()
        .map(|(k, &t)| circ.inp_at(&[t], &format!("i{k}")))
        .collect();
    let outs = bitonic_sorter(circ, &inputs)?;
    for (k, w) in outs.iter().enumerate() {
        circ.inspect(*w, &format!("o{k}"));
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn schedule_shape_for_8() {
        let stages = bitonic_schedule(8);
        assert_eq!(stages.len(), 6);
        assert_eq!(stages.iter().map(Vec::len).sum::<usize>(), 24);
        assert_eq!(bitonic_delay(8), 150.0);
    }

    #[test]
    fn schedule_shape_for_4() {
        let stages = bitonic_schedule(4);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages.iter().map(Vec::len).sum::<usize>(), 6);
    }

    fn run_sorter(times: &[f64]) -> Events {
        let mut circ = Circuit::new();
        bitonic_sorter_with_inputs(&mut circ, times).unwrap();
        Simulation::new(circ).run().unwrap()
    }

    #[test]
    fn sorts_eight_pulses_into_rank_order() {
        // Distinct arrival times, ≥10 ps apart.
        let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
        let ev = run_sorter(&times);
        let mut sorted = times.to_vec();
        sorted.sort_by(f64::total_cmp);
        for (k, t) in sorted.iter().enumerate() {
            let got = ev.times(&format!("o{k}"));
            assert_eq!(got.len(), 1, "o{k}");
            assert!(
                (got[0] - (t + 150.0)).abs() < 1e-9,
                "o{k}: got {} want {}",
                got[0],
                t + 150.0
            );
        }
    }

    #[test]
    fn earliest_input_reaches_o0_after_150ps() {
        // The paper's observation: IN4 earliest → OUT0 150 ps later.
        let times = [125.0, 35.0, 85.0, 105.0, 15.0, 65.0, 115.0, 45.0];
        let ev = run_sorter(&times);
        assert_eq!(ev.times("o0"), &[165.0]);
    }

    #[test]
    fn sorter_uses_24_comparators_of_5_cells() {
        let mut circ = Circuit::new();
        let times: Vec<f64> = (0..8).map(|i| 15.0 + 12.0 * i as f64).collect();
        bitonic_sorter_with_inputs(&mut circ, &times).unwrap();
        assert_eq!(circ.stats().cells, 24 * 5);
    }

    #[test]
    fn four_input_sorter_works_too() {
        let times = [90.0, 20.0, 60.0, 40.0];
        let mut circ = Circuit::new();
        bitonic_sorter_with_inputs(&mut circ, &times).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let delay = bitonic_delay(4); // 3 × 25
        for (k, t) in [20.0, 40.0, 60.0, 90.0].iter().enumerate() {
            assert_eq!(ev.times(&format!("o{k}")), &[t + delay], "o{k}");
        }
    }

    #[test]
    fn rank_gap_is_flat_through_eight_and_stretches_beyond() {
        assert_eq!(bitonic_rank_gap(2), 10.0);
        assert_eq!(bitonic_rank_gap(4), 10.0);
        assert_eq!(bitonic_rank_gap(8), 10.0);
        assert!((bitonic_rank_gap(16) - 10.0 * (10.0f64 / 6.0).sqrt()).abs() < 1e-12);
        assert!(bitonic_rank_gap(32) > bitonic_rank_gap(16));
        assert!(bitonic_rank_gap(64) > bitonic_rank_gap(32));
    }

    #[test]
    fn wave_stimulus_sorts_every_wave_in_rank_order() {
        let n = 16;
        let waves = 3;
        let mut circ = Circuit::new();
        bitonic_sorter_with_waves(&mut circ, n, waves).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let stim = bitonic_wave_stimulus(n, waves, 15.0);
        let delay = bitonic_delay(n);
        for w in 0..waves {
            let mut wave: Vec<f64> = (0..n).map(|k| stim[k][w]).collect();
            wave.sort_by(f64::total_cmp);
            for (k, t) in wave.iter().enumerate() {
                let got = ev.times(&format!("o{k}"));
                assert_eq!(got.len(), waves, "o{k}");
                assert!(
                    (got[w] - (t + delay)).abs() < 1e-9,
                    "o{k} wave {w}: got {} want {}",
                    got[w],
                    t + delay
                );
            }
        }
    }

    #[test]
    fn sixteen_input_sorter_scales() {
        let times: Vec<f64> = (0..16).map(|i| 15.0 + 13.0 * ((i * 7) % 16) as f64).collect();
        let mut circ = Circuit::new();
        bitonic_sorter_with_inputs(&mut circ, &times).unwrap();
        let ev = Simulation::new(circ).run().unwrap();
        let delay = bitonic_delay(16);
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        for (k, t) in sorted.iter().enumerate() {
            assert_eq!(ev.times(&format!("o{k}")), &[t + delay], "o{k}");
        }
    }
}
