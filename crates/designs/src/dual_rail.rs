//! A clockless dual-rail logic-gate library in the xSFQ style (paper refs
//! \[52, 54\]): every signal is a [`DualRail`] pair, and each gate consumes
//! exactly one rail pulse per operand per wave and produces exactly one
//! output rail pulse — so completion is implicit and no clock is needed.
//!
//! Gates are built from the 2x2 join (which decodes an operand pair into
//! one of four product pulses) plus mergers and splitters.

use crate::xsfq_adder::DualRail;
use rlse_cells::{join2x2, m, s};
use rlse_core::circuit::Circuit;
use rlse_core::error::Error;

/// Dual-rail AND: `q.t` iff both operands are 1.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dr_and(circ: &mut Circuit, a: DualRail, b: DualRail) -> Result<DualRail, Error> {
    let (tt, tf, ft, ff) = join2x2(circ, a.t, a.f, b.t, b.f)?;
    let f01 = m(circ, tf, ft)?;
    let f = m(circ, f01, ff)?;
    Ok(DualRail { t: tt, f })
}

/// Dual-rail OR: `q.t` iff either operand is 1.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dr_or(circ: &mut Circuit, a: DualRail, b: DualRail) -> Result<DualRail, Error> {
    let (tt, tf, ft, ff) = join2x2(circ, a.t, a.f, b.t, b.f)?;
    let t01 = m(circ, tf, ft)?;
    let t = m(circ, t01, tt)?;
    Ok(DualRail { t, f: ff })
}

/// Dual-rail XOR.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dr_xor(circ: &mut Circuit, a: DualRail, b: DualRail) -> Result<DualRail, Error> {
    let (tt, tf, ft, ff) = join2x2(circ, a.t, a.f, b.t, b.f)?;
    let t = m(circ, tf, ft)?;
    let f = m(circ, tt, ff)?;
    Ok(DualRail { t, f })
}

/// Dual-rail NOT: free — just swap the rails.
pub fn dr_not(a: DualRail) -> DualRail {
    DualRail { t: a.f, f: a.t }
}

/// Duplicate a dual-rail signal (one splitter per rail).
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dr_fork(circ: &mut Circuit, a: DualRail) -> Result<(DualRail, DualRail), Error> {
    let (t0, t1) = s(circ, a.t)?;
    let (f0, f1) = s(circ, a.f)?;
    Ok((DualRail { t: t0, f: f0 }, DualRail { t: t1, f: f1 }))
}

/// Create a dual-rail constant input: a pulse on the rail selected by
/// `value` at time `t0`.
pub fn dr_input(circ: &mut Circuit, value: bool, t0: f64, name: &str) -> DualRail {
    let t_times: &[f64] = if value { &[t0] } else { &[] };
    let f_times: &[f64] = if value { &[] } else { &[t0] };
    DualRail {
        t: circ.inp_at(t_times, &format!("{name}_T")),
        f: circ.inp_at(f_times, &format!("{name}_F")),
    }
}

/// Observe both rails of a signal as `{name}_T` / `{name}_F`.
pub fn dr_inspect(circ: &mut Circuit, sig: DualRail, name: &str) {
    circ.inspect(sig.t, &format!("{name}_T"));
    circ.inspect(sig.f, &format!("{name}_F"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    fn eval(
        gate: fn(&mut Circuit, DualRail, DualRail) -> Result<DualRail, Error>,
        a: bool,
        b: bool,
    ) -> bool {
        let mut circ = Circuit::new();
        let a = dr_input(&mut circ, a, 20.0, "A");
        let b = dr_input(&mut circ, b, 28.0, "B");
        let q = gate(&mut circ, a, b).unwrap();
        dr_inspect(&mut circ, q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        let t = ev.times("Q_T").len();
        let f = ev.times("Q_F").len();
        assert_eq!(t + f, 1, "exactly one rail pulses (t={t}, f={f})");
        t == 1
    }

    #[test]
    fn and_truth_table() {
        assert!(!eval(dr_and, false, false));
        assert!(!eval(dr_and, false, true));
        assert!(!eval(dr_and, true, false));
        assert!(eval(dr_and, true, true));
    }

    #[test]
    fn or_truth_table() {
        assert!(!eval(dr_or, false, false));
        assert!(eval(dr_or, false, true));
        assert!(eval(dr_or, true, false));
        assert!(eval(dr_or, true, true));
    }

    #[test]
    fn xor_truth_table() {
        assert!(!eval(dr_xor, false, false));
        assert!(eval(dr_xor, false, true));
        assert!(eval(dr_xor, true, false));
        assert!(!eval(dr_xor, true, true));
    }

    #[test]
    fn not_is_rail_swap_and_composes() {
        // q = NOT(a AND b) over all inputs via gate composition.
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut circ = Circuit::new();
            let aw = dr_input(&mut circ, a, 20.0, "A");
            let bw = dr_input(&mut circ, b, 28.0, "B");
            let and = dr_and(&mut circ, aw, bw).unwrap();
            let q = dr_not(and);
            dr_inspect(&mut circ, q, "Q");
            let ev = Simulation::new(circ).run().unwrap();
            assert_eq!(!ev.times("Q_T").is_empty(), !(a && b), "{a} {b}");
        }
    }

    #[test]
    fn fork_duplicates_both_rails() {
        let mut circ = Circuit::new();
        let a = dr_input(&mut circ, true, 20.0, "A");
        let (x, y) = dr_fork(&mut circ, a).unwrap();
        dr_inspect(&mut circ, x, "X");
        dr_inspect(&mut circ, y, "Y");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("X_T").len(), 1);
        assert_eq!(ev.times("Y_T").len(), 1);
        assert!(ev.times("X_F").is_empty());
    }

    #[test]
    fn two_level_dual_rail_circuit() {
        // q = (a AND b) XOR c, clockless, for a few vectors.
        for v in 0u8..8 {
            let (a, b, c) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
            let mut circ = Circuit::new();
            let aw = dr_input(&mut circ, a, 20.0, "A");
            let bw = dr_input(&mut circ, b, 28.0, "B");
            let cw = dr_input(&mut circ, c, 36.0, "C");
            let ab = dr_and(&mut circ, aw, bw).unwrap();
            let q = dr_xor(&mut circ, ab, cw).unwrap();
            dr_inspect(&mut circ, q, "Q");
            let ev = Simulation::new(circ).run().unwrap();
            assert_eq!(!ev.times("Q_T").is_empty(), (a && b) ^ c, "v={v}");
        }
    }
}
