//! Feedback loops: a ring oscillator and a pulse recirculator.
//!
//! The paper's §4.3 notes that the simulator's target time exists because
//! designs may contain loops; these designs are the canonical examples. A
//! seed pulse enters a merger whose output circulates through a JTL chain
//! back into the merger's other input, producing a pulse train whose period
//! is the loop latency.

use rlse_cells::{jtl_chain, m, s};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;

/// The result of [`ring_oscillator`].
#[derive(Debug, Clone, Copy)]
pub struct RingOscillator {
    /// Observable output tap (one pulse per revolution).
    pub tap: Wire,
    /// Loop latency in ps (the oscillation period).
    pub period: f64,
}

/// Build a ring oscillator: `seed` starts the loop, and one pulse appears
/// on `tap` every `period` picoseconds thereafter. The period is set by the
/// number of JTL stages: `period = merger + splitter + stages × jtl`
/// `= 6.3 + 11 + 5.7 × stages`.
///
/// Simulate with [`Simulation::until`](rlse_core::sim::Simulation::until) —
/// the loop never drains the pulse heap on its own.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn ring_oscillator(
    circ: &mut Circuit,
    seed: Wire,
    stages: usize,
) -> Result<RingOscillator, Error> {
    // seed ─► M ─► S ─┬─► tap
    //         ▲       └─► JTL × stages ─┐
    //         └─────────────────────────┘
    let chain_in = circ.loopback_wire();
    let merged = m(circ, seed, chain_in)?;
    let (tap, back) = s(circ, merged)?;
    let chained = jtl_chain(circ, back, stages)?;
    circ.close_loop(chained, chain_in)?;
    Ok(RingOscillator {
        tap,
        period: 6.3 + 11.0 + 5.7 * stages as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn ring_oscillates_at_the_designed_period() {
        let mut circ = Circuit::new();
        let seed = circ.inp_at(&[10.0], "SEED");
        let osc = ring_oscillator(&mut circ, seed, 4).unwrap();
        circ.inspect(osc.tap, "TAP");
        let ev = Simulation::new(circ).until(500.0).run().unwrap();
        let taps = ev.times("TAP");
        assert!(taps.len() >= 10, "got {} pulses", taps.len());
        // Constant period after the first revolution.
        for w in taps.windows(2) {
            assert!((w[1] - w[0] - osc.period).abs() < 1e-9, "{taps:?}");
        }
    }

    #[test]
    fn longer_chains_oscillate_slower() {
        let count = |stages: usize| {
            let mut circ = Circuit::new();
            let seed = circ.inp_at(&[10.0], "SEED");
            let osc = ring_oscillator(&mut circ, seed, stages).unwrap();
            circ.inspect(osc.tap, "TAP");
            let ev = Simulation::new(circ).until(600.0).run().unwrap();
            ev.times("TAP").len()
        };
        assert!(count(2) > count(10));
    }

    #[test]
    fn without_until_the_loop_is_rejected_by_inspection() {
        // Document the footgun: a loop with no target time would simulate
        // forever, so tests must always bound it.
        let mut circ = Circuit::new();
        let seed = circ.inp_at(&[10.0], "SEED");
        let osc = ring_oscillator(&mut circ, seed, 2).unwrap();
        circ.inspect(osc.tap, "TAP");
        // Bounded at a tiny horizon: exactly the seed revolution appears.
        let ev = Simulation::new(circ).until(30.0).run().unwrap();
        assert_eq!(ev.times("TAP").len(), 1);
    }
}
