//! # rlse-designs — the larger evaluation designs of the PyLSE paper
//!
//! The six larger designs of Table 3 plus the memory hole of Figure 9, all
//! built on [`rlse_core`] and [`rlse_cells`]:
//!
//! * [`minmax`] — the min-max comparator pair (Fig. 11).
//! * [`bitonic`] — Batcher bitonic sorters over min-max pairs, for any
//!   power-of-two width (the paper evaluates 4 and 8 inputs; Fig. 15).
//! * [`race_tree`](mod@race_tree) — a race-logic decision tree with four labels (§5.2).
//! * [`adder`] — the clocked RSFQ full adder ("Adder (Sync)").
//! * [`xsfq_adder`] — a clockless dual-rail full adder ("Adder (xSFQ)").
//! * [`memory`] — the 16×2-bit behavioral memory hole (Fig. 9).
//!
//! Extensions beyond the paper's six designs:
//!
//! * [`ripple_adder`](mod@ripple_adder) — n-bit ripple-carry adders generated from the 1-bit
//!   synchronous full adder.
//! * [`registers`] — DRO shift registers and toggle-chain ripple counters.
//! * [`dual_rail`] — a clockless dual-rail (xSFQ-style) gate library.
//! * [`decision_tree`](mod@decision_tree) — arbitrary-depth race-logic
//!   decision trees.
//! * [`ring`] — feedback loops (ring oscillators), exercising the
//!   simulator's target-time cutoff.
//! * [`margins`] — Monte-Carlo timing-margin analyses of the ripple adder
//!   and decision trees, built on `rlse_core`'s parallel sweep engine.
//! * [`ir_fixtures`] — netlist-IR emitters for every shmoo design, the
//!   fixture source for round-trip tests and the serving front end.
//!
//! Each module exposes both a composable builder (taking wires) and a
//! `*_with_inputs` convenience that constructs a self-contained test bench.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adder;
pub mod bitonic;
pub mod decision_tree;
pub mod dual_rail;
pub mod ir_fixtures;
pub mod margins;
pub mod memory;
pub mod minmax;
pub mod race_tree;
pub mod registers;
pub mod ring;
pub mod ripple_adder;
pub mod xsfq_adder;

pub use adder::full_adder_sync;
pub use decision_tree::{decision_tree, decision_tree_with_inputs, Tree};
pub use dual_rail::{dr_and, dr_fork, dr_input, dr_inspect, dr_not, dr_or, dr_xor};
pub use ir_fixtures::{all_design_irs, design_ir, design_ir_with_expected_outputs};
pub use margins::{
    decision_tree_margin, design_spec, find_first_pass, find_first_pass_uniform,
    ripple_adder_margin, shmoo_design_names, shmoo_map, Boundary, CellState, MarginAnalysis,
    MarginPoint, ShmooMap, ShmooOptions,
};
pub use registers::{ripple_counter, shift_register};
pub use ring::ring_oscillator;
pub use ripple_adder::{ripple_adder, ripple_adder_with_inputs};
pub use bitonic::{
    bitonic_delay, bitonic_rank_gap, bitonic_schedule, bitonic_sorter,
    bitonic_sorter_with_inputs, bitonic_sorter_with_waves, bitonic_stimulus,
    bitonic_wave_period, bitonic_wave_stimulus,
};
pub use memory::{memory_bench, memory_hole, MemOp};
pub use minmax::{min_max, MIN_MAX_DELAY};
pub use race_tree::{race_tree, race_tree_with_inputs, Thresholds};
pub use xsfq_adder::{
    full_adder_xsfq, ripple_adder_xsfq, ripple_adder_xsfq_with_inputs, DualRail,
};
