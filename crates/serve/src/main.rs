//! The `rlse-serve` CLI: JSON-lines requests in, JSON-lines responses out.
//!
//! ```text
//! rlse-serve [--input FILE] [--output FILE] [--repeat N] [--check-repeat]
//!            [--emit-fixture] [--summary]
//!            [--max-trials N] [--max-states N] [--max-seconds S] [--threads N]
//!            [--max-cache N]
//! ```
//!
//! Reads one request per line from `--input` (default stdin) and writes one
//! response per line to `--output` (default stdout), in order. `--repeat N`
//! serves the whole request file N times through the same process (and one
//! shared compiled cache); with `--check-repeat` the process exits nonzero
//! unless every pass produced byte-identical responses. `--emit-fixture`
//! prints the built-in fixture request corpus instead of serving.
//! `--summary` prints end-of-run accounting (requests, errors, cache
//! hits/misses) as one JSON line on stderr. `--max-cache N` caps the
//! compiled cache at N entries with LRU eviction (0 = unbounded;
//! default 1024).

use rlse_serve::{fixture_requests, ServeOptions, Server};
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;

struct Args {
    input: Option<String>,
    output: Option<String>,
    repeat: u32,
    check_repeat: bool,
    emit_fixture: bool,
    summary: bool,
    opts: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        output: None,
        repeat: 1,
        check_repeat: false,
        emit_fixture: false,
        summary: false,
        opts: ServeOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--input" => args.input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
            }
            "--check-repeat" => args.check_repeat = true,
            "--emit-fixture" => args.emit_fixture = true,
            "--summary" => args.summary = true,
            "--max-trials" => {
                args.opts.max_trials = value("--max-trials")?
                    .parse()
                    .map_err(|e| format!("--max-trials: {e}"))?;
            }
            "--max-states" => {
                args.opts.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?;
            }
            "--max-seconds" => {
                args.opts.max_seconds = value("--max-seconds")?
                    .parse()
                    .map_err(|e| format!("--max-seconds: {e}"))?;
            }
            "--threads" => {
                args.opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--max-cache" => {
                args.opts.max_cache_entries = value("--max-cache")?
                    .parse()
                    .map_err(|e| format!("--max-cache: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.emit_fixture {
        print!("{}", fixture_requests());
        return Ok(true);
    }

    let requests = match &args.input {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };

    let server = Server::new(args.opts);
    let mut passes: Vec<Vec<u8>> = Vec::with_capacity(args.repeat as usize);
    let mut summary = Default::default();
    for _ in 0..args.repeat {
        let mut out = Vec::new();
        summary = server
            .serve_reader(BufReader::new(requests.as_bytes()), &mut out)
            .map_err(|e| format!("serving: {e}"))?;
        passes.push(out);
    }

    let identical = passes.iter().all(|p| *p == passes[0]);
    match &args.output {
        Some(path) => {
            let mut f =
                std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            for p in &passes {
                f.write_all(p).map_err(|e| format!("writing {path}: {e}"))?;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            for p in &passes {
                lock.write_all(p).map_err(|e| format!("writing stdout: {e}"))?;
            }
        }
    }

    if args.summary {
        eprintln!("{}", summary.to_json());
    }
    if args.check_repeat && !identical {
        return Err("responses differed between passes".into());
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rlse-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
