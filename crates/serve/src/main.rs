//! The `rlse-serve` CLI: JSON-lines requests in, JSON-lines responses out.
//!
//! ```text
//! rlse-serve [--input FILE] [--output FILE] [--repeat N] [--check-repeat]
//!            [--emit-fixture] [--emit-corpus N] [--summary]
//!            [--max-trials N] [--max-states N] [--max-seconds S] [--threads N]
//!            [--workers N] [--max-cache N]
//!            [--access-log FILE] [--metrics FILE] [--metrics-every N]
//!            [--slow-trace-ms MS] [--trace-dir DIR]
//! ```
//!
//! Reads one request per line from `--input` (default stdin) and writes one
//! response per line to `--output` (default stdout), in order. `--repeat N`
//! serves the whole request file N times through the same process (and one
//! shared compiled cache); with `--check-repeat` the process exits nonzero
//! unless every pass produced byte-identical responses. `--emit-fixture`
//! prints the built-in fixture request corpus instead of serving;
//! `--emit-corpus N` prints the N-line generated mixed corpus. `--summary`
//! prints end-of-run accounting (requests, errors, cache hits/misses,
//! per-kind and per-tenant tallies) as one JSON line on stderr.
//! `--max-cache N` caps the compiled cache at N entries with LRU eviction
//! (0 = unbounded; default 1024).
//!
//! `--workers N` serves requests through N concurrent request workers
//! (0 = available parallelism; default 1). Responses still come out
//! strictly in input order and are byte-identical at any worker count; the
//! thread governor splits the host between request workers and per-request
//! engine threads when `--threads` is left at 0. At `--repeat 1` input and
//! output stream — responses emerge as requests arrive, so the CLI can sit
//! on a long-poll pipe.
//!
//! Observability (all out-of-band — response bytes never change):
//! `--access-log FILE` appends one JSON line per request (tenant, kind,
//! circuit hash, cache hit, budget clamps, counter deltas, wall-clock
//! phase micros). `--metrics FILE` writes Prometheus text-format metrics
//! at end of run, and additionally every N requests with
//! `--metrics-every N`. `--slow-trace-ms MS` dumps a Chrome trace of any
//! request at least MS milliseconds of wall clock into `--trace-dir`
//! (default `traces`); `--slow-trace-ms 0` traces every request.

use rlse_serve::{fixture_requests, generated_requests, ObserveOptions, Observer, ServeOptions, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;

struct Args {
    input: Option<String>,
    output: Option<String>,
    repeat: u32,
    check_repeat: bool,
    emit_fixture: bool,
    emit_corpus: Option<usize>,
    summary: bool,
    opts: ServeOptions,
    obs: ObserveOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        output: None,
        repeat: 1,
        check_repeat: false,
        emit_fixture: false,
        emit_corpus: None,
        summary: false,
        opts: ServeOptions::default(),
        obs: ObserveOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--input" => args.input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
            }
            "--check-repeat" => args.check_repeat = true,
            "--emit-fixture" => args.emit_fixture = true,
            "--emit-corpus" => {
                args.emit_corpus = Some(
                    value("--emit-corpus")?
                        .parse()
                        .map_err(|e| format!("--emit-corpus: {e}"))?,
                );
            }
            "--summary" => args.summary = true,
            "--max-trials" => {
                args.opts.max_trials = value("--max-trials")?
                    .parse()
                    .map_err(|e| format!("--max-trials: {e}"))?;
            }
            "--max-states" => {
                args.opts.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?;
            }
            "--max-seconds" => {
                args.opts.max_seconds = value("--max-seconds")?
                    .parse()
                    .map_err(|e| format!("--max-seconds: {e}"))?;
            }
            "--threads" => {
                args.opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--workers" => {
                args.opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-cache" => {
                args.opts.max_cache_entries = value("--max-cache")?
                    .parse()
                    .map_err(|e| format!("--max-cache: {e}"))?;
            }
            "--access-log" => args.obs.access_log = Some(value("--access-log")?.into()),
            "--metrics" => args.obs.metrics = Some(value("--metrics")?.into()),
            "--metrics-every" => {
                args.obs.metrics_every = value("--metrics-every")?
                    .parse()
                    .map_err(|e| format!("--metrics-every: {e}"))?;
            }
            "--slow-trace-ms" => {
                let ms: f64 = value("--slow-trace-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-trace-ms: {e}"))?;
                if ms.is_nan() || ms < 0.0 {
                    return Err("--slow-trace-ms must be >= 0".into());
                }
                args.obs.slow_trace_us = Some((ms * 1000.0) as u64);
            }
            "--trace-dir" => args.obs.trace_dir = Some(value("--trace-dir")?.into()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    if args.obs.slow_trace_us.is_some() && args.obs.trace_dir.is_none() {
        args.obs.trace_dir = Some("traces".into());
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.emit_fixture {
        print!("{}", fixture_requests());
        return Ok(true);
    }
    if let Some(n) = args.emit_corpus {
        print!("{}", generated_requests(n));
        return Ok(true);
    }

    let server = Server::new(args.opts);
    let mut observer =
        Observer::from_options(&args.obs).map_err(|e| format!("opening observability sinks: {e}"))?;

    if args.repeat == 1 {
        // Single pass: stream. Responses emerge as requests arrive, and a
        // stalled input pipe triggers idle metrics flushes instead of
        // blocking before serving begins.
        let input: Box<dyn BufRead + Send> = match &args.input {
            Some(path) => Box::new(BufReader::new(
                std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?,
            )),
            None => Box::new(BufReader::new(std::io::stdin())),
        };
        let output: Box<dyn Write> = match &args.output {
            Some(path) => Box::new(
                std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
            ),
            None => Box::new(std::io::stdout().lock()),
        };
        let summary = server
            .serve_observed(input, output, &mut observer)
            .map_err(|e| format!("serving: {e}"))?;
        if args.summary {
            eprintln!("{}", summary.to_json());
        }
        return Ok(true);
    }

    let requests = match &args.input {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };

    let mut passes: Vec<Vec<u8>> = Vec::with_capacity(args.repeat as usize);
    let mut summary = Default::default();
    for _ in 0..args.repeat {
        let mut out = Vec::new();
        summary = server
            .serve_observed(BufReader::new(requests.as_bytes()), &mut out, &mut observer)
            .map_err(|e| format!("serving: {e}"))?;
        passes.push(out);
    }

    let identical = passes.iter().all(|p| *p == passes[0]);
    match &args.output {
        Some(path) => {
            let mut f =
                std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            for p in &passes {
                f.write_all(p).map_err(|e| format!("writing {path}: {e}"))?;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            for p in &passes {
                lock.write_all(p).map_err(|e| format!("writing stdout: {e}"))?;
            }
        }
    }

    if args.summary {
        eprintln!("{}", summary.to_json());
    }
    if args.check_repeat && !identical {
        return Err("responses differed between passes".into());
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rlse-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
