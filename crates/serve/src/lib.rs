//! # rlse-serve — the JSON-lines batch serving front end
//!
//! A request file (or stdin) holds one JSON object per line; each line is
//! answered with exactly one JSON response line, in request order. Five
//! request kinds are served:
//!
//! * `simulate` — rebuild a netlist-IR circuit and run one simulation,
//!   returning the full events dictionary.
//! * `sweep` — a deterministically-seeded Monte-Carlo sweep over an IR
//!   circuit under a variability model.
//! * `shmoo` — a σ × time-scale margin map over one of the named
//!   evaluation designs.
//! * `model_check` — translate an IR circuit to timed automata and check
//!   its embedded queries (Query 1 / Query 2 of the paper).
//! * `ping` — a deterministic liveness probe: answers `"ok":true` without
//!   touching the compiled cache or any engine. Batch drivers use it to
//!   check the service end to end at near-zero cost.
//!
//! Circuits arrive as [`Ir`] documents. Every IR-bearing request goes
//! through one shared [`CompiledCache`], so repeating a request (or sharing
//! a circuit across requests) reuses the compiled dispatch tables; the
//! cache's hit/miss counters are reported out of band in the
//! [`Server::summary`], never in a response line.
//!
//! ## Determinism
//!
//! Responses are byte-identical for byte-identical request lines: seeds are
//! explicit, worker thread counts never change results, and responses carry
//! only deterministic fields (no wall-clock times, no cache hit flags).
//! Each response embeds the request's own deterministic telemetry counters
//! under `"telemetry"`.
//!
//! ## Observability
//!
//! All wall-clock and operational data flows *out-of-band* (see [`obs`]):
//! a JSON-lines access log per request, phase-latency histograms exposed
//! as Prometheus text, per-tenant accounting in the [`ServeSummary`], and
//! Chrome traces for slow requests. Requests may carry an optional
//! `"tenant"` label (and the existing `"id"`); both are accounting-only —
//! neither enters the circuit content hash nor changes response bytes.
//!
//! ## Budgets
//!
//! [`ServeOptions`] caps what one request may ask for: sweep/shmoo trials,
//! model-checker states and wall-clock seconds, and the simulation time
//! horizon. Requests asking for more are clamped, and the effective values
//! are echoed in the response.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod obs;
mod sched;

pub use obs::{
    prometheus_text_for, prometheus_text_for_with_sched, AccessRecord, ObserveOptions, Observer,
    SchedStats,
};

use rlse_core::ir::json::JsonValue;
use rlse_core::ir::{CompiledCache, Ir, IrQuery};
use rlse_core::prelude::*;
use rlse_ta::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::time::Instant;

/// Per-request resource caps. A request may ask for less than any cap but
/// never gets more.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Largest trial count a `sweep` or `shmoo` request may run per cell.
    pub max_trials: u64,
    /// Largest model-checker state budget a `model_check` request may use.
    pub max_states: usize,
    /// Largest model-checker wall-clock budget in seconds.
    pub max_seconds: f64,
    /// Largest simulation time horizon (`until`) in ps; `simulate` requests
    /// without an explicit horizon inherit it when finite.
    pub max_until: f64,
    /// Worker threads for the engines *inside* one request — sweeps and
    /// the model checker (0 = let the governor split the host between
    /// request workers; see [`Server::new`]). Thread count never changes
    /// response bytes.
    pub threads: usize,
    /// Concurrent request workers (0 = available parallelism). Responses
    /// are emitted strictly in input order and are byte-identical at any
    /// worker count; see [`Server::serve_observed`].
    pub workers: usize,
    /// Compiled-cache entry cap (0 = unbounded). A long-lived server fed
    /// many distinct circuits would otherwise grow without limit; overflow
    /// evicts least-recently-used entries, which only affects the summary's
    /// hit/miss counters, never response bytes.
    pub max_cache_entries: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_trials: 100_000,
            max_states: 2_000_000,
            max_seconds: 600.0,
            max_until: f64::INFINITY,
            threads: 0,
            workers: 1,
            max_cache_entries: 1024,
        }
    }
}

/// Per-request-kind accounting within a [`ServeSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Requests of this kind answered.
    pub requests: u64,
    /// Of those, requests answered with `"ok":false`.
    pub errors: u64,
}

/// Per-tenant accounting within a [`ServeSummary`]. Requests without a
/// `"tenant"` field aggregate under the empty-string tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantTally {
    /// Requests this tenant submitted.
    pub requests: u64,
    /// Of those, requests answered with `"ok":false`.
    pub errors: u64,
    /// Compiled-cache hits attributable to this tenant's requests.
    pub cache_hits: u64,
    /// Compiled-cache misses (compilations) this tenant triggered.
    pub cache_misses: u64,
    /// Monte-Carlo trials executed for this tenant (sweep + shmoo).
    pub trials: u64,
    /// Model-checker states explored for this tenant.
    pub states: u64,
    /// Simulation events dispatched for this tenant.
    pub events: u64,
}

/// End-of-run accounting: requests served, compiled-cache traffic, and
/// per-kind / per-tenant breakdowns. Deterministic — it carries no
/// wall-clock data (latency lives in the [`obs`] histograms).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines answered (including error responses).
    pub requests: u64,
    /// Requests that produced an `"ok":false` response.
    pub errors: u64,
    /// Compiled-cache hits across all requests so far.
    pub cache_hits: u64,
    /// Compiled-cache misses (compilations) across all requests so far.
    pub cache_misses: u64,
    /// Per-request-kind tallies (`simulate`, `sweep`, …, plus `error` for
    /// lines with no recognizable kind), name-sorted.
    pub kinds: BTreeMap<String, KindTally>,
    /// Per-tenant tallies, tenant-name-sorted ("" = untenanted requests).
    pub tenants: BTreeMap<String, TenantTally>,
}

impl ServeSummary {
    /// Fold one served request into the tallies (cache traffic is patched
    /// in separately from the shared cache's counters).
    pub fn absorb(&mut self, rec: &AccessRecord) {
        self.requests += 1;
        if !rec.ok {
            self.errors += 1;
        }
        let k = self.kinds.entry(rec.kind.clone()).or_default();
        k.requests += 1;
        if !rec.ok {
            k.errors += 1;
        }
        let t = self
            .tenants
            .entry(rec.tenant.clone().unwrap_or_default())
            .or_default();
        t.requests += 1;
        if !rec.ok {
            t.errors += 1;
        }
        match rec.cache_hit {
            Some(true) => t.cache_hits += 1,
            Some(false) => t.cache_misses += 1,
            None => {}
        }
        t.trials += rec.counter("sweep.trials") + rec.counter("shmoo.trials");
        t.states += rec.counter("mc.states");
        t.events += rec.counter("sim.dispatches");
    }

    /// One-line JSON rendering (the `--summary` output). Built through the
    /// shared JSON emitter, so hostile tenant names are escaped.
    pub fn to_json(&self) -> String {
        let kinds = JsonValue::Obj(
            self.kinds
                .iter()
                .map(|(kind, t)| {
                    (
                        kind.clone(),
                        JsonValue::Obj(vec![
                            ("requests".into(), int(t.requests)),
                            ("errors".into(), int(t.errors)),
                        ]),
                    )
                })
                .collect(),
        );
        let tenants = JsonValue::Obj(
            self.tenants
                .iter()
                .map(|(tenant, t)| {
                    (
                        tenant.clone(),
                        JsonValue::Obj(vec![
                            ("requests".into(), int(t.requests)),
                            ("errors".into(), int(t.errors)),
                            ("cache_hits".into(), int(t.cache_hits)),
                            ("cache_misses".into(), int(t.cache_misses)),
                            ("trials".into(), int(t.trials)),
                            ("states".into(), int(t.states)),
                            ("events".into(), int(t.events)),
                        ]),
                    )
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            ("requests".into(), int(self.requests)),
            ("errors".into(), int(self.errors)),
            ("cache_hits".into(), int(self.cache_hits)),
            ("cache_misses".into(), int(self.cache_misses)),
            ("kinds".into(), kinds),
            ("tenants".into(), tenants),
        ])
        .to_compact()
    }
}

/// The batch front end: a shared compiled-artifact cache plus the budget
/// configuration, serving one request line at a time.
#[derive(Debug)]
pub struct Server {
    cache: CompiledCache,
    opts: ServeOptions,
    /// Resolved request-worker count (the governor ran at construction).
    workers: usize,
    /// Resolved per-request engine thread count (never 0 — two concurrent
    /// requests must not each claim every core).
    engine_threads: usize,
    /// Deterministic serial-replay of cache hit/miss outcomes for the
    /// access log; see `sched`'s module docs.
    hit_model: std::sync::Mutex<sched::HitModel>,
}

/// An internal request failure, rendered as an `"ok":false` response line.
struct RequestError(String);

/// Per-request bookkeeping threaded through the handlers: the request's
/// telemetry handle plus everything the access log needs that a handler
/// learns along the way. None of it feeds back into response bytes except
/// the telemetry counters the handlers were already embedding.
struct ReqCtx {
    tel: Telemetry,
    hash: Option<u64>,
    cache_hit: Option<bool>,
    clamps: Vec<&'static str>,
    cache_us: u64,
}

impl ReqCtx {
    fn new() -> Self {
        ReqCtx {
            tel: Telemetry::new(),
            hash: None,
            cache_hit: None,
            clamps: Vec::new(),
            cache_us: 0,
        }
    }
}

fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros() as u64
}

impl<E: std::fmt::Display> From<E> for RequestError {
    fn from(e: E) -> Self {
        RequestError(e.to_string())
    }
}

fn int(v: u64) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn num(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

fn s(v: &str) -> JsonValue {
    JsonValue::Str(v.to_string())
}

/// The deterministic counters of a per-request telemetry report, as a JSON
/// object (spans and gauges carry wall-clock or memory detail and are
/// dropped).
fn telemetry_obj(report: &TelemetryReport) -> JsonValue {
    JsonValue::Obj(
        report
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), int(*v)))
            .collect(),
    )
}

fn events_obj(events: &Events) -> JsonValue {
    JsonValue::Obj(
        events
            .names()
            .map(|n| {
                let times = events.times(n).iter().map(|&t| num(t)).collect();
                (n.to_string(), JsonValue::Arr(times))
            })
            .collect(),
    )
}

/// A request's parsed variability model. [`Variability`] itself is not
/// `Clone` (custom models box stateful closures), so the spec is kept in
/// this cloneable form and instantiated once per consumer.
#[derive(Debug, Clone)]
enum VarSpec {
    Gaussian(f64),
    PerCellType(std::collections::HashMap<String, f64>),
}

impl VarSpec {
    fn make(&self) -> Variability {
        match self {
            VarSpec::Gaussian(std) => Variability::Gaussian { std: *std },
            VarSpec::PerCellType(map) => Variability::PerCellType(map.clone()),
        }
    }
}

/// The `"variability"` field of a request: `{"kind":"gaussian","std":S}` or
/// `{"kind":"per_cell_type","sigmas":{"JTL":S,…}}`.
fn parse_variability(v: &JsonValue) -> Result<VarSpec, RequestError> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| RequestError("variability needs a 'kind'".into()))?;
    match kind {
        "gaussian" => {
            let std = v
                .get("std")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| RequestError("gaussian variability needs 'std'".into()))?;
            Ok(VarSpec::Gaussian(std))
        }
        "per_cell_type" => {
            let sigmas = v
                .get("sigmas")
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| RequestError("per_cell_type needs a 'sigmas' object".into()))?;
            let mut map = std::collections::HashMap::new();
            for (cell, sigma) in sigmas {
                let sigma = sigma.as_f64().ok_or_else(|| {
                    RequestError(format!("sigma for '{cell}' is not a number"))
                })?;
                map.insert(cell.clone(), sigma);
            }
            Ok(VarSpec::PerCellType(map))
        }
        other => Err(RequestError(format!("unknown variability kind '{other}'"))),
    }
}

fn hex_hash(hash: u64) -> JsonValue {
    s(&format!("{hash:016x}"))
}

impl Server {
    /// A server with the given budgets and an empty compiled cache.
    ///
    /// The **thread-budget governor** runs here, once, so concurrent
    /// requests can't each claim the whole host: with `H` hardware threads,
    /// `workers = 0` resolves to `H` request workers, and `threads = 0`
    /// resolves to `max(1, H / workers)` engine threads per request —
    /// `workers × engine_threads ≈ H`. Explicit non-zero values are
    /// honored verbatim (deliberate oversubscription stays possible). The
    /// defaults (`workers = 1`, `threads = 0`) reproduce the historical
    /// serial behaviour: one request at a time, each using every core.
    pub fn new(opts: ServeOptions) -> Self {
        let cache = match opts.max_cache_entries {
            0 => CompiledCache::new(),
            cap => CompiledCache::new().with_max_entries(cap),
        };
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = if opts.workers == 0 { host } else { opts.workers };
        let engine_threads = if opts.threads == 0 {
            (host / workers).max(1)
        } else {
            opts.threads
        };
        let hit_model = std::sync::Mutex::new(sched::HitModel::new(match opts.max_cache_entries {
            0 => None,
            cap => Some(cap),
        }));
        Server {
            cache,
            opts,
            workers,
            engine_threads,
            hit_model,
        }
    }

    /// The shared compiled-artifact cache (for tests and embedding).
    pub fn cache(&self) -> &CompiledCache {
        &self.cache
    }

    /// Resolved request-worker count (after the governor's 0 → available
    /// parallelism substitution).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Resolved per-request engine thread count (after the governor's
    /// split; never 0).
    pub fn engine_threads(&self) -> usize {
        self.engine_threads
    }

    pub(crate) fn hit_model(&self) -> std::sync::MutexGuard<'_, sched::HitModel> {
        self.hit_model.lock().expect("hit model poisoned")
    }

    /// Current accounting. `requests`/`errors` only advance through
    /// [`serve_reader`](Self::serve_reader); cache traffic always counts.
    pub fn summary(&self) -> ServeSummary {
        ServeSummary {
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            ..ServeSummary::default()
        }
    }

    /// Answer one request line with one compact JSON response line (no
    /// trailing newline). Parse and dispatch failures become
    /// `"ok":false` responses, never panics.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_recorded(line).0
    }

    /// [`handle_line`](Self::handle_line) plus the request's
    /// [`AccessRecord`] (with `seq` left at 0 for the caller to assign)
    /// and its telemetry handle, whose spans back slow-request traces.
    /// The response string is byte-identical to `handle_line`'s.
    pub fn handle_recorded(&self, line: &str) -> (String, AccessRecord, Telemetry) {
        let t_total = Instant::now();
        let mut ctx = ReqCtx::new();
        let t_parse = Instant::now();
        let parsed = JsonValue::parse(line);
        let parse_us = elapsed_us(t_parse);
        let mut tenant = None;
        let t_run = Instant::now();
        let (id, kind, body) = match parsed {
            Ok(req) => {
                tenant = req
                    .get("tenant")
                    .and_then(JsonValue::as_str)
                    .map(String::from);
                let id = req.get("id").and_then(JsonValue::as_str).map(String::from);
                let kind = req
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .map(String::from);
                match kind.as_deref() {
                    Some("simulate") => (id, kind, self.simulate(&req, &mut ctx)),
                    Some("sweep") => (id, kind, self.sweep(&req, &mut ctx)),
                    Some("shmoo") => (id, kind, self.shmoo(&req, &mut ctx)),
                    Some("model_check") => (id, kind, self.model_check(&req, &mut ctx)),
                    Some("ping") => (id, kind, Ok(Vec::new())),
                    Some(other) => (
                        id,
                        None,
                        Err(RequestError(format!("unknown request kind '{other}'"))),
                    ),
                    None => (id, None, Err(RequestError("request needs a 'kind'".into()))),
                }
            }
            Err(e) => (None, None, Err(RequestError(format!("bad request JSON: {e}")))),
        };
        let run_us = elapsed_us(t_run).saturating_sub(ctx.cache_us);
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(id) = &id {
            fields.push(("id".into(), s(id)));
        }
        fields.push((
            "kind".into(),
            s(kind.as_deref().unwrap_or("error")),
        ));
        let error = match body {
            Ok(rest) => {
                fields.push(("ok".into(), JsonValue::Bool(true)));
                fields.extend(rest);
                None
            }
            Err(RequestError(msg)) => {
                fields.push(("ok".into(), JsonValue::Bool(false)));
                fields.push(("error".into(), s(&msg)));
                Some(msg)
            }
        };
        let t_encode = Instant::now();
        let response = JsonValue::Obj(fields).to_compact();
        let encode_us = elapsed_us(t_encode);
        let rec = AccessRecord {
            seq: 0,
            tenant,
            id,
            kind: kind.unwrap_or_else(|| "error".into()),
            ok: error.is_none(),
            error,
            hash: ctx.hash,
            cache_hit: ctx.cache_hit,
            clamps: ctx.clamps,
            counters: ctx.tel.report().counters,
            parse_us,
            cache_us: ctx.cache_us,
            run_us,
            encode_us,
            total_us: elapsed_us(t_total),
            queue_us: 0,
            reorder_us: 0,
        };
        (response, rec, ctx.tel)
    }

    /// Serve every non-blank line of `input`, writing one response line per
    /// request to `output` in request order.
    ///
    /// # Errors
    ///
    /// Only I/O errors from `input`/`output`; request failures are answered
    /// in-band.
    pub fn serve_reader(
        &self,
        input: impl BufRead + Send,
        output: impl Write,
    ) -> std::io::Result<ServeSummary> {
        self.serve_observed(input, output, &mut Observer::disabled())
    }

    /// [`serve_reader`](Self::serve_reader) with out-of-band observability:
    /// each request is appended to the observer's access log and latency
    /// histograms, slow requests dump Chrome traces, and the metrics file
    /// is rewritten at the configured stride, on writer idle, and at end
    /// of batch. Response bytes are identical to the unobserved path.
    ///
    /// Requests are handled by [`workers`](Self::workers) concurrent
    /// request workers behind an in-order reorder buffer (internals in
    /// DESIGN.md §16): responses and access records are emitted strictly
    /// in input order, byte-identical at any worker count.
    ///
    /// # Errors
    ///
    /// I/O errors from `input`/`output` or from the observer's sinks.
    pub fn serve_observed(
        &self,
        input: impl BufRead + Send,
        output: impl Write,
        observer: &mut Observer,
    ) -> std::io::Result<ServeSummary> {
        sched::serve_pipeline(self, input, output, observer, self.workers)
    }

    /// Parse the request's `"ir"` field and resolve it through the cache,
    /// timing the lookup/compile and recording the hash and hit/miss for
    /// the access log.
    fn load_ir(
        &self,
        req: &JsonValue,
        ctx: &mut ReqCtx,
    ) -> Result<(Ir, rlse_core::ir::CacheOutcome), RequestError> {
        let ir_val = req
            .get("ir")
            .ok_or_else(|| RequestError("request needs an 'ir' object".into()))?;
        let ir = Ir::from_json(&ir_val.to_compact())?;
        let t0 = Instant::now();
        let outcome = self.cache.get_or_compile(&ir);
        ctx.cache_us += elapsed_us(t0);
        let outcome = outcome?;
        ctx.hash = Some(outcome.hash);
        ctx.cache_hit = Some(outcome.hit);
        Ok((ir, outcome))
    }

    fn simulate(
        &self,
        req: &JsonValue,
        ctx: &mut ReqCtx,
    ) -> Result<Vec<(String, JsonValue)>, RequestError> {
        let (_ir, outcome) = self.load_ir(req, ctx)?;
        let mut sim = Simulation::with_compiled(outcome.circuit, outcome.compiled);
        sim.set_telemetry(&ctx.tel);
        let requested = req.get("until").and_then(JsonValue::as_f64);
        let until = requested.unwrap_or(f64::INFINITY).min(self.opts.max_until);
        if requested.is_some_and(|r| until < r) {
            ctx.clamps.push("until");
        }
        if until.is_finite() {
            sim.set_until(Some(until));
        }
        if let Some(v) = req.get("variability") {
            sim.set_variability(Some(parse_variability(v)?.make()));
        }
        if let Some(seed) = req.get("seed").and_then(JsonValue::as_f64) {
            sim.set_seed(seed as u64);
        }
        let events = sim.run()?;
        Ok(vec![
            ("hash".into(), hex_hash(outcome.hash)),
            ("events".into(), events_obj(&events)),
            ("telemetry".into(), telemetry_obj(&ctx.tel.report())),
        ])
    }

    fn sweep(
        &self,
        req: &JsonValue,
        ctx: &mut ReqCtx,
    ) -> Result<Vec<(String, JsonValue)>, RequestError> {
        let (ir, outcome) = self.load_ir(req, ctx)?;
        let requested_trials = req
            .get("trials")
            .and_then(JsonValue::as_f64)
            .map(|t| t as u64);
        let trials = requested_trials.unwrap_or(100).min(self.opts.max_trials);
        if requested_trials.is_some_and(|r| trials < r) {
            ctx.clamps.push("trials");
        }
        let seed = req
            .get("seed")
            .and_then(JsonValue::as_f64)
            .map_or(0, |v| v as u64);
        let requested_until = req.get("until").and_then(JsonValue::as_f64);
        let until = requested_until
            .unwrap_or(f64::INFINITY)
            .min(self.opts.max_until);
        if requested_until.is_some_and(|r| until < r) {
            ctx.clamps.push("until");
        }
        let variability = req.get("variability").map(parse_variability).transpose()?;
        // `check:true` turns the IR's expected-output query into the
        // per-trial verdict (a trial passes when every listed output fires
        // at exactly the listed times).
        let expected: Option<Vec<(String, Vec<f64>)>> =
            if req.get("check").and_then(JsonValue::as_bool) == Some(true) {
                let found = ir.queries.iter().find_map(|q| match q {
                    IrQuery::OutputsOnlyAt { outputs } => Some(outputs.clone()),
                    _ => None,
                });
                Some(found.ok_or_else(|| {
                    RequestError("check:true needs an outputs_only_at query in the IR".into())
                })?)
            } else {
                None
            };

        let mut sweep = Sweep::over(move || {
            ir.to_circuit().expect("IR validated by the cache lookup")
        })
        .trials(trials)
        .master_seed(seed)
        .threads(self.engine_threads)
        .telemetry(&ctx.tel);
        if until.is_finite() {
            sweep = sweep.until(until);
        }
        if let Some(spec) = variability {
            sweep = sweep.variability(move || spec.make());
        }
        if let Some(expected) = expected {
            sweep = sweep.check(move |ev| {
                expected
                    .iter()
                    .all(|(name, times)| ev.times(name) == times.as_slice())
            });
        }
        let report = sweep.try_run()?;
        let outputs = report
            .outputs
            .iter()
            .map(|o| {
                JsonValue::Obj(vec![
                    ("name".into(), s(&o.name)),
                    ("pulses".into(), int(o.pulses)),
                    ("mean".into(), num(o.mean)),
                    ("std".into(), num(o.std)),
                    ("min".into(), num(o.min)),
                    ("max".into(), num(o.max)),
                ])
            })
            .collect();
        Ok(vec![
            ("hash".into(), hex_hash(outcome.hash)),
            ("trials".into(), int(report.trials)),
            ("ok_trials".into(), int(report.ok)),
            ("check_failures".into(), int(report.check_failures)),
            ("timing_violations".into(), int(report.timing_violations)),
            ("other_errors".into(), int(report.other_errors)),
            ("outputs".into(), JsonValue::Arr(outputs)),
            ("telemetry".into(), telemetry_obj(&ctx.tel.report())),
        ])
    }

    fn shmoo(
        &self,
        req: &JsonValue,
        ctx: &mut ReqCtx,
    ) -> Result<Vec<(String, JsonValue)>, RequestError> {
        let design = req
            .get("design")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| RequestError("shmoo needs a 'design' name".into()))?;
        if !rlse_designs::shmoo_design_names().contains(&design) {
            return Err(RequestError(format!(
                "unknown shmoo design '{design}' (expected one of {:?})",
                rlse_designs::shmoo_design_names()
            )));
        }
        let axis = |key: &str| -> Result<Vec<f64>, RequestError> {
            req.get(key)
                .and_then(JsonValue::as_arr)
                .map(|a| a.iter().map(|v| v.as_f64()).collect::<Option<Vec<_>>>())
                .and_then(|v| v.filter(|v| !v.is_empty()))
                .ok_or_else(|| RequestError(format!("shmoo needs a non-empty '{key}' array")))
        };
        let sigmas = axis("sigmas")?;
        let scales = axis("scales")?;
        let mut opts = rlse_designs::ShmooOptions {
            threads: self.engine_threads,
            ..Default::default()
        };
        if let Some(t) = req.get("trials").and_then(JsonValue::as_f64) {
            opts.trials = t as u64;
        }
        if opts.trials > self.opts.max_trials {
            ctx.clamps.push("trials");
        }
        opts.trials = opts.trials.min(self.opts.max_trials);
        if let Some(seed) = req.get("seed").and_then(JsonValue::as_f64) {
            opts.master_seed = seed as u64;
        }
        if let Some(tol) = req.get("tolerance").and_then(JsonValue::as_f64) {
            opts.tolerance = tol;
        }
        if let Some(adaptive) = req.get("adaptive").and_then(JsonValue::as_bool) {
            opts.adaptive = adaptive;
        }
        let map = rlse_designs::shmoo_map(design, &sigmas, &scales, &opts);
        // The shmoo engine runs without a telemetry handle; account its
        // trial volume here so per-tenant trial totals cover it. The shmoo
        // response embeds no telemetry, so this never reaches a response.
        ctx.tel
            .add("shmoo.trials", map.evaluated.saturating_mul(map.trials));
        let rows = (0..sigmas.len())
            .map(|row| {
                let line: String = (0..scales.len())
                    .map(|col| match map.cell(row, col) {
                        rlse_designs::CellState::PassMeasured => 'P',
                        rlse_designs::CellState::PassInferred => 'p',
                        rlse_designs::CellState::FailMeasured => 'F',
                        rlse_designs::CellState::FailInferred => 'f',
                    })
                    .collect();
                s(&line)
            })
            .collect();
        let margins = (0..sigmas.len())
            .map(|row| map.margin_scale(row).map_or(JsonValue::Null, num))
            .collect();
        Ok(vec![
            ("design".into(), s(design)),
            ("trials".into(), int(map.trials)),
            ("evaluated".into(), int(map.evaluated)),
            ("map".into(), JsonValue::Arr(rows)),
            ("margin_scales".into(), JsonValue::Arr(margins)),
        ])
    }

    fn model_check(
        &self,
        req: &JsonValue,
        ctx: &mut ReqCtx,
    ) -> Result<Vec<(String, JsonValue)>, RequestError> {
        let (ir, outcome) = self.load_ir(req, ctx)?;
        let req_states = req.get("max_states").and_then(JsonValue::as_usize);
        let max_states = req_states
            .unwrap_or(self.opts.max_states)
            .min(self.opts.max_states);
        if req_states.is_some_and(|r| max_states < r) {
            ctx.clamps.push("max_states");
        }
        let req_seconds = req.get("max_seconds").and_then(JsonValue::as_f64);
        let max_seconds = req_seconds
            .unwrap_or(self.opts.max_seconds)
            .min(self.opts.max_seconds);
        if req_seconds.is_some_and(|r| max_seconds < r) {
            ctx.clamps.push("max_seconds");
        }
        let mc_opts = McOptions {
            max_states,
            max_seconds,
            threads: self.engine_threads,
        };
        let tr = translate_circuit(&outcome.circuit)?;
        let queries: Vec<IrQuery> = if ir.queries.is_empty() {
            vec![IrQuery::NoErrorState]
        } else {
            ir.queries.clone()
        };
        let results = queries
            .iter()
            .map(|q| {
                let label = match q {
                    IrQuery::NoErrorState => "no_error_state",
                    IrQuery::OutputsOnlyAt { .. } => "outputs_only_at",
                };
                let r = rlse_ta::mc::check_with_telemetry(
                    &tr.net,
                    &McQuery::from_ir(&tr, q),
                    mc_opts,
                    Some(&ctx.tel),
                );
                JsonValue::Obj(vec![
                    ("query".into(), s(label)),
                    (
                        "holds".into(),
                        r.holds.map_or(JsonValue::Null, JsonValue::Bool),
                    ),
                    ("states".into(), int(r.states() as u64)),
                    ("peak_store".into(), int(r.peak_store() as u64)),
                    (
                        "violation".into(),
                        r.violation.as_deref().map_or(JsonValue::Null, s),
                    ),
                    (
                        "diagnostic".into(),
                        r.diagnostic.as_deref().map_or(JsonValue::Null, s),
                    ),
                ])
            })
            .collect();
        Ok(vec![
            ("hash".into(), hex_hash(outcome.hash)),
            ("max_states".into(), int(mc_opts.max_states as u64)),
            ("results".into(), JsonValue::Arr(results)),
            ("telemetry".into(), telemetry_obj(&ctx.tel.report())),
        ])
    }
}

/// The fixture request corpus: one request of each kind over the `min_max`
/// design, as JSON lines, with tenant labels exercising the per-tenant
/// accounting (and one untenanted request for the "" row). The smoke tests
/// and the CI serve step pipe this file through the server twice and
/// require byte-identical responses with cache hits on the second pass.
pub fn fixture_requests() -> String {
    let ir = rlse_designs::design_ir("min_max", 1.0);
    let ir_line = |ir: &Ir| ir.to_value().to_compact();
    let with_outputs = rlse_designs::design_ir_with_expected_outputs("min_max", 1.0);
    let mut out = String::new();
    out.push_str("{\"id\":\"ping-1\",\"kind\":\"ping\",\"tenant\":\"probe\"}\n");
    out.push_str(&format!(
        "{{\"id\":\"sim-1\",\"kind\":\"simulate\",\"tenant\":\"acme\",\"ir\":{}}}\n",
        ir_line(&ir)
    ));
    out.push_str(&format!(
        "{{\"id\":\"sweep-1\",\"kind\":\"sweep\",\"tenant\":\"acme\",\"trials\":40,\"seed\":7,\
         \"variability\":{{\"kind\":\"gaussian\",\"std\":0.2}},\"ir\":{}}}\n",
        ir_line(&ir)
    ));
    out.push_str(&format!(
        "{{\"id\":\"sweep-2\",\"kind\":\"sweep\",\"tenant\":\"beta\",\"trials\":20,\"seed\":3,\
         \"check\":true,\"ir\":{}}}\n",
        ir_line(&with_outputs)
    ));
    out.push_str(
        "{\"id\":\"shmoo-1\",\"kind\":\"shmoo\",\"design\":\"min_max\",\
         \"sigmas\":[0.0,0.4],\"scales\":[0.6,1.0,1.4],\"trials\":24,\"seed\":11}\n",
    );
    out.push_str(&format!(
        "{{\"id\":\"mc-1\",\"kind\":\"model_check\",\"tenant\":\"beta\",\
         \"max_states\":200000,\"ir\":{}}}\n",
        ir_line(&ir)
    ));
    out
}

/// A deterministically generated mixed corpus for the differential
/// concurrency tests and the `serve_throughput` benchmark: `n` JSON request
/// lines cycling through every request kind, with only four distinct IR
/// documents behind all the circuit-bearing lines so duplicate content
/// hashes interleave — concurrent workers pile onto the same cache entries
/// and exercise single-flight compilation. Budgets are small enough that a
/// 200-line corpus serves in seconds on one core.
pub fn generated_requests(n: usize) -> String {
    let irs: Vec<String> = [("min_max", 1.0), ("min_max", 2.0), ("race_tree", 1.0)]
        .iter()
        .map(|(name, scale)| rlse_designs::design_ir(name, *scale).to_value().to_compact())
        .collect();
    let checked = rlse_designs::design_ir_with_expected_outputs("min_max", 1.0)
        .to_value()
        .to_compact();
    let tenants = ["acme", "beta", ""];
    let mut out = String::new();
    for i in 0..n {
        let tenant = tenants[i % tenants.len()];
        let tenant_field = if tenant.is_empty() {
            String::new()
        } else {
            format!("\"tenant\":\"{tenant}\",")
        };
        let ir = &irs[i % irs.len()];
        let line = match i % 8 {
            0 | 1 => {
                format!("{{\"id\":\"sim-{i}\",\"kind\":\"simulate\",{tenant_field}\"ir\":{ir}}}")
            }
            2 => format!(
                "{{\"id\":\"sweep-{i}\",\"kind\":\"sweep\",{tenant_field}\"trials\":10,\
                 \"seed\":{i},\"variability\":{{\"kind\":\"gaussian\",\"std\":0.2}},\"ir\":{ir}}}"
            ),
            3 => format!(
                "{{\"id\":\"sweep-{i}\",\"kind\":\"sweep\",{tenant_field}\"trials\":8,\
                 \"seed\":{i},\"check\":true,\"ir\":{checked}}}"
            ),
            4 => format!(
                "{{\"id\":\"shmoo-{i}\",\"kind\":\"shmoo\",{tenant_field}\"design\":\"min_max\",\
                 \"sigmas\":[0.0,0.4],\"scales\":[0.8,1.2],\"trials\":8,\"seed\":{i}}}"
            ),
            5 => format!(
                "{{\"id\":\"mc-{i}\",\"kind\":\"model_check\",{tenant_field}\
                 \"max_states\":50000,\"ir\":{ir}}}"
            ),
            6 => format!("{{\"id\":\"ping-{i}\",\"kind\":\"ping\",{tenant_field}\"probe\":true}}"),
            _ => format!(
                "{{\"id\":\"sim-{i}\",\"kind\":\"simulate\",{tenant_field}\"until\":5000,\
                 \"ir\":{ir}}}"
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kinds_and_bad_json_become_error_lines() {
        let server = Server::new(ServeOptions::default());
        let r = server.handle_line("{\"kind\":\"frobnicate\"}");
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("unknown request kind"), "{r}");
        let r = server.handle_line("not json");
        assert!(r.contains("bad request JSON"), "{r}");
        let r = server.handle_line("{\"id\":\"x\",\"kind\":\"simulate\"}");
        assert!(r.starts_with("{\"id\":\"x\","), "{r}");
        assert!(r.contains("needs an 'ir' object"), "{r}");
    }

    #[test]
    fn hostile_request_lines_never_panic() {
        // REVIEW regressions: both lines previously killed the whole batch
        // (an out-of-bounds machine index panicked in `canonical_bytes`; a
        // deeply nested line overflowed the parser's stack).
        let server = Server::new(ServeOptions::default());
        let dangling = "{\"kind\":\"simulate\",\"ir\":{\"version\":1,\"name\":\"\",\
             \"machines\":[],\"nodes\":[{\"kind\":\"cell\",\"machine\":0}],\
             \"wires\":[],\"queries\":[]}}";
        let r = server.handle_line(dangling);
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("machine"), "{r}");

        let bomb = format!("{}{}", "[".repeat(200_000), "]".repeat(200_000));
        let r = server.handle_line(&bomb);
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("bad request JSON"), "{r}");

        // The server still answers well-formed requests afterwards.
        let ir = rlse_designs::design_ir("min_max", 1.0);
        let good = format!(
            "{{\"kind\":\"simulate\",\"ir\":{}}}",
            ir.to_value().to_compact()
        );
        assert!(server.handle_line(&good).contains("\"ok\":true"));
    }

    #[test]
    fn bounded_cache_evicts_but_keeps_serving() {
        let server = Server::new(ServeOptions {
            max_cache_entries: 1,
            ..Default::default()
        });
        let line = |scale: f64| {
            format!(
                "{{\"kind\":\"simulate\",\"ir\":{}}}",
                rlse_designs::design_ir("min_max", scale).to_value().to_compact()
            )
        };
        let first = server.handle_line(&line(1.0));
        server.handle_line(&line(2.0)); // evicts the scale-1.0 entry
        let again = server.handle_line(&line(1.0)); // recompiles
        assert_eq!(first, again, "eviction never changes response bytes");
        assert_eq!(server.cache().len(), 1);
        assert_eq!(server.cache().hits(), 0);
        assert_eq!(server.cache().misses(), 3);
    }

    #[test]
    fn simulate_matches_a_direct_run_and_hits_the_cache_on_repeat() {
        let server = Server::new(ServeOptions::default());
        let ir = rlse_designs::design_ir("min_max", 1.0);
        let line = format!(
            "{{\"kind\":\"simulate\",\"ir\":{}}}",
            ir.to_value().to_compact()
        );
        let first = server.handle_line(&line);
        let second = server.handle_line(&line);
        assert_eq!(first, second, "responses must be byte-identical");
        assert!(first.contains("\"ok\":true"), "{first}");
        assert_eq!(server.cache().hits(), 1);
        assert_eq!(server.cache().misses(), 1);
        // The reported events equal a direct simulation of the same IR.
        let events = Simulation::new(ir.to_circuit().unwrap()).run().unwrap();
        for name in events.names() {
            assert!(first.contains(&format!("\"{name}\":[")), "{first}");
        }
    }

    #[test]
    fn sweep_honors_the_trial_budget_and_reports_unknown_cell_types() {
        let server = Server::new(ServeOptions {
            max_trials: 8,
            ..Default::default()
        });
        let ir = rlse_designs::design_ir("min_max", 1.0).to_value().to_compact();
        let r = server.handle_line(&format!(
            "{{\"kind\":\"sweep\",\"trials\":1000,\"ir\":{ir}}}"
        ));
        assert!(r.contains("\"trials\":8"), "clamped to the budget: {r}");
        let r = server.handle_line(&format!(
            "{{\"kind\":\"sweep\",\"variability\":{{\"kind\":\"per_cell_type\",\
             \"sigmas\":{{\"NOPE\":0.5}}}},\"ir\":{ir}}}"
        ));
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("NOPE"), "{r}");
    }

    #[test]
    fn fixture_corpus_serves_clean_and_deterministically() {
        let server = Server::new(ServeOptions::default());
        let requests = fixture_requests();
        let mut pass1 = Vec::new();
        let sum1 = server
            .serve_reader(requests.as_bytes(), &mut pass1)
            .unwrap();
        let mut pass2 = Vec::new();
        let sum2 = server
            .serve_reader(requests.as_bytes(), &mut pass2)
            .unwrap();
        assert_eq!(pass1, pass2, "responses must be byte-identical");
        assert_eq!(sum1.requests, 6);
        assert_eq!(sum1.errors, 0, "{}", String::from_utf8_lossy(&pass1));
        assert_eq!(sum1.cache_misses, sum2.cache_misses, "no new compiles");
        assert!(sum2.cache_hits > sum1.cache_hits, "second pass must hit");
    }
}
