//! Out-of-band observability for the serving front end: structured access
//! logging, phase-latency histograms, Prometheus text exposition, and
//! slow-request Chrome traces.
//!
//! ## Determinism rules
//!
//! The serving contract (DESIGN.md §15) is that **response lines are
//! byte-deterministic**: a byte-identical request line always yields a
//! byte-identical response line, with or without observability enabled.
//! Everything in this module is therefore *out-of-band* — it flows to the
//! access log, the metrics file, the summary, or a trace file, never into
//! a response. Wall-clock data (the `*_us` fields of an [`AccessRecord`],
//! every [`Histogram`] sample, span timestamps in slow traces) appears
//! *only* here; deterministic data (counters, verdicts, events) may appear
//! in both places.

use crate::{ServeSummary, TenantTally};
use rlse_core::ir::json::JsonValue;
use rlse_core::telemetry::{Histogram, Telemetry};
use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

/// One served request, as recorded in the JSON-lines access log. All
/// fields except the `*_us` wall-clock phase timings are deterministic
/// functions of the request line and the server's budget configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessRecord {
    /// 1-based sequence number across the [`Observer`]'s lifetime (spans
    /// `--repeat` passes).
    pub seq: u64,
    /// The request's optional `"tenant"` field — a client-supplied
    /// accounting label, never part of the circuit content hash.
    pub tenant: Option<String>,
    /// The request's optional `"id"` field, echoed as in the response.
    pub id: Option<String>,
    /// Request kind (`simulate`/`sweep`/`shmoo`/`model_check`/`ping`), or
    /// `error` when the line had no recognizable kind.
    pub kind: String,
    /// Whether the response line carried `"ok":true`.
    pub ok: bool,
    /// The error message of an `"ok":false` response.
    pub error: Option<String>,
    /// The IR content hash, for requests that carried a circuit.
    pub hash: Option<u64>,
    /// Whether the compiled circuit came from the cache (requests without
    /// a circuit record `None`).
    pub cache_hit: Option<bool>,
    /// Which per-request budget clamps fired (`trials`, `until`,
    /// `max_states`, `max_seconds`).
    pub clamps: Vec<&'static str>,
    /// The request's deterministic telemetry counter deltas (the same
    /// counters an IR-bearing response embeds under `"telemetry"`).
    pub counters: Vec<(String, u64)>,
    /// Wall-clock micros parsing the request line.
    pub parse_us: u64,
    /// Wall-clock micros in the compiled cache (lookup or compile).
    pub cache_us: u64,
    /// Wall-clock micros in the engine (handler time minus cache time).
    pub run_us: u64,
    /// Wall-clock micros encoding the response line.
    pub encode_us: u64,
    /// Wall-clock micros for the whole request.
    pub total_us: u64,
    /// Wall-clock micros between the reader thread enqueuing the request
    /// and a scheduler worker picking it up.
    pub queue_us: u64,
    /// Wall-clock micros the finished response waited in the reorder
    /// buffer for earlier-sequence requests to complete.
    pub reorder_us: u64,
}

impl AccessRecord {
    /// The counter delta `name`, or 0 if the request never recorded it.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// One compact JSON line (no trailing newline). String fields are
    /// escaped by the shared JSON emitter, so hostile tenant or error
    /// strings cannot break the log. Wall-clock fields all end in `_us`;
    /// stripping those keys yields a deterministic record.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, JsonValue)> = vec![(
            "seq".into(),
            JsonValue::Num(self.seq as f64),
        )];
        if let Some(t) = &self.tenant {
            fields.push(("tenant".into(), JsonValue::Str(t.clone())));
        }
        if let Some(id) = &self.id {
            fields.push(("id".into(), JsonValue::Str(id.clone())));
        }
        fields.push(("kind".into(), JsonValue::Str(self.kind.clone())));
        fields.push(("ok".into(), JsonValue::Bool(self.ok)));
        if let Some(e) = &self.error {
            fields.push(("error".into(), JsonValue::Str(e.clone())));
        }
        if let Some(h) = self.hash {
            fields.push(("hash".into(), JsonValue::Str(format!("{h:016x}"))));
        }
        if let Some(hit) = self.cache_hit {
            fields.push(("cache_hit".into(), JsonValue::Bool(hit)));
        }
        fields.push((
            "clamps".into(),
            JsonValue::Arr(
                self.clamps
                    .iter()
                    .map(|c| JsonValue::Str((*c).to_string()))
                    .collect(),
            ),
        ));
        fields.push((
            "counters".into(),
            JsonValue::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                    .collect(),
            ),
        ));
        for (key, v) in [
            ("parse_us", self.parse_us),
            ("cache_us", self.cache_us),
            ("run_us", self.run_us),
            ("encode_us", self.encode_us),
            ("total_us", self.total_us),
            ("queue_us", self.queue_us),
            ("reorder_us", self.reorder_us),
        ] {
            fields.push((key.into(), JsonValue::Num(v as f64)));
        }
        JsonValue::Obj(fields).to_compact()
    }
}

/// Point-in-time scheduler statistics, exposed as out-of-band gauges in
/// the metrics file. All of it is operational (timing- and
/// scheduling-dependent) data that never reaches a response line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Resolved request-level worker count serving this process.
    pub workers: u64,
    /// Engine threads granted to each in-flight request by the thread
    /// governor.
    pub engine_threads: u64,
    /// Peak depth of the parsed-request input queue.
    pub queue_depth_peak: u64,
    /// Peak number of finished responses parked in the reorder buffer
    /// waiting for an earlier-sequence request.
    pub reorder_depth_peak: u64,
    /// Times a request blocked on another request's in-flight compilation
    /// of the same circuit instead of compiling it again.
    pub singleflight_waits: u64,
    /// Metrics rewrites triggered by writer-thread idleness (a stalled
    /// input stream) rather than the request stride or end of batch.
    pub idle_flushes: u64,
}

/// Where the out-of-band streams go. Everything defaults to off; the plain
/// [`Server::serve_reader`](crate::Server::serve_reader) path uses a
/// disabled [`Observer`] and pays only a few branch checks per request.
#[derive(Debug, Clone, Default)]
pub struct ObserveOptions {
    /// JSON-lines access log path (one [`AccessRecord`] per request).
    pub access_log: Option<PathBuf>,
    /// Prometheus text-format metrics path, rewritten at end of batch.
    pub metrics: Option<PathBuf>,
    /// Also rewrite the metrics file every N requests (0 = end of batch
    /// only) so long batches expose progress before they finish.
    pub metrics_every: u64,
    /// Requests whose total wall-clock micros reach this threshold dump a
    /// Chrome trace of their engine spans into `trace_dir` (0 traces every
    /// request; `None` disables tracing).
    pub slow_trace_us: Option<u64>,
    /// Directory for slow-request traces (created on demand).
    pub trace_dir: Option<PathBuf>,
}

/// The stateful sink for all out-of-band streams: the open access log,
/// the cumulative phase histograms and summary backing the metrics file,
/// and the slow-trace writer. One observer spans every pass of a
/// `--repeat` run, so its accounting covers the whole process.
pub struct Observer {
    access: Option<Box<dyn Write + Send>>,
    metrics_path: Option<PathBuf>,
    metrics_every: u64,
    slow_trace_us: Option<u64>,
    trace_dir: Option<PathBuf>,
    seq: u64,
    /// Requests folded through [`observe`](Observer::observe); drives the
    /// `metrics_every` stride (the sequence counter can no longer serve —
    /// sequence numbers are assigned at read time, observations happen at
    /// emission time).
    observed: u64,
    traces_written: u64,
    hists: BTreeMap<String, Histogram>,
    summary: ServeSummary,
    sched: SchedStats,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("seq", &self.seq)
            .field("access", &self.access.is_some())
            .field("metrics_path", &self.metrics_path)
            .field("slow_trace_us", &self.slow_trace_us)
            .field("traces_written", &self.traces_written)
            .finish()
    }
}

impl Observer {
    /// An observer that records nothing (the plain serving path).
    pub fn disabled() -> Self {
        Observer {
            access: None,
            metrics_path: None,
            metrics_every: 0,
            slow_trace_us: None,
            trace_dir: None,
            seq: 0,
            observed: 0,
            traces_written: 0,
            hists: BTreeMap::new(),
            summary: ServeSummary::default(),
            sched: SchedStats::default(),
        }
    }

    /// Open every sink named by `opts` (truncating existing files, creating
    /// the trace directory on first use).
    ///
    /// # Errors
    ///
    /// I/O errors creating the access-log file.
    pub fn from_options(opts: &ObserveOptions) -> io::Result<Self> {
        let access: Option<Box<dyn Write + Send>> = match &opts.access_log {
            Some(path) => Some(Box::new(BufWriter::new(std::fs::File::create(path)?))),
            None => None,
        };
        Ok(Observer {
            access,
            metrics_path: opts.metrics.clone(),
            metrics_every: opts.metrics_every,
            slow_trace_us: opts.slow_trace_us,
            trace_dir: opts.trace_dir.clone(),
            ..Observer::disabled()
        })
    }

    /// Route the access log to an arbitrary writer (tests observe
    /// in-memory buffers instead of files).
    #[must_use]
    pub fn with_access_writer(mut self, w: Box<dyn Write + Send>) -> Self {
        self.access = Some(w);
        self
    }

    /// The next request's sequence number (1-based, process-lifetime).
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Record one served request: append the access-log line, fold the
    /// phase timings into the latency histograms, update the cumulative
    /// summary, and dump a slow trace when the threshold is met.
    pub(crate) fn observe(&mut self, rec: &AccessRecord, tel: &Telemetry) -> io::Result<()> {
        self.observed += 1;
        self.summary.absorb(rec);
        if let Some(w) = &mut self.access {
            writeln!(w, "{}", rec.to_json())?;
        }
        if self.metrics_path.is_some() {
            for (name, v) in [
                ("parse", rec.parse_us),
                ("cache", rec.cache_us),
                ("encode", rec.encode_us),
                ("total", rec.total_us),
                ("queue", rec.queue_us),
                ("reorder", rec.reorder_us),
            ] {
                self.hists.entry(name.to_string()).or_default().record(v);
            }
            self.hists
                .entry(format!("run.{}", rec.kind))
                .or_default()
                .record(rec.run_us);
        }
        if self
            .slow_trace_us
            .is_some_and(|limit| rec.total_us >= limit)
        {
            if let Some(dir) = self.trace_dir.clone() {
                std::fs::create_dir_all(&dir)?;
                let path = dir.join(format!("trace-{:06}-{}.json", rec.seq, rec.kind));
                std::fs::write(path, tel.chrome_trace_json())?;
                self.traces_written += 1;
            }
        }
        Ok(())
    }

    /// True after a request whose observation count hits the
    /// `metrics_every` stride (never at stride 0).
    pub(crate) fn metrics_due(&self) -> bool {
        self.metrics_path.is_some()
            && self.metrics_every > 0
            && self.observed.is_multiple_of(self.metrics_every)
    }

    /// True when a metrics sink is configured at all (the idle-flush path
    /// checks before bothering).
    pub(crate) fn wants_metrics(&self) -> bool {
        self.metrics_path.is_some()
    }

    /// Requests folded so far (drives idle-flush staleness tracking).
    pub(crate) fn observed(&self) -> u64 {
        self.observed
    }

    /// Replace the scheduler statistics carried in the next metrics
    /// rewrite.
    pub(crate) fn set_sched_stats(&mut self, sched: SchedStats) {
        self.sched = sched;
    }

    /// Rewrite the metrics file from the cumulative summary (with the
    /// shared cache's process-wide traffic patched in) and flush the
    /// access log.
    pub(crate) fn flush(&mut self, cache_hits: u64, cache_misses: u64) -> io::Result<()> {
        if let Some(w) = &mut self.access {
            w.flush()?;
        }
        if let Some(path) = &self.metrics_path {
            self.summary.cache_hits = cache_hits;
            self.summary.cache_misses = cache_misses;
            let hists: Vec<(String, Histogram)> =
                self.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            std::fs::write(
                path,
                prometheus_text_for_with_sched(&self.summary, &hists, &self.sched),
            )?;
        }
        Ok(())
    }

    /// The cumulative (process-lifetime) summary this observer has folded.
    pub fn summary(&self) -> &ServeSummary {
        &self.summary
    }

    /// The phase histograms backing the metrics exposition.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.hists
    }

    /// Slow traces written so far.
    pub fn traces_written(&self) -> u64 {
        self.traces_written
    }

    /// The scheduler statistics carried in the metrics exposition (zeroed
    /// until a serve pass updates them).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched
    }
}

/// Escape a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`, per the text-format spec).
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// [`prometheus_text_for_with_sched`] with zeroed scheduler statistics —
/// the exposition for embedders that never ran the request scheduler.
pub fn prometheus_text_for(summary: &ServeSummary, hists: &[(String, Histogram)]) -> String {
    prometheus_text_for_with_sched(summary, hists, &SchedStats::default())
}

/// Render a [`ServeSummary`], phase-latency histograms, and scheduler
/// statistics as Prometheus text format (version 0.0.4). Pure function of
/// its inputs — the golden test pins the exact bytes — and deterministic:
/// maps are name-sorted and histogram buckets are emitted in
/// increasing-bound order with cumulative counts, `+Inf`, `_sum`, and
/// `_count` series.
pub fn prometheus_text_for_with_sched(
    summary: &ServeSummary,
    hists: &[(String, Histogram)],
    sched: &SchedStats,
) -> String {
    let mut out = String::new();
    let counter = |out: &mut String, name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        &mut out,
        "rlse_requests_total",
        "Request lines answered, including error responses.",
        summary.requests,
    );
    counter(
        &mut out,
        "rlse_errors_total",
        "Requests answered with ok=false.",
        summary.errors,
    );
    counter(
        &mut out,
        "rlse_cache_hits_total",
        "Compiled-circuit cache hits.",
        summary.cache_hits,
    );
    counter(
        &mut out,
        "rlse_cache_misses_total",
        "Compiled-circuit cache misses (compilations).",
        summary.cache_misses,
    );

    if !summary.kinds.is_empty() {
        out.push_str(
            "# HELP rlse_requests_by_kind_total Requests answered, by request kind.\n\
             # TYPE rlse_requests_by_kind_total counter\n",
        );
        for (kind, t) in &summary.kinds {
            out.push_str(&format!(
                "rlse_requests_by_kind_total{{kind=\"{}\"}} {}\n",
                prom_escape(kind),
                t.requests
            ));
        }
        out.push_str(
            "# HELP rlse_errors_by_kind_total Error responses, by request kind.\n\
             # TYPE rlse_errors_by_kind_total counter\n",
        );
        for (kind, t) in &summary.kinds {
            out.push_str(&format!(
                "rlse_errors_by_kind_total{{kind=\"{}\"}} {}\n",
                prom_escape(kind),
                t.errors
            ));
        }
    }

    if !summary.tenants.is_empty() {
        type Getter = fn(&TenantTally) -> u64;
        let series: [(&str, &str, Getter); 7] = [
            ("rlse_tenant_requests_total", "Requests, by tenant.", |t| {
                t.requests
            }),
            ("rlse_tenant_errors_total", "Error responses, by tenant.", |t| {
                t.errors
            }),
            (
                "rlse_tenant_cache_hits_total",
                "Compiled-cache hits, by tenant.",
                |t| t.cache_hits,
            ),
            (
                "rlse_tenant_cache_misses_total",
                "Compiled-cache misses, by tenant.",
                |t| t.cache_misses,
            ),
            (
                "rlse_tenant_trials_total",
                "Monte-Carlo trials executed, by tenant.",
                |t| t.trials,
            ),
            (
                "rlse_tenant_states_total",
                "Model-checker states explored, by tenant.",
                |t| t.states,
            ),
            (
                "rlse_tenant_events_total",
                "Simulation events dispatched, by tenant.",
                |t| t.events,
            ),
        ];
        for (name, help, get) in series {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (tenant, t) in &summary.tenants {
                out.push_str(&format!(
                    "{name}{{tenant=\"{}\"}} {}\n",
                    prom_escape(tenant),
                    get(t)
                ));
            }
        }
    }

    if !hists.is_empty() {
        out.push_str(
            "# HELP rlse_phase_us Wall-clock serving latency per pipeline phase, microseconds.\n\
             # TYPE rlse_phase_us histogram\n",
        );
        for (phase, h) in hists {
            let label = prom_escape(phase);
            let mut cum = 0u64;
            for (bound, count) in h.buckets() {
                cum += count;
                out.push_str(&format!(
                    "rlse_phase_us_bucket{{phase=\"{label}\",le=\"{bound}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "rlse_phase_us_bucket{{phase=\"{label}\",le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "rlse_phase_us_sum{{phase=\"{label}\"}} {}\n",
                h.sum()
            ));
            out.push_str(&format!(
                "rlse_phase_us_count{{phase=\"{label}\"}} {}\n",
                h.count()
            ));
        }
    }

    let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
    };
    gauge(
        &mut out,
        "rlse_sched_workers",
        "Request-level scheduler workers serving this process.",
        sched.workers,
    );
    gauge(
        &mut out,
        "rlse_sched_engine_threads",
        "Engine threads the governor grants each in-flight request.",
        sched.engine_threads,
    );
    gauge(
        &mut out,
        "rlse_sched_queue_depth_peak",
        "Peak depth of the parsed-request input queue.",
        sched.queue_depth_peak,
    );
    gauge(
        &mut out,
        "rlse_sched_reorder_depth_peak",
        "Peak responses parked in the reorder buffer.",
        sched.reorder_depth_peak,
    );
    counter(
        &mut out,
        "rlse_cache_singleflight_waits_total",
        "Requests that waited on an in-flight compilation of the same circuit.",
        sched.singleflight_waits,
    );
    counter(
        &mut out,
        "rlse_sched_idle_flushes_total",
        "Metrics rewrites triggered by writer-thread idleness.",
        sched.idle_flushes,
    );
    out
}
