//! The deterministic concurrent request pipeline behind
//! [`Server::serve_observed`](crate::Server::serve_observed).
//!
//! ```text
//!            ┌────────┐   bounded    ┌──────────┐  completion   ┌───────────┐
//!  input ──▶ │ reader │ ──────────▶  │ worker×N │ ────────────▶ │ collector │ ──▶ output
//!            │ thread │    queue     │   pool   │    channel    │ (reorder) │
//!            └────────┘              └──────────┘               └───────────┘
//! ```
//!
//! * The **reader thread** pulls request lines off the input, stamps each
//!   with its input index, and pushes into a bounded queue (backpressure:
//!   a slow pool blocks the reader, not memory).
//! * **Workers** (the `--workers` pool) pop lines and run the ordinary
//!   [`handle_recorded`](crate::Server::handle_recorded) handler — the same
//!   code the serial path runs — against the shared single-flight
//!   [`CompiledCache`](rlse_core::ir::CompiledCache).
//! * The **collector** (the calling thread) holds a sequence-stamped
//!   reorder buffer and emits each response *strictly in input order*, so
//!   the output byte stream at any worker count is identical to one worker
//!   — and to the historical serial loop, because each response line
//!   depends only on its own request line (PR 8's determinism contract).
//!
//! ## Determinism
//!
//! Response bytes are trivially order-independent (per-request purity);
//! the subtle part is the **access log**. Records are also emitted from
//! the reorder buffer in input order, and the one genuinely racy field —
//! did this request hit the compiled cache? — is replaced by the verdict
//! of a deterministic replay model ([`HitModel`]): an LRU set with the
//! same capacity as the real cache, fed in input order. In serial
//! operation the model's verdict equals the real outcome exactly; under
//! concurrency it reports the canonical serial-equivalent verdict (the
//! lowest-sequence request for a circuit is the miss) even when a
//! later-sequence request happened to win the compile race. The real
//! cache's aggregate traffic is still reported out-of-band in the summary
//! and metrics, where totals — which single-flight keeps deterministic —
//! matter but per-request attribution does not. Under eviction pressure
//! (more distinct circuits in flight than `--max-cache`), concurrent
//! eviction order may diverge from the model; the model stays the
//! deterministic reference.
//!
//! Wall-clock phase fields (`queue_us`, `reorder_us`, …) remain
//! nondeterministic and live only under `*_us` keys, which every
//! downstream consumer already strips.

use crate::obs::SchedStats;
use crate::{Observer, ServeSummary, Server};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the collector waits for a completion before treating the
/// writer as idle and refreshing the metrics file (so a stalled input
/// stream doesn't leave stale metrics for long-poll deployments).
const IDLE_FLUSH: Duration = Duration::from_millis(250);

/// Bound on the parsed-request queue, per worker: deep enough to keep the
/// pool busy across uneven request costs, shallow enough to backpressure
/// the reader instead of buffering an unbounded stream.
const QUEUE_DEPTH_PER_WORKER: usize = 4;

/// A parsed request line travelling from the reader to a worker.
struct Job {
    idx: u64,
    line: String,
    enqueued: Instant,
}

/// A finished request travelling from a worker to the collector.
struct Done {
    idx: u64,
    response: String,
    rec: crate::AccessRecord,
    tel: rlse_core::telemetry::Telemetry,
    finished: Instant,
}

/// A minimal bounded MPMC queue (mutex + condvars): the reader blocks when
/// full, workers block when empty, and `close` drains-then-terminates.
struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    cap: usize,
    peak: usize,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                cap: cap.max(1),
                peak: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Block until there is room, then enqueue. Returns `false` if the
    /// queue was closed underneath us (an aborting collector).
    fn push(&self, item: T) -> bool {
        let mut st = self.inner.lock().expect("queue poisoned");
        while st.items.len() >= st.cap && !st.closed {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        st.peak = st.peak.max(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Block until an item is available; `None` once the queue is closed
    /// *and* drained.
    fn pop(&self) -> Option<T> {
        let mut st = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// Stop accepting pushes; blocked producers and (after the drain)
    /// consumers wake.
    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Drop queued items and close (the abort path).
    fn abort(&self) {
        let mut st = self.inner.lock().expect("queue poisoned");
        st.items.clear();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn peak(&self) -> usize {
        self.inner.lock().expect("queue poisoned").peak
    }
}

/// Deterministic replay of the compiled cache's hit/miss behaviour, fed in
/// input order by the collector: an LRU set of content hashes with the
/// same capacity as the real cache. See the module docs for why the access
/// log uses this instead of the racy per-request outcome.
#[derive(Debug)]
pub(crate) struct HitModel {
    /// Capacity in distinct hashes; `None` = unbounded (cache uncapped).
    cap: Option<usize>,
    tick: u64,
    last_used: HashMap<u64, u64>,
}

impl HitModel {
    pub(crate) fn new(cap: Option<usize>) -> Self {
        HitModel {
            cap: cap.map(|c| c.max(1)),
            tick: 0,
            last_used: HashMap::new(),
        }
    }

    /// Record an access to `hash` and report whether it was resident —
    /// exactly the verdict a serial pass over the same stream would see.
    pub(crate) fn touch(&mut self, hash: u64) -> bool {
        self.tick += 1;
        if self.last_used.insert(hash, self.tick).is_some() {
            return true;
        }
        if let Some(cap) = self.cap {
            while self.last_used.len() > cap {
                let lru = self
                    .last_used
                    .iter()
                    .min_by_key(|(_, &t)| t)
                    .map(|(&h, _)| h)
                    .expect("nonempty over cap");
                self.last_used.remove(&lru);
            }
        }
        false
    }
}

/// Serve every non-blank line of `input` through `workers` concurrent
/// request handlers, emitting responses (and access records) strictly in
/// input order. This is the engine behind `serve_observed`; at
/// `workers == 1` it degenerates to the historical serial behaviour with a
/// prefetching reader thread.
pub(crate) fn serve_pipeline(
    server: &Server,
    input: impl BufRead + Send,
    mut output: impl Write,
    observer: &mut Observer,
    workers: usize,
) -> std::io::Result<ServeSummary> {
    let workers = workers.max(1);
    let queue = BoundedQueue::new(workers * QUEUE_DEPTH_PER_WORKER);
    let read_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let (done_tx, done_rx) = mpsc::channel::<Done>();

    let mut summary = ServeSummary::default();
    let mut result: std::io::Result<()> = Ok(());

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut idx = 0u64;
            for line in input.lines() {
                let line = match line {
                    Ok(line) => line,
                    Err(e) => {
                        *read_error.lock().expect("error slot poisoned") = Some(e);
                        break;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                let job = Job {
                    idx,
                    line,
                    enqueued: Instant::now(),
                };
                idx += 1;
                if !queue.push(job) {
                    break; // collector aborted
                }
            }
            queue.close();
        });

        let queue_ref = &queue;
        for _ in 0..workers {
            let tx = done_tx.clone();
            scope.spawn(move || {
                while let Some(job) = queue_ref.pop() {
                    let picked = Instant::now();
                    let (response, mut rec, tel) = server.handle_recorded(&job.line);
                    rec.queue_us = picked.duration_since(job.enqueued).as_micros() as u64;
                    let done = Done {
                        idx: job.idx,
                        response,
                        rec,
                        tel,
                        finished: Instant::now(),
                    };
                    if tx.send(done).is_err() {
                        break; // collector gone; nothing left to do
                    }
                }
            });
        }
        drop(done_tx); // collector's recv disconnects once workers finish

        // Collector: reorder, patch determinism-sensitive fields, emit.
        let mut pending: BTreeMap<u64, Done> = BTreeMap::new();
        let mut next_idx = 0u64;
        let mut reorder_peak = 0u64;
        let mut idle_flushes = 0u64;
        let mut flushed_at = 0u64;
        let stats = |queue_peak: usize, reorder_peak: u64, idle_flushes: u64| SchedStats {
            workers: workers as u64,
            engine_threads: server.engine_threads() as u64,
            queue_depth_peak: queue_peak as u64,
            reorder_depth_peak: reorder_peak,
            singleflight_waits: server.cache().singleflight_waits(),
            idle_flushes,
        };
        'collect: loop {
            let done = match done_rx.recv_timeout(IDLE_FLUSH) {
                Ok(done) => done,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Writer idle: refresh the metrics file if anything
                    // changed since the last rewrite, so a stalled input
                    // stream can't leave stale metrics behind.
                    if observer.wants_metrics() && observer.observed() != flushed_at {
                        idle_flushes += 1;
                        observer.set_sched_stats(stats(queue.peak(), reorder_peak, idle_flushes));
                        if let Err(e) =
                            observer.flush(server.cache().hits(), server.cache().misses())
                        {
                            result = Err(e);
                            queue.abort();
                            break 'collect;
                        }
                        flushed_at = observer.observed();
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            pending.insert(done.idx, done);
            reorder_peak = reorder_peak.max(pending.len() as u64);
            while let Some(done) = pending.remove(&next_idx) {
                next_idx += 1;
                let Done {
                    response,
                    mut rec,
                    tel,
                    finished,
                    ..
                } = done;
                rec.seq = observer.next_seq();
                rec.reorder_us = finished.elapsed().as_micros() as u64;
                if let Some(hash) = rec.hash {
                    rec.cache_hit = Some(server.hit_model().touch(hash));
                }
                summary.absorb(&rec);
                let emit = observer
                    .observe(&rec, &tel)
                    .and_then(|()| {
                        if observer.metrics_due() {
                            observer
                                .set_sched_stats(stats(queue.peak(), reorder_peak, idle_flushes));
                            observer.flush(server.cache().hits(), server.cache().misses())?;
                            flushed_at = observer.observed();
                        }
                        Ok(())
                    })
                    .and_then(|()| writeln!(output, "{response}"));
                if let Err(e) = emit {
                    result = Err(e);
                    queue.abort();
                    break 'collect;
                }
            }
        }
        // Drain any stragglers so workers can exit before the scope joins.
        while done_rx.recv().is_ok() {}
        observer.set_sched_stats(stats(queue.peak(), reorder_peak, idle_flushes));
    });

    result?;
    if let Some(e) = read_error.lock().expect("error slot poisoned").take() {
        return Err(e);
    }
    summary.cache_hits = server.cache().hits();
    summary.cache_misses = server.cache().misses();
    observer.flush(server.cache().hits(), server.cache().misses())?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_model_replays_serial_lru_semantics() {
        let mut m = HitModel::new(Some(2));
        assert!(!m.touch(1), "first sight is a miss");
        assert!(!m.touch(2));
        assert!(m.touch(1), "resident is a hit");
        assert!(!m.touch(3), "over cap: evicts LRU (2)");
        assert!(m.touch(1), "1 was touched, survived");
        assert!(!m.touch(2), "2 was the LRU victim");
    }

    #[test]
    fn hit_model_unbounded_never_evicts() {
        let mut m = HitModel::new(None);
        for h in 0..1000u64 {
            assert!(!m.touch(h));
        }
        for h in 0..1000u64 {
            assert!(m.touch(h));
        }
    }

    #[test]
    fn bounded_queue_backpressures_and_drains_on_close() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                // Blocks until the consumer makes room.
                assert!(q.push(3));
            });
            assert_eq!(q.pop(), Some(1));
            h.join().unwrap();
        });
        q.close();
        assert!(!q.push(4), "closed queue refuses new work");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3), "close still drains queued work");
        assert_eq!(q.pop(), None);
        assert_eq!(q.peak(), 2);
    }
}
