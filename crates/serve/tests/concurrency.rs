//! Differential tests for the request scheduler: the response stream and
//! the deterministic (wall-clock-stripped) access log must not depend on
//! the worker count. `--workers 8` on the generated mixed corpus has to
//! produce the same bytes as `--workers 1` — which in turn matches the
//! historical serial loop — while the shared cache's single-flight path
//! keeps the compile count equal to the number of distinct circuits.

use rlse_core::ir::json::JsonValue;
use rlse_serve::{
    fixture_requests, generated_requests, ObserveOptions, Observer, ServeOptions, Server,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A cloneable in-memory `Write` sink (the observer takes ownership of its
/// access-log writer; the test keeps the other handle).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("UTF-8 access log")
    }
}

/// Drop every wall-clock (`*_us`) field of an access-log line, leaving the
/// deterministic record.
fn strip_wall_clock(line: &str) -> String {
    match JsonValue::parse(line).expect("access-log line parses as JSON") {
        JsonValue::Obj(fields) => JsonValue::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| !k.ends_with("_us"))
                .collect(),
        )
        .to_compact(),
        other => panic!("access-log line is not an object: {other:?}"),
    }
}

/// Serve `requests` at the given worker count, returning the response
/// bytes and the `*_us`-stripped access-log lines.
fn serve_at(requests: &str, workers: usize) -> (String, Vec<String>) {
    let server = Server::new(ServeOptions {
        workers,
        ..ServeOptions::default()
    });
    let buf = SharedBuf::default();
    let mut observer = Observer::disabled().with_access_writer(Box::new(buf.clone()));
    let mut out = Vec::new();
    server
        .serve_observed(requests.as_bytes(), &mut out, &mut observer)
        .unwrap();
    let stripped = buf.contents().lines().map(strip_wall_clock).collect();
    (String::from_utf8(out).expect("UTF-8 responses"), stripped)
}

#[test]
fn fixture_corpus_is_byte_identical_at_every_worker_count() {
    let requests = fixture_requests();
    let (serial, serial_log) = serve_at(&requests, 1);
    assert_eq!(serial.lines().count(), 6);
    for workers in [2, 4, 8] {
        let (concurrent, log) = serve_at(&requests, workers);
        assert_eq!(
            serial, concurrent,
            "responses must be byte-identical at workers={workers}"
        );
        assert_eq!(
            serial_log, log,
            "stripped access log must be identical at workers={workers}"
        );
    }
}

#[test]
fn generated_corpus_is_byte_identical_at_every_worker_count() {
    // The full 200-request mixed corpus: every request kind, duplicate
    // hashes interleaved, three tenants. This is the acceptance-criterion
    // test — worker counts 2/4/8 against 1.
    let requests = generated_requests(200);
    assert_eq!(requests.lines().count(), 200);
    let (serial, serial_log) = serve_at(&requests, 1);
    assert_eq!(serial.lines().count(), 200);
    assert!(
        !serial.contains("\"ok\":false"),
        "the generated corpus serves clean"
    );
    for workers in [2, 4, 8] {
        let (concurrent, log) = serve_at(&requests, workers);
        assert_eq!(
            serial, concurrent,
            "responses must be byte-identical at workers={workers}"
        );
        // Stronger than the issue's multiset requirement: records are
        // emitted from the reorder buffer in input order, so the stripped
        // logs are equal as *sequences*.
        assert_eq!(
            serial_log, log,
            "stripped access log must be identical at workers={workers}"
        );
    }
}

#[test]
fn concurrent_serving_matches_the_historical_serial_loop() {
    // workers=1 goes through the same scheduler (reader thread + reorder
    // buffer); this pins it against a plain in-test serial loop over
    // handle_line, the pre-scheduler behaviour.
    let requests = generated_requests(48);
    let server = Server::new(ServeOptions::default());
    let mut serial = String::new();
    for line in requests.lines().filter(|l| !l.trim().is_empty()) {
        serial.push_str(&server.handle_line(line));
        serial.push('\n');
    }
    let (piped, _) = serve_at(&requests, 4);
    assert_eq!(serial, piped, "scheduler output equals a plain serial loop");
}

#[test]
fn duplicate_hash_corpus_compiles_each_distinct_circuit_once() {
    // Acceptance criterion: with duplicate hashes interleaved, misses ==
    // distinct circuits no matter how many workers race, because losers of
    // the compile race wait on the leader's flight instead of recompiling.
    let requests = generated_requests(200);
    let distinct = 4; // three design IRs + the expected-outputs variant
    for workers in [1, 8] {
        let server = Server::new(ServeOptions {
            workers,
            ..ServeOptions::default()
        });
        let mut out = Vec::new();
        let summary = server.serve_reader(requests.as_bytes(), &mut out).unwrap();
        assert_eq!(
            summary.cache_misses, distinct,
            "workers={workers}: one compile per distinct circuit"
        );
        assert!(
            summary.cache_hits > summary.cache_misses,
            "workers={workers}: duplicates hit"
        );
    }
}

#[test]
fn per_tenant_cache_accounting_is_worker_count_independent() {
    // The per-tenant hit/miss split comes from the deterministic replay
    // model, so the summary JSON (which carries no wall-clock data) must
    // be identical at any worker count.
    let requests = generated_requests(96);
    let summary_at = |workers: usize| {
        let server = Server::new(ServeOptions {
            workers,
            ..ServeOptions::default()
        });
        let mut out = Vec::new();
        server
            .serve_reader(requests.as_bytes(), &mut out)
            .unwrap()
            .to_json()
    };
    let serial = summary_at(1);
    for workers in [2, 8] {
        assert_eq!(serial, summary_at(workers), "workers={workers}");
    }
}

#[test]
fn governor_resolves_thread_budgets_once_at_construction() {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Explicit values are honored verbatim.
    let server = Server::new(ServeOptions {
        workers: 3,
        threads: 2,
        ..ServeOptions::default()
    });
    assert_eq!(server.workers(), 3);
    assert_eq!(server.engine_threads(), 2);

    // workers=0 resolves to the host; threads=0 splits what's left so
    // concurrent requests don't each claim every core.
    let server = Server::new(ServeOptions {
        workers: 0,
        threads: 0,
        ..ServeOptions::default()
    });
    assert_eq!(server.workers(), host);
    assert_eq!(server.engine_threads(), (host / server.workers()).max(1));
    assert!(server.engine_threads() >= 1);

    // The historical default (one worker, threads=0) still grants a single
    // request the whole host.
    let server = Server::new(ServeOptions::default());
    assert_eq!(server.workers(), 1);
    assert_eq!(server.engine_threads(), host);
}

#[test]
fn metrics_flush_on_writer_idle_keeps_the_file_fresh() {
    // Feed the pipeline through a reader that stalls after the first
    // request: the idle-flush path must rewrite the metrics file while
    // the batch is still open (the serial loop only flushed at the stride
    // or end of batch).
    use std::io::Read;

    struct StallingReader {
        first: std::io::Cursor<Vec<u8>>,
        stalled: bool,
    }

    impl Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.first.read(buf)?;
            if n > 0 {
                return Ok(n);
            }
            if !self.stalled {
                self.stalled = true;
                // Stall past the ~250ms idle threshold before signalling
                // end of input.
                std::thread::sleep(std::time::Duration::from_millis(700));
            }
            Ok(0)
        }
    }

    let dir = std::env::temp_dir().join(format!("rlse-idle-flush-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.prom");

    let reader = std::io::BufReader::new(StallingReader {
        first: std::io::Cursor::new(
            "{\"id\":\"p\",\"kind\":\"ping\"}\n".to_string().into_bytes(),
        ),
        stalled: false,
    });

    let server = Server::new(ServeOptions::default());
    let opts = ObserveOptions {
        metrics: Some(metrics.clone()),
        metrics_every: 0, // stride disabled: only idle + end-of-batch flush
        ..ObserveOptions::default()
    };
    let mut observer = Observer::from_options(&opts).unwrap();
    let mut out = Vec::new();
    server
        .serve_observed(reader, &mut out, &mut observer)
        .unwrap();

    assert!(
        observer.sched_stats().idle_flushes >= 1,
        "the stalled stream triggered an idle flush: {:?}",
        observer.sched_stats()
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("rlse_requests_total 1"), "{text}");
    assert!(text.contains("rlse_sched_idle_flushes_total"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
