//! End-to-end smoke test of the `rlse-serve` binary: the fixture corpus
//! (all five request kinds) served twice through one process must produce
//! byte-identical responses, with the second pass served from the compiled
//! cache. This is the same invocation the CI serve step runs.

use std::process::Command;

#[test]
fn fixture_file_served_twice_is_byte_identical_with_cache_hits() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/requests.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_rlse-serve"))
        .args([
            "--input",
            fixture,
            "--repeat",
            "2",
            "--check-repeat",
            "--summary",
        ])
        .output()
        .expect("spawn rlse-serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "exit: {:?}\n{stderr}", out.status);

    let stdout = String::from_utf8(out.stdout).expect("responses are UTF-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 12, "6 requests × 2 passes:\n{stdout}");
    assert_eq!(&lines[..6], &lines[6..], "passes must be byte-identical");
    for line in &lines[..6] {
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    // The --summary line reports compiled-cache traffic: the second pass
    // must have been served from the cache.
    let summary = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("summary JSON on stderr");
    let hits: u64 = summary
        .split("\"cache_hits\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("cache_hits in summary");
    assert!(hits > 0, "second pass must hit the cache: {summary}");
}

#[test]
fn fixture_file_matches_the_emitter() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/requests.jsonl");
    let on_disk = std::fs::read_to_string(fixture).expect("fixture file");
    let out = Command::new(env!("CARGO_BIN_EXE_rlse-serve"))
        .arg("--emit-fixture")
        .output()
        .expect("spawn rlse-serve");
    assert!(out.status.success());
    assert_eq!(
        on_disk,
        String::from_utf8(out.stdout).unwrap(),
        "regenerate with: cargo run -p rlse-serve -- --emit-fixture > crates/serve/fixtures/requests.jsonl"
    );
}
