//! Integration tests for the out-of-band observability layer: the golden
//! Prometheus exposition bytes, access-log determinism modulo wall-clock
//! fields, per-kind / per-tenant accounting, the `ping` probe, slow-request
//! traces, and escaping of hostile client-supplied strings.
//!
//! The overriding invariant under test: **observability never changes
//! response bytes**. Everything the observer produces flows to its own
//! sinks; the response stream with every flag enabled is `cmp`-identical
//! to the stream with observability off.

use rlse_core::ir::json::JsonValue;
use rlse_core::telemetry::Histogram;
use rlse_serve::{
    fixture_requests, prometheus_text_for, prometheus_text_for_with_sched, KindTally,
    ObserveOptions, Observer, ServeOptions, ServeSummary, Server, TenantTally,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A cloneable in-memory `Write` sink, so a test can hand the observer a
/// writer and still read back what was written.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("UTF-8 access log")
    }
}

/// Parse one access-log line and drop every wall-clock (`*_us`) field,
/// leaving the deterministic record.
fn strip_wall_clock(line: &str) -> String {
    match JsonValue::parse(line).expect("access-log line parses as JSON") {
        JsonValue::Obj(fields) => JsonValue::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| !k.ends_with("_us"))
                .collect(),
        )
        .to_compact(),
        other => panic!("access-log line is not an object: {other:?}"),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rlse-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn observed_responses_are_byte_identical_to_plain_serving() {
    // The acceptance criterion: every observability sink enabled vs. all
    // off, same requests, byte-identical responses.
    let requests = fixture_requests();
    let dir = temp_dir("identical");

    let plain_server = Server::new(ServeOptions::default());
    let mut plain = Vec::new();
    plain_server
        .serve_reader(requests.as_bytes(), &mut plain)
        .unwrap();

    let observed_server = Server::new(ServeOptions::default());
    let opts = ObserveOptions {
        access_log: Some(dir.join("access.jsonl")),
        metrics: Some(dir.join("metrics.prom")),
        metrics_every: 2,
        slow_trace_us: Some(0),
        trace_dir: Some(dir.join("traces")),
    };
    let mut observer = Observer::from_options(&opts).unwrap();
    let mut observed = Vec::new();
    observed_server
        .serve_observed(requests.as_bytes(), &mut observed, &mut observer)
        .unwrap();

    assert_eq!(
        String::from_utf8(plain).unwrap(),
        String::from_utf8(observed).unwrap(),
        "observability must never change response bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn access_log_is_deterministic_once_wall_clock_fields_are_stripped() {
    let requests = fixture_requests();
    let run = || {
        let server = Server::new(ServeOptions::default());
        let buf = SharedBuf::default();
        let mut observer = Observer::disabled().with_access_writer(Box::new(buf.clone()));
        let mut out = Vec::new();
        server
            .serve_observed(requests.as_bytes(), &mut out, &mut observer)
            .unwrap();
        buf.contents()
            .lines()
            .map(strip_wall_clock)
            .collect::<Vec<String>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), 6, "one access line per fixture request");
    assert_eq!(
        first, second,
        "access log must be identical across runs modulo *_us fields"
    );
    // The deterministic part carries the accounting fields downstream
    // pipelines key on.
    assert!(first[0].contains("\"seq\":1"), "{}", first[0]);
    assert!(first[0].contains("\"kind\":\"ping\""), "{}", first[0]);
    assert!(first[0].contains("\"tenant\":\"probe\""), "{}", first[0]);
    let sweep = first
        .iter()
        .find(|l| l.contains("\"id\":\"sweep-1\""))
        .expect("sweep-1 access line");
    assert!(sweep.contains("\"cache_hit\""), "{sweep}");
    assert!(sweep.contains("\"hash\":\""), "{sweep}");
    assert!(sweep.contains("\"sweep.trials\":40"), "{sweep}");
}

#[test]
fn ping_is_deterministic_and_never_touches_the_cache() {
    let server = Server::new(ServeOptions::default());
    let (resp, rec, _tel) =
        server.handle_recorded("{\"id\":\"p1\",\"kind\":\"ping\",\"tenant\":\"probe\"}");
    assert_eq!(resp, "{\"id\":\"p1\",\"kind\":\"ping\",\"ok\":true}");
    assert_eq!(rec.kind, "ping");
    assert_eq!(rec.tenant.as_deref(), Some("probe"));
    assert!(rec.ok);
    assert_eq!(rec.cache_hit, None, "ping never consults the cache");
    assert_eq!(rec.hash, None);
    assert_eq!(server.cache().hits() + server.cache().misses(), 0);
    // The tenant label is accounting-only: it must not leak into the
    // response.
    assert!(!resp.contains("probe"), "{resp}");
}

#[test]
fn summary_accounts_by_kind_and_tenant() {
    let server = Server::new(ServeOptions::default());
    let mut out = Vec::new();
    let summary = server
        .serve_reader(fixture_requests().as_bytes(), &mut out)
        .unwrap();

    assert_eq!(summary.requests, 6);
    assert_eq!(summary.errors, 0);
    let kind = |k: &str| summary.kinds.get(k).copied().unwrap_or_default();
    assert_eq!(kind("ping").requests, 1);
    assert_eq!(kind("simulate").requests, 1);
    assert_eq!(kind("sweep").requests, 2);
    assert_eq!(kind("shmoo").requests, 1);
    assert_eq!(kind("model_check").requests, 1);
    assert_eq!(summary.kinds.values().map(|t| t.requests).sum::<u64>(), 6);

    let tenant = |t: &str| summary.tenants.get(t).copied().unwrap_or_default();
    assert_eq!(tenant("probe").requests, 1);
    assert_eq!(tenant("acme").requests, 2);
    assert_eq!(tenant("acme").trials, 40, "sweep-1 ran 40 trials for acme");
    assert!(tenant("acme").events > 0, "acme's simulate dispatched events");
    assert_eq!(tenant("beta").requests, 2);
    assert!(tenant("beta").states > 0, "beta's model_check explored states");
    assert_eq!(tenant("").requests, 1, "untenanted shmoo lands on \"\"");
    assert!(tenant("").trials > 0, "shmoo trials are accounted");

    // An unknown-kind line is tallied under kind "error" with errors=1.
    let server = Server::new(ServeOptions::default());
    let mut out = Vec::new();
    let summary = server
        .serve_reader("{\"kind\":\"nope\",\"tenant\":\"acme\"}\n".as_bytes(), &mut out)
        .unwrap();
    assert_eq!(summary.kinds.get("error"), Some(&KindTally { requests: 1, errors: 1 }));
    assert_eq!(summary.tenants.get("acme").map(|t| t.errors), Some(1));
}

#[test]
fn prometheus_text_matches_the_golden_bytes() {
    // A fixed summary covering every series family, including label values
    // that need escaping, plus one histogram with an exact bucket (10) and
    // a log-linear bucket (100 → upper bound 101).
    let mut summary = ServeSummary {
        requests: 3,
        errors: 1,
        cache_hits: 2,
        cache_misses: 1,
        ..ServeSummary::default()
    };
    summary
        .kinds
        .insert("simulate".into(), KindTally { requests: 2, errors: 0 });
    summary
        .kinds
        .insert("error".into(), KindTally { requests: 1, errors: 1 });
    summary.tenants.insert(
        "acme".into(),
        TenantTally {
            requests: 2,
            errors: 0,
            cache_hits: 2,
            cache_misses: 0,
            trials: 100,
            states: 5,
            events: 40,
        },
    );
    summary.tenants.insert(
        "we\"ird\\tenant\n".into(),
        TenantTally { requests: 1, errors: 1, ..TenantTally::default() },
    );
    let mut h = Histogram::default();
    h.record(10);
    h.record(100);
    h.record(100);
    let text = prometheus_text_for(&summary, &[("total".into(), h)]);

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &text).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file (regenerate with UPDATE_GOLDEN=1 cargo test -p rlse-serve)");
    assert_eq!(
        text, golden,
        "prometheus_text_for bytes drifted from the golden file; if the \
         change is intended, regenerate with UPDATE_GOLDEN=1"
    );

    // Structural sanity independent of the golden bytes: every line is a
    // comment or `name[{labels}] value` with an integer value.
    for line in text.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(value.parse::<u64>().is_ok(), "integer value: {line}");
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name is a valid identifier: {line}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(rest.starts_with('{') && rest.ends_with('}'), "{line}");
                assert!(!rest.contains('\n'), "labels stay on one line: {line}");
            }
        }
    }
    // The hostile tenant label is escaped, not emitted raw.
    assert!(text.contains("tenant=\"we\\\"ird\\\\tenant\\n\""), "{text}");
}

#[test]
fn slow_trace_threshold_zero_dumps_a_chrome_trace_per_request() {
    let dir = temp_dir("traces");
    let server = Server::new(ServeOptions::default());
    let opts = ObserveOptions {
        slow_trace_us: Some(0),
        trace_dir: Some(dir.clone()),
        ..ObserveOptions::default()
    };
    let mut observer = Observer::from_options(&opts).unwrap();
    let mut out = Vec::new();
    server
        .serve_observed(fixture_requests().as_bytes(), &mut out, &mut observer)
        .unwrap();
    assert_eq!(observer.traces_written(), 6, "one trace per request at 0ms");

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 6);
    assert_eq!(names[0], "trace-000001-ping.json");
    for name in &names {
        let body = std::fs::read_to_string(dir.join(name)).unwrap();
        let parsed = JsonValue::parse(&body).expect("trace is valid JSON");
        assert!(
            parsed.get("traceEvents").is_some(),
            "{name} is a Chrome trace"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_file_is_written_at_stride_and_end_of_batch() {
    let dir = temp_dir("metrics");
    let metrics = dir.join("metrics.prom");
    let server = Server::new(ServeOptions::default());
    let opts = ObserveOptions {
        metrics: Some(metrics.clone()),
        metrics_every: 2,
        ..ObserveOptions::default()
    };
    let mut observer = Observer::from_options(&opts).unwrap();
    let mut out = Vec::new();
    server
        .serve_observed(fixture_requests().as_bytes(), &mut out, &mut observer)
        .unwrap();
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(text.contains("rlse_requests_total 6"), "{text}");
    assert!(text.contains("rlse_requests_by_kind_total{kind=\"ping\"} 1"), "{text}");
    assert!(text.contains("rlse_tenant_trials_total{tenant=\"acme\"} 40"), "{text}");
    assert!(
        text.contains("rlse_phase_us_bucket{phase=\"total\",le=\"+Inf\"} 6"),
        "{text}"
    );
    // The exposition round-trips the same summary the observer holds.
    let hists: Vec<(String, Histogram)> = observer
        .histograms()
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(
        text,
        prometheus_text_for_with_sched(observer.summary(), &hists, &observer.sched_stats())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_client_strings_never_break_the_json_sinks() {
    let server = Server::new(ServeOptions::default());
    let hostile = "{\"id\":\"a\\\"b\\\\c\",\"kind\":\"ping\",\
                   \"tenant\":\"t\\\"x\\ny\\\\z\"}";
    let (resp, mut rec, _tel) = server.handle_recorded(hostile);
    JsonValue::parse(&resp).expect("response stays valid JSON");
    rec.seq = 1;
    let line = rec.to_json();
    let parsed = JsonValue::parse(&line).expect("access line stays valid JSON");
    assert_eq!(
        parsed.get("tenant").and_then(JsonValue::as_str),
        Some("t\"x\ny\\z"),
        "{line}"
    );

    let mut summary = ServeSummary::default();
    summary.absorb(&rec);
    let json = summary.to_json();
    let parsed = JsonValue::parse(&json).expect("summary stays valid JSON");
    assert!(
        parsed
            .get("tenants")
            .and_then(|t| t.get("t\"x\ny\\z"))
            .is_some(),
        "{json}"
    );
}
