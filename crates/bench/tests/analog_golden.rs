//! Golden agreement between the event-gated analog engine and the naive
//! reference engine on every Table-2 design: exact pulse-time equality at
//! one thread, and bit-identical full results across thread counts.

use rlse_analog::synth::from_circuit;
use rlse_bench::{bench_bitonic, bench_c, bench_c_inv, bench_min_max, Bench};

/// The Table-2 designs with their `table2` binary run lengths. Debug builds
/// integrate ~50x slower, so tier-1 runs use a shortened transient that
/// still covers several pulses per design; `--release` (CI smoke) runs the
/// full Table-2 window.
fn designs() -> Vec<(Bench, f64)> {
    let t = if cfg!(debug_assertions) { 150.0 } else { 450.0 };
    // The sorter's first output pulse lands at ~72 ps.
    let tb = if cfg!(debug_assertions) { 80.0 } else { 300.0 };
    vec![
        (bench_c(), t),
        (bench_c_inv(), t),
        (bench_min_max(), t),
        (bench_bitonic(8), tb),
    ]
}

#[test]
fn gated_engine_matches_reference_pulse_times_on_table2_designs() {
    for (bench, t_end) in designs() {
        let mut sim = from_circuit(&bench.circuit)
            .expect("Table 2 designs use only analog-modelled cells")
            .threads(1);
        let golden = sim.run_reference(t_end);
        let gated = sim.run(t_end);
        assert_eq!(
            gated.pulses, golden.pulses,
            "{}: gated engine diverged from the reference pulse times",
            bench.name
        );
        assert!(
            !golden.pulses.is_empty(),
            "{}: golden run produced no pulses — the comparison is vacuous",
            bench.name
        );
    }
}

#[test]
fn thread_counts_are_bit_identical_on_table2_designs() {
    for (bench, t_end) in designs() {
        let mut sim = from_circuit(&bench.circuit)
            .expect("Table 2 designs use only analog-modelled cells");
        sim.set_threads(1);
        let one = sim.run(t_end);
        sim.set_threads(8);
        let eight = sim.run(t_end);
        assert_eq!(
            one, eight,
            "{}: results differ between 1 and 8 threads",
            bench.name
        );
    }
}
