//! # rlse-bench — the experiment harness
//!
//! Builders and helpers shared by the table/figure regeneration binaries
//! (`table2`, `table3`, `fig10`, `fig12`, `fig13`, `fig16`, `robustness`)
//! and the criterion benches. Each binary regenerates one table or figure
//! of the PyLSE paper's evaluation (see DESIGN.md §2 for the index).

#![warn(missing_docs)]

use rlse_cells::defs;
use rlse_core::machine::Machine;
use rlse_core::prelude::*;
use std::sync::Arc;

/// A named experiment circuit: the design plus the stimuli already applied.
#[derive(Debug)]
pub struct Bench {
    /// Display name (Table 2/3 row).
    pub name: &'static str,
    /// The paper's "size" metric: DSL transitions for basic cells, lines of
    /// code for larger designs.
    pub size: usize,
    /// The circuit with stimuli attached.
    pub circuit: Circuit,
}

/// Build the paper's Figure 12 AND-element bench.
pub fn bench_and() -> Bench {
    let mut c = Circuit::new();
    let a = c.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
    let b = c.inp_at(&[75.0, 185.0, 225.0, 265.0], "B");
    let clk = c.inp(50.0, 50.0, 6, "CLK").expect("valid clock stimulus");
    let q = rlse_cells::and_s(&mut c, a, b, clk).expect("fresh wires");
    c.inspect(q, "Q");
    Bench {
        name: "And",
        size: defs::and_elem().definition_size(),
        circuit: c,
    }
}

/// A single C element driven by the Fig. 16 stimuli.
pub fn bench_c() -> Bench {
    let mut c = Circuit::new();
    let a = c.inp_at(&[100.0, 220.0, 340.0], "A");
    let b = c.inp_at(&[130.0, 250.0, 370.0], "B");
    let q = rlse_cells::c(&mut c, a, b).expect("fresh wires");
    c.inspect(q, "Q");
    Bench {
        name: "C",
        size: defs::c_elem().definition_size(),
        circuit: c,
    }
}

/// A single inverted C element.
pub fn bench_c_inv() -> Bench {
    let mut c = Circuit::new();
    let a = c.inp_at(&[100.0, 220.0, 340.0], "A");
    let b = c.inp_at(&[130.0, 250.0, 370.0], "B");
    let q = rlse_cells::c_inv(&mut c, a, b).expect("fresh wires");
    c.inspect(q, "Q");
    Bench {
        name: "InvC",
        size: defs::c_inv_elem().definition_size(),
        circuit: c,
    }
}

/// The min-max pair with the paper's §5.3 stimulus.
pub fn bench_min_max() -> Bench {
    let mut c = Circuit::new();
    let a = c.inp_at(&[115.0, 215.0, 315.0], "A");
    let b = c.inp_at(&[64.0, 184.0, 304.0], "B");
    let (low, high) = rlse_designs::min_max(&mut c, a, b).expect("fresh wires");
    c.inspect(low, "LOW");
    c.inspect(high, "HIGH");
    Bench {
        name: "Min-Max Pair",
        size: 5,
        circuit: c,
    }
}

/// Stimulus times used for the n-input bitonic sorters (distinct, scrambled
/// order, rank-gap scaled past n = 8 — identical to the old flat 10 ps ramp
/// for the paper's n ≤ 8 designs).
pub fn bitonic_times(n: usize) -> Vec<f64> {
    rlse_designs::bitonic_stimulus(n, 15.0)
}

/// An n-input bitonic sorter bench (the paper evaluates n = 4 and n = 8).
pub fn bench_bitonic(n: usize) -> Bench {
    let mut c = Circuit::new();
    rlse_designs::bitonic_sorter_with_inputs(&mut c, &bitonic_times(n)).expect("fresh wires");
    Bench {
        name: match n {
            4 => "Bitonic Sort 4",
            8 => "Bitonic Sort 8",
            16 => "Bitonic Sort 16",
            32 => "Bitonic Sort 32",
            64 => "Bitonic Sort 64",
            _ => "Bitonic Sort",
        },
        size: rlse_designs::bitonic_schedule(n).iter().map(Vec::len).sum(),
        circuit: c,
    }
}

/// A scaled bitonic workload: the `n`-input sorter driven by `waves`
/// successive scrambled pulse waves (see
/// [`rlse_designs::bitonic_wave_stimulus`]) — the single-simulation
/// workload the conservative-parallel event loop is benchmarked on.
pub fn bench_bitonic_waves(n: usize, waves: usize) -> Bench {
    let mut c = Circuit::new();
    rlse_designs::bitonic_sorter_with_waves(&mut c, n, waves).expect("fresh wires");
    Bench {
        name: match n {
            16 => "Bitonic Waves 16",
            32 => "Bitonic Waves 32",
            64 => "Bitonic Waves 64",
            _ => "Bitonic Waves",
        },
        size: rlse_designs::bitonic_schedule(n).iter().map(Vec::len).sum(),
        circuit: c,
    }
}

/// A scaled clockless-adder workload: a `bits`-wide dual-rail ripple adder
/// computing the worst-case full-length carry chain `(2^bits − 1) + 1`.
pub fn bench_wide_adder_xsfq(bits: usize) -> Bench {
    let mut c = Circuit::new();
    let a = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    rlse_designs::ripple_adder_xsfq_with_inputs(&mut c, bits, a, 1, false)
        .expect("fresh wires");
    Bench {
        name: match bits {
            16 => "xSFQ Adder 16",
            32 => "xSFQ Adder 32",
            64 => "xSFQ Adder 64",
            _ => "xSFQ Adder",
        },
        size: 14 * bits,
        circuit: c,
    }
}

/// The race tree of §5.2 with defaults picking label `a`.
pub fn bench_race_tree() -> Bench {
    let mut c = Circuit::new();
    rlse_designs::race_tree_with_inputs(
        &mut c,
        20.0,
        10.0,
        20.0,
        rlse_designs::Thresholds::default(),
    )
    .expect("fresh wires");
    Bench {
        name: "Race Tree",
        size: 16,
        circuit: c,
    }
}

/// The synchronous full adder computing 1 + 1 + 0.
pub fn bench_adder_sync() -> Bench {
    let mut c = Circuit::new();
    rlse_designs::adder::full_adder_sync_with_inputs(&mut c, true, true, false)
        .expect("fresh wires");
    Bench {
        name: "Adder (Sync)",
        size: 13,
        circuit: c,
    }
}

/// The dual-rail (xSFQ-style) full adder computing 1 + 0 + 1.
pub fn bench_adder_xsfq() -> Bench {
    let mut c = Circuit::new();
    rlse_designs::xsfq_adder::full_adder_xsfq_with_inputs(&mut c, true, false, true)
        .expect("fresh wires");
    Bench {
        name: "Adder (xSFQ)",
        size: 31,
        circuit: c,
    }
}

/// The six larger designs, in the paper's Table 3 row order.
pub fn all_design_benches() -> Vec<Bench> {
    vec![
        bench_min_max(),
        bench_race_tree(),
        bench_adder_sync(),
        bench_adder_xsfq(),
        bench_bitonic(4),
        bench_bitonic(8),
    ]
}

/// A stimulus that exercises a basic cell's firing behavior without timing
/// violations (used for the Table 3 cell rows).
pub fn cell_stimulus(name: &str) -> Vec<(&'static str, Vec<f64>)> {
    match name {
        "C" | "InvC" | "M" => vec![("a", vec![20.0]), ("b", vec![50.0])],
        "S" | "JTL" => vec![("a", vec![20.0])],
        "And" | "Or" | "Xnor" => {
            vec![("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![60.0])]
        }
        // Inverting gates fire when (some) inputs are absent.
        "Nand" | "Xor" => vec![("a", vec![20.0]), ("b", vec![]), ("clk", vec![60.0])],
        "Nor" => vec![("a", vec![]), ("b", vec![]), ("clk", vec![60.0])],
        "Inv" => vec![("a", vec![]), ("clk", vec![60.0])],
        "DRO" | "DRO C" => vec![("a", vec![20.0]), ("clk", vec![60.0])],
        "DRO SR" => vec![("set", vec![20.0]), ("rst", vec![]), ("clk", vec![60.0])],
        "2x2 Join" => vec![
            ("a_t", vec![20.0]),
            ("a_f", vec![]),
            ("b_t", vec![40.0]),
            ("b_f", vec![]),
        ],
        other => panic!("no stimulus defined for cell '{other}'"),
    }
}

/// Build a one-cell bench circuit for a Table 3 basic-cell row.
pub fn cell_bench(name: &'static str, spec: &Arc<Machine>) -> Bench {
    let stim = cell_stimulus(name);
    let mut c = Circuit::new();
    let inputs: Vec<Wire> = spec
        .inputs()
        .iter()
        .map(|input| {
            let times = stim
                .iter()
                .find(|(n, _)| n == input)
                .map(|(_, t)| t.clone())
                .unwrap_or_default();
            c.inp_at(&times, input)
        })
        .collect();
    let outs = c.add_machine(spec, &inputs).expect("fresh wires");
    for (k, w) in outs.iter().enumerate() {
        let oname = spec.outputs()[k].clone();
        c.inspect(*w, &oname);
    }
    Bench {
        name,
        size: spec.definition_size(),
        circuit: c,
    }
}

/// Run the pulse simulation of a bench; returns the events, the wall-clock
/// seconds, and the circuit back for further analysis.
pub fn simulate(bench: Bench) -> (Events, f64, Circuit) {
    let mut sim = Simulation::new(bench.circuit);
    let start = std::time::Instant::now();
    let events = sim.run().expect("bench simulates cleanly");
    let secs = start.elapsed().as_secs_f64();
    (events, secs, sim.into_circuit())
}

/// Expected output times per circuit-output wire, extracted from a
/// simulation run (the ground truth for Query 1), snapped to the 0.1 ps
/// TA grid.
pub fn expected_outputs(circ: &Circuit, events: &Events) -> Vec<(String, Vec<f64>)> {
    circ.output_wires()
        .into_iter()
        .map(|w| {
            let name = circ.wire_name(w).to_string();
            let times = events
                .times(&name)
                .iter()
                .map(|t| (t * 10.0).round() / 10.0)
                .collect();
            (name, times)
        })
        .collect()
}

/// Fixed-width table printing helper.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut w = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cell_benches_simulate_cleanly() {
        for (name, spec) in defs::all_cells() {
            let b = cell_bench(name, &spec);
            let (events, _, circ) = simulate(b);
            let expected = expected_outputs(&circ, &events);
            let total: usize = expected.iter().map(|(_, t)| t.len()).sum();
            assert!(total >= 1, "{name} produced no output");
        }
    }

    #[test]
    fn design_benches_simulate_cleanly() {
        for b in all_design_benches() {
            let name = b.name;
            let (events, _, _) = simulate(b);
            assert!(!events.is_empty(), "{name}");
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Name", "Value"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("Name"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn bitonic_times_are_distinct() {
        let ts = bitonic_times(8);
        let mut s = ts.clone();
        s.sort_by(f64::total_cmp);
        s.dedup();
        assert_eq!(s.len(), 8);
    }
}
