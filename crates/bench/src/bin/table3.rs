//! Regenerate the paper's **Table 3**: for the 16 basic cells and 6 larger
//! designs — PyLSE-level size/cells/states/transitions, the generated TA
//! network's automata/locations/transitions/channels, model-checking time
//! and states explored for Query 1 (output correctness) and Query 2 (error
//! states unreachable), and the comparison ratios.
//!
//! Designs whose exploration exceeds the state budget are reported `inf`,
//! matching the paper's `∞` rows (xSFQ adder, bitonic sorters).
//!
//! Run with `cargo run -p rlse-bench --bin table3 --release -- [budget]`.

use rlse_bench::{all_design_benches, cell_bench, expected_outputs, simulate, Bench, Table};
use rlse_cells::defs;
use rlse_ta::mc::{check, McOptions, McQuery};
use rlse_ta::translate::{translate_circuit_with, TranslateOptions};

struct Row {
    name: String,
    size: usize,
    cells: usize,
    states: usize,
    trans: usize,
    ta: usize,
    locs: usize,
    ta_trans: usize,
    chans: usize,
    time: String,
    explored: String,
}

fn run_bench(bench: Bench, budget: usize) -> Row {
    let name = bench.name.to_string();
    let size = bench.size;
    let (events, _, circ) = simulate(bench);
    let stats = circ.stats();
    let tr = translate_circuit_with(&circ, TranslateOptions::default())
        .expect("Table 3 designs contain no holes");
    let net_stats = tr.net.stats();
    let expected: Vec<(String, Vec<f64>)> = expected_outputs(&circ, &events);
    let expected_refs: Vec<(&str, Vec<f64>)> = expected
        .iter()
        .map(|(n, t)| (n.as_str(), t.clone()))
        .collect();
    let opts = McOptions {
        max_states: budget,
        max_seconds: 120.0,
        ..McOptions::default()
    };
    let q1 = check(&tr.net, &McQuery::query1(&tr, &expected_refs), opts);
    let q2 = check(&tr.net, &McQuery::query2(&tr), opts);
    if q1.holds == Some(false) {
        eprintln!("  WARNING {name}: Query 1 fails: {:?}", q1.violation);
    }
    if q2.holds == Some(false) {
        eprintln!("  WARNING {name}: Query 2 fails: {:?}", q2.violation);
    }
    let fmt_pair = |a: &str, b: &str| {
        if a == b {
            a.to_string()
        } else {
            format!("{a}/{b}")
        }
    };
    let time_of = |r: &rlse_ta::mc::McResult| match r.holds {
        None => "inf".to_string(),
        Some(_) if r.time_secs < 1.0 => "<1".to_string(),
        Some(_) => format!("{:.0}", r.time_secs),
    };
    let states_of = |r: &rlse_ta::mc::McResult| match r.holds {
        None => "N/A".to_string(),
        Some(_) => r.states().to_string(),
    };
    Row {
        name,
        size,
        cells: stats.cells,
        states: stats.states,
        trans: stats.transitions,
        ta: net_stats.automata,
        locs: net_stats.locations,
        ta_trans: net_stats.edges,
        chans: net_stats.channels,
        time: fmt_pair(&time_of(&q1), &time_of(&q2)),
        explored: fmt_pair(&states_of(&q1), &states_of(&q2)),
    }
}

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    eprintln!("state budget per query: {budget}");

    let mut rows = Vec::new();
    for (name, spec) in defs::all_cells() {
        rows.push(run_bench(cell_bench(name, &spec), budget));
        eprintln!("  done: {name}");
    }
    for bench in all_design_benches() {
        let name = bench.name;
        rows.push(run_bench(bench, budget));
        eprintln!("  done: {name}");
    }

    let (mut r1, mut r2, mut r3) = (Vec::new(), Vec::new(), Vec::new());
    for r in &rows {
        r1.push(r.ta as f64 / r.cells as f64);
        r2.push(r.locs as f64 / r.states as f64);
        r3.push(r.ta_trans as f64 / r.trans as f64);
    }
    let rendered = {
        let mut t2 = Table::new(&[
            "Name", "Size", "Cells", "States", "Tran.", "TA", "Locs.", "Tran.(U)", "Chan.",
            "Time (s)", "States expl.", "TA/Cells", "Locs./States", "Tr(U)/Tr(P)",
        ]);
        for (i, r) in rows.iter().enumerate() {
            t2.row(vec![
                r.name.clone(),
                r.size.to_string(),
                r.cells.to_string(),
                r.states.to_string(),
                r.trans.to_string(),
                r.ta.to_string(),
                r.locs.to_string(),
                r.ta_trans.to_string(),
                r.chans.to_string(),
                r.time.clone(),
                r.explored.clone(),
                format!("{:.2}", r1[i]),
                format!("{:.2}", r2[i]),
                format!("{:.2}", r3[i]),
            ]);
        }
        t2.render()
    };
    println!("\nTable 3: PyLSE-level vs UPPAAL-level sizes and verification\n");
    println!("{rendered}");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Averages: {:.2} TA per cell, {:.2} locations per machine state, {:.2} TA transitions per machine transition.",
        avg(&r1),
        avg(&r2),
        avg(&r3)
    );
    println!("(Paper: 3.02 TA/cell, 18.99 locations/state, 9.05 transitions ratio.)");
}
