//! Telemetry overhead guard: asserts that attaching a **disabled**
//! [`Telemetry`] handle to the simulator costs less than 2% on the reused
//! bitonic_8 workload, relative to no handle at all. The disabled handle is
//! the default for every engine, so this bounds what the telemetry layer
//! costs users who never opt in.
//!
//! Also exercises the enabled path end-to-end (counters, spans, the
//! span-fed latency histograms, Chrome trace) and writes the timeline JSON
//! next to the build artifacts so CI can upload it. The <2% budget is
//! measured with histograms compiled in — recording them rides on the
//! existing span path, so the disabled handle still costs one branch.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rlse-bench --bin telemetry_guard [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` runs a single short iteration of each mode (shape check only,
//! no timing assertion) so CI machines with noisy neighbours don't flake;
//! the full mode is for local/perf runs and enforces the <2% bound.

use rlse_bench::bench_bitonic;
use rlse_core::prelude::*;
use std::time::Instant;

/// Median ns of `reps` timed calls to `f` (after one warmup).
fn median_ns<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target".into());

    let reps = if smoke { 5 } else { 400 };
    let mut sim = Simulation::new(bench_bitonic(8).circuit);
    sim.run().expect("clean");

    // Mode 1: no handle attached (the seed-kernel baseline).
    let off_ns = median_ns(
        || {
            sim.run().expect("clean");
        },
        reps,
    );

    // Mode 2: disabled handle attached (the default for every engine).
    let disabled = Telemetry::disabled();
    sim.set_telemetry(&disabled);
    let disabled_ns = median_ns(
        || {
            sim.run().expect("clean");
        },
        reps,
    );

    // Mode 3: enabled handle — counters, cells, and spans all live.
    let enabled = Telemetry::new();
    sim.set_telemetry(&enabled);
    let enabled_ns = median_ns(
        || {
            sim.run().expect("clean");
        },
        reps,
    );

    let disabled_pct = 100.0 * (disabled_ns - off_ns) / off_ns;
    let enabled_pct = 100.0 * (enabled_ns - off_ns) / off_ns;
    println!("telemetry overhead on bitonic_8 (reused, {reps} reps):");
    println!("  off      {off_ns:9.0} ns/run");
    println!("  disabled {disabled_ns:9.0} ns/run  ({disabled_pct:+.2}%)");
    println!("  enabled  {enabled_ns:9.0} ns/run  ({enabled_pct:+.2}%)");

    // Shape checks run in both modes: the enabled run must have produced a
    // consistent report and a parseable-looking trace.
    let report = enabled.report();
    assert!(report.counter("sim.runs") >= reps as u64);
    assert_eq!(
        report.counter("sim.pulses_pushed"),
        report.counter("sim.pulses_popped"),
        "every pushed pulse is popped"
    );
    assert!(report.counter("sim.dispatches") > 0);
    assert!(report.gauge("sim.max_heap_depth") > 0);
    assert!(!report.cells.is_empty(), "per-cell tallies recorded");
    // Every surviving span feeds a duration histogram; the enabled run must
    // therefore expose a `sim.run` latency histogram covering its runs.
    let hist = enabled
        .histogram("sim.run")
        .expect("enabled run records a sim.run duration histogram");
    assert!(
        hist.count() >= reps as u64,
        "sim.run histogram covers the timed runs ({} < {reps})",
        hist.count()
    );
    assert!(hist.quantile(0.5) <= hist.max(), "quantiles are ordered");
    let disabled_hists = disabled.histograms();
    assert!(
        disabled_hists.is_empty(),
        "disabled handle records no histograms"
    );
    let trace = enabled.chrome_trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"sim.run\""));

    let timeline_path = format!("{out_dir}/telemetry_timeline.json");
    std::fs::write(&timeline_path, &trace).expect("write timeline");
    println!("timeline written to {timeline_path}");

    if smoke {
        println!("smoke mode: skipping the timing assertion");
        return;
    }
    assert!(
        disabled_pct < 2.0,
        "disabled-telemetry overhead {disabled_pct:.2}% exceeds the 2% budget \
         (off {off_ns:.0} ns vs disabled {disabled_ns:.0} ns)"
    );
    println!("PASS: disabled-telemetry overhead {disabled_pct:.2}% < 2%");
}
