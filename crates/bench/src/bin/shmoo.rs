//! Shmoo-map harness: 2-D pass/fail margin maps (jitter σ × stimulus
//! time-scale) for every Table-3 design, produced by the adaptive margin
//! mapper on top of the structure-of-arrays batch-sweep kernel.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rlse-bench --bin shmoo [--smoke] [design...]
//! ```
//!
//! With no design arguments all six Table-3 designs are mapped. `--smoke`
//! shrinks the grid and trial count to a few seconds of work for CI.
//!
//! Each map is printed in the deterministic text format of
//! [`ShmooMap::render`] (the same bytes the golden-map test pins), followed
//! by a one-line summary of the per-row margin boundaries and how many
//! cells the adaptive bisection actually measured.

use rlse_designs::{shmoo_design_names, shmoo_map, ShmooOptions};

fn main() {
    let mut smoke = false;
    let mut designs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            designs.push(arg);
        }
    }
    if designs.is_empty() {
        designs = shmoo_design_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let (sigmas, scales, opts) = if smoke {
        let sigmas: Vec<f64> = vec![0.0, 1.0, 2.0];
        let scales: Vec<f64> = (0..8).map(|i| 0.05 + 0.25 * i as f64).collect();
        let opts = ShmooOptions {
            trials: 16,
            ..ShmooOptions::default()
        };
        (sigmas, scales, opts)
    } else {
        let sigmas: Vec<f64> = (0..7).map(|i| 0.5 * i as f64).collect();
        let scales: Vec<f64> = (0..32).map(|i| 0.05 + 0.0625 * i as f64).collect();
        let opts = ShmooOptions {
            trials: 400,
            ..ShmooOptions::default()
        };
        (sigmas, scales, opts)
    };

    for design in &designs {
        let t0 = std::time::Instant::now();
        let map = shmoo_map(design, &sigmas, &scales, &opts);
        let elapsed = t0.elapsed().as_secs_f64();
        print!("{}", map.render());
        let margins: Vec<String> = sigmas
            .iter()
            .enumerate()
            .map(|(row, sigma)| match map.margin_scale(row) {
                Some(s) => format!("sigma {sigma} -> scale {s}"),
                None => format!("sigma {sigma} -> no margin"),
            })
            .collect();
        println!("margins: {}", margins.join(", "));
        println!(
            "evaluated {} of {} cells ({} sweeps of {} trials) in {elapsed:.2}s\n",
            map.evaluated,
            map.cells.len(),
            map.evaluated,
            opts.trials,
        );
    }
}
