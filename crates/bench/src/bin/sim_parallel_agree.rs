//! CI smoke check: the conservative-parallel event loop must be
//! bit-identical to the scalar kernel on a scaled design at several worker
//! counts.
//!
//! Runs the 32-input bitonic wave workload scalar once, then partitioned at
//! 2, 4, and 8 workers, and asserts every observed pulse time agrees
//! bitwise. Exits non-zero (panics) on any divergence.

use rlse_bench::bench_bitonic_waves;
use rlse_core::prelude::*;

fn main() {
    let mut sim = Simulation::new(bench_bitonic_waves(32, 8).circuit);
    let scalar = sim.run().expect("scalar run is clean");
    println!(
        "scalar: {} pulses across {} observed wires",
        scalar.pulse_count_all(),
        scalar.names().count()
    );
    for threads in [2usize, 4, 8] {
        let mut par = ParallelSim::new(bench_bitonic_waves(32, 8).circuit).threads(threads);
        let ev = par.run().expect("partitioned run is clean");
        assert!(
            par.last_run_parallel(),
            "{threads} workers: expected the partitioned path"
        );
        assert_eq!(ev, scalar, "{threads} workers: events diverged from scalar");
        for name in scalar.names() {
            let (a, b) = (scalar.times(name), ev.times(name));
            assert_eq!(a.len(), b.len(), "{threads} workers: pulse count on {name}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{threads} workers: pulse time on {name} not bitwise equal"
                );
            }
        }
        println!("{threads} workers: bit-identical");
    }
    println!("sim_parallel_agree: OK");
}
