//! Regenerate the paper's **Table 2**: simulation times and model sizes of
//! schematic-level (analog) vs pulse-level (RLSE) models for the C element,
//! inverted C element, min-max pair, and 8-input bitonic sorter.
//!
//! Run with `cargo run -p rlse-bench --bin table2 --release`.

use rlse_analog::synth::from_circuit;
use rlse_bench::{bench_bitonic, bench_c, bench_c_inv, bench_min_max, simulate, Table};
use std::time::Instant;

fn main() {
    let mut table = Table::new(&[
        "Name",
        "Schematic Lines",
        "Schematic Time (s)",
        "RLSE Size",
        "RLSE Time (s)",
        "Size ratio",
        "Speedup",
    ]);
    let mut size_ratios = Vec::new();
    let mut speedups = Vec::new();

    for (bench, t_end) in [
        (bench_c(), 450.0),
        (bench_c_inv(), 450.0),
        (bench_min_max(), 450.0),
        (bench_bitonic(8), 300.0),
    ] {
        let name = bench.name;
        let size = bench.size;

        // Schematic level: synthesize the same circuit into the analog
        // engine and run the transient analysis.
        let mut analog = from_circuit(&bench.circuit)
            .expect("Table 2 designs use only analog-modelled cells");
        let start = Instant::now();
        let aev = analog.run(t_end);
        let analog_secs = start.elapsed().as_secs_f64();

        // Pulse level.
        let (events, pulse_secs, _) = simulate(bench);
        let pulse_count = events.pulse_count();

        let size_ratio = aev.lines as f64 / size as f64;
        let speedup = analog_secs / pulse_secs.max(1e-9);
        size_ratios.push(size_ratio);
        speedups.push(speedup);
        table.row(vec![
            name.to_string(),
            aev.lines.to_string(),
            format!("{analog_secs:.3}"),
            size.to_string(),
            format!("{pulse_secs:.6}"),
            format!("{size_ratio:.1}x"),
            format!("{speedup:.0}x"),
        ]);
        eprintln!(
            "  {name}: analog {} JJs / {} steps, pulse level {} pulses",
            aev.jjs, aev.steps, pulse_count
        );
    }

    println!("\nTable 2: RLSE vs schematic-level simulation\n");
    println!("{}", table.render());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Average: schematic models are {:.1}x larger and {:.0}x slower to simulate.",
        avg(&size_ratios),
        avg(&speedups)
    );
    println!(
        "(Paper: 16.6x smaller RLSE models, 9879x faster; absolute numbers differ\n\
         because the schematic baseline here is rlse-analog, not Cadence.)"
    );
}
