//! Regenerate the paper's **Table 2**: simulation times and model sizes of
//! schematic-level (analog) vs pulse-level (RLSE) models for the C element,
//! inverted C element, min-max pair, and 8-input bitonic sorter.
//!
//! The schematic column is produced by the event-gated analog engine; the
//! naive per-step reference engine is timed alongside it so the gating
//! speedup is visible, and the gating telemetry (solves skipped, LU
//! refactorizations avoided, …) is printed per design.
//!
//! Run with `cargo run -p rlse-bench --bin table2 --release`.

use rlse_analog::synth::from_circuit;
use rlse_bench::{bench_bitonic, bench_c, bench_c_inv, bench_min_max, simulate, Table};
use rlse_core::telemetry::Telemetry;
use std::time::Instant;

fn main() {
    let mut table = Table::new(&[
        "Name",
        "Schematic Lines",
        "Schematic Time (s)",
        "Naive Time (s)",
        "RLSE Size",
        "RLSE Time (s)",
        "Size ratio",
        "Speedup",
    ]);
    let mut size_ratios = Vec::new();
    let mut speedups = Vec::new();

    for (bench, t_end) in [
        (bench_c(), 450.0),
        (bench_c_inv(), 450.0),
        (bench_min_max(), 450.0),
        (bench_bitonic(8), 300.0),
    ] {
        let name = bench.name;
        let size = bench.size;

        // Schematic level: synthesize the same circuit into the event-gated
        // analog engine and run the transient analysis.
        let tel = Telemetry::new();
        let mut analog = from_circuit(&bench.circuit)
            .expect("Table 2 designs use only analog-modelled cells")
            .telemetry(&tel);
        let start = Instant::now();
        let aev = analog.run(t_end);
        let analog_secs = start.elapsed().as_secs_f64();

        // The naive per-step engine: every cell Newton-solved at every
        // timestep, matrices re-stamped per iteration.
        let start = Instant::now();
        let nev = analog.run_reference(t_end);
        let naive_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            aev.pulses, nev.pulses,
            "{name}: gated engine diverged from the reference pulse times"
        );

        // Pulse level.
        let (events, pulse_secs, _) = simulate(bench);
        let pulse_count = events.pulse_count();

        let size_ratio = aev.lines as f64 / size as f64;
        let speedup = analog_secs / pulse_secs.max(1e-9);
        size_ratios.push(size_ratio);
        speedups.push(speedup);
        table.row(vec![
            name.to_string(),
            aev.lines.to_string(),
            format!("{analog_secs:.3}"),
            format!("{naive_secs:.3}"),
            size.to_string(),
            format!("{pulse_secs:.6}"),
            format!("{size_ratio:.1}x"),
            format!("{speedup:.0}x"),
        ]);
        let r = tel.report();
        eprintln!(
            "  {name}: analog {} JJs / {} steps, pulse level {} pulses",
            aev.jjs, aev.steps, pulse_count
        );
        eprintln!(
            "    gating: {} of {} cell-steps solved ({} skipped), {} newton iters, \
             {} refactorizations ({} avoided), peak {} active cells, naive/gated {:.1}x",
            r.counter("analog.solves"),
            r.counter("analog.cell_steps"),
            r.counter("analog.solves_skipped"),
            r.counter("analog.newton_iters"),
            r.counter("analog.refactorizations"),
            r.counter("analog.refactor_avoided"),
            r.gauge("analog.peak_active_cells"),
            naive_secs / analog_secs.max(1e-9),
        );
    }

    println!("\nTable 2: RLSE vs schematic-level simulation\n");
    println!("{}", table.render());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Average: schematic models are {:.1}x larger and {:.0}x slower to simulate.",
        avg(&size_ratios),
        avg(&speedups)
    );
    println!(
        "(Paper: 16.6x smaller RLSE models, 9879x faster; absolute numbers differ\n\
         because the schematic baseline here is rlse-analog, not Cadence. The\n\
         \"Naive\" column is the ungated per-step engine — the event-gated engine\n\
         in the \"Schematic\" column narrows, but does not close, the gap.)"
    );
}
