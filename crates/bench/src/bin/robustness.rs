//! Regenerate the paper's **§5.2 variability study**: add Gaussian jitter to
//! every propagation delay of the 8-input bitonic sorter and measure how
//! often the design still sorts correctly, sweeping the jitter σ.
//!
//! Failures are either detected timing violations (transition-time or
//! past-constraint errors during simulation) or erroneous outputs observed
//! afterwards — the two failure modes the paper describes. Trials run on
//! `rlse-core`'s deterministic parallel sweep engine: per-trial seeds are
//! derived from the master seed, so the table below is reproducible at any
//! thread count (`--threads N`, default all cores).
//!
//! The per-sigma tallies are read from the shared telemetry layer
//! ([`rlse_core::telemetry`]): each sweep runs with an enabled [`Telemetry`]
//! handle and the table rows come from its `sweep.*` counters, the same
//! numbers every other telemetry consumer sees.
//!
//! Usage: `robustness [trials] [--threads N] [--seed S] [--json]
//!                    [--timeline FILE]`
//!
//! * `--json` — additionally print one `TelemetryReport` JSON document per
//!   sigma (keyed by sigma) after the table;
//! * `--timeline FILE` — write a Chrome `trace_event` timeline of the last
//!   sweep (open in `about:tracing` or Perfetto).

use rlse_bench::{bench_bitonic, bitonic_times, Table};
use rlse_core::prelude::*;

/// Rank-order check from §5.2: one pulse per output, in time order.
fn sorted_ok(events: &Events) -> bool {
    let mut prev = f64::NEG_INFINITY;
    for k in 0..8 {
        let times = events.times(&format!("o{k}"));
        if times.len() != 1 || times[0] < prev {
            return false;
        }
        prev = times[0];
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trials: u64 = 100;
    let mut threads: usize = 0;
    let mut master_seed: u64 = 0;
    let mut json = false;
    let mut timeline: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--seed" => master_seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--json" => json = true,
            "--timeline" => timeline = it.next().cloned(),
            other => {
                if let Ok(n) = other.parse() {
                    trials = n;
                }
            }
        }
    }
    println!(
        "Section 5.2: bitonic sorter robustness under delay variability\n\
         ({trials} trials per sigma, master seed {master_seed}; inputs {:?})\n",
        bitonic_times(8)
    );
    let mut table = Table::new(&[
        "sigma (ps)",
        "ok",
        "wrong order",
        "timing violation",
        "success rate",
    ]);
    let mut reports: Vec<(f64, TelemetryReport)> = Vec::new();
    let mut last_tel: Option<Telemetry> = None;
    for sigma in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 3.0] {
        let tel = Telemetry::new();
        let sweep_report = Sweep::over(|| bench_bitonic(8).circuit)
            .variability(move || Variability::Gaussian { std: sigma })
            .check(sorted_ok)
            .trials(trials)
            .master_seed(master_seed)
            .threads(threads)
            .telemetry(&tel)
            .run();
        let report = tel.report();
        // The telemetry counters and the sweep's own report are two views of
        // the same fold; they must agree.
        assert_eq!(report.counter("sweep.trials"), sweep_report.trials);
        assert_eq!(report.counter("sweep.ok"), sweep_report.ok);
        let ok = report.counter("sweep.ok");
        let wrong = report.counter("sweep.check_failures");
        let violations =
            report.counter("sweep.timing_violations") + report.counter("sweep.other_errors");
        table.row(vec![
            format!("{sigma}"),
            ok.to_string(),
            wrong.to_string(),
            violations.to_string(),
            format!("{:.0}%", 100.0 * ok as f64 / trials.max(1) as f64),
        ]);
        reports.push((sigma, report));
        last_tel = Some(tel);
    }
    println!("{}", table.render());
    println!(
        "Small jitter is tolerated; as sigma approaches the cells' transition\n\
         times and the input spacing, violations and mis-ordered outputs appear,\n\
         signalling that the network needs redesign margin (paper §5.2)."
    );
    if json {
        println!("\n{{\"tool\": \"robustness\", \"reports\": {{");
        for (i, (sigma, report)) in reports.iter().enumerate() {
            let sep = if i + 1 == reports.len() { "" } else { "," };
            println!("\"{sigma}\": {}{sep}", report.to_json());
        }
        println!("}}}}");
    }
    if let Some(path) = timeline {
        let tel = last_tel.expect("at least one sweep ran");
        std::fs::write(&path, tel.chrome_trace_json()).expect("write timeline");
        println!("\nChrome trace of the last sweep written to {path} (open in about:tracing)");
    }
}
