//! Regenerate the paper's **§5.2 variability study**: add Gaussian jitter to
//! every propagation delay of the 8-input bitonic sorter and measure how
//! often the design still sorts correctly, sweeping the jitter σ.
//!
//! Failures are either detected timing violations (transition-time or
//! past-constraint errors during simulation) or erroneous outputs observed
//! afterwards — the two failure modes the paper describes. Trials run on
//! `rlse-core`'s deterministic parallel sweep engine: per-trial seeds are
//! derived from the master seed, so the table below is reproducible at any
//! thread count (`--threads N`, default all cores).
//!
//! Usage: `robustness [trials] [--threads N] [--seed S]`

use rlse_bench::{bench_bitonic, bitonic_times, Table};
use rlse_core::prelude::*;

/// Rank-order check from §5.2: one pulse per output, in time order.
fn sorted_ok(events: &Events) -> bool {
    let mut prev = f64::NEG_INFINITY;
    for k in 0..8 {
        let times = events.times(&format!("o{k}"));
        if times.len() != 1 || times[0] < prev {
            return false;
        }
        prev = times[0];
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trials: u64 = 100;
    let mut threads: usize = 0;
    let mut master_seed: u64 = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--seed" => master_seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            other => {
                if let Ok(n) = other.parse() {
                    trials = n;
                }
            }
        }
    }
    println!(
        "Section 5.2: bitonic sorter robustness under delay variability\n\
         ({trials} trials per sigma, master seed {master_seed}; inputs {:?})\n",
        bitonic_times(8)
    );
    let mut table = Table::new(&[
        "sigma (ps)",
        "ok",
        "wrong order",
        "timing violation",
        "success rate",
    ]);
    for sigma in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 3.0] {
        let report = Sweep::over(|| bench_bitonic(8).circuit)
            .variability(move || Variability::Gaussian { std: sigma })
            .check(sorted_ok)
            .trials(trials)
            .master_seed(master_seed)
            .threads(threads)
            .run();
        table.row(vec![
            format!("{sigma}"),
            report.ok.to_string(),
            report.check_failures.to_string(),
            (report.timing_violations + report.other_errors).to_string(),
            format!("{:.0}%", 100.0 * (1.0 - report.failure_rate())),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Small jitter is tolerated; as sigma approaches the cells' transition\n\
         times and the input spacing, violations and mis-ordered outputs appear,\n\
         signalling that the network needs redesign margin (paper §5.2)."
    );
}
