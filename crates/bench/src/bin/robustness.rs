//! Regenerate the paper's **§5.2 variability study**: add Gaussian jitter to
//! every propagation delay of the 8-input bitonic sorter and measure how
//! often the design still sorts correctly, sweeping the jitter σ.
//!
//! Failures are either detected timing violations (transition-time or
//! past-constraint errors during simulation) or erroneous outputs observed
//! afterwards — the two failure modes the paper describes.

use rlse_bench::{bench_bitonic, bitonic_times, Table};
use rlse_core::prelude::*;

fn run_once(sigma: f64, seed: u64) -> Result<bool, Error> {
    let bench = bench_bitonic(8);
    let mut sim = Simulation::new(bench.circuit)
        .variability(Variability::Gaussian { std: sigma })
        .seed(seed);
    let events = sim.run()?;
    // Rank-order check from §5.2: one pulse per output, in time order.
    let mut prev = f64::NEG_INFINITY;
    for k in 0..8 {
        let times = events.times(&format!("o{k}"));
        if times.len() != 1 || times[0] < prev {
            return Ok(false);
        }
        prev = times[0];
    }
    Ok(true)
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!(
        "Section 5.2: bitonic sorter robustness under delay variability\n\
         ({} trials per sigma; inputs {:?})\n",
        trials,
        bitonic_times(8)
    );
    let mut table = Table::new(&[
        "sigma (ps)",
        "ok",
        "wrong order",
        "timing violation",
        "success rate",
    ]);
    for sigma in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 3.0] {
        let (mut ok, mut wrong, mut violation) = (0u64, 0u64, 0u64);
        for seed in 0..trials {
            match run_once(sigma, seed) {
                Ok(true) => ok += 1,
                Ok(false) => wrong += 1,
                Err(_) => violation += 1,
            }
        }
        table.row(vec![
            format!("{sigma}"),
            ok.to_string(),
            wrong.to_string(),
            violation.to_string(),
            format!("{:.0}%", 100.0 * ok as f64 / trials as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Small jitter is tolerated; as sigma approaches the cells' transition\n\
         times and the input spacing, violations and mis-ordered outputs appear,\n\
         signalling that the network needs redesign margin (paper §5.2)."
    );
}
