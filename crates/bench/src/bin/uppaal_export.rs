//! Export UPPAAL artifacts (XML model + TCTL query file) for every basic
//! cell and every larger design, into `target/uppaal/`. Feed any pair to a
//! real UPPAAL installation: `verifyta <name>.xml <name>.q`.
//!
//! Run with `cargo run -p rlse-bench --bin uppaal_export --release`.

use rlse_bench::{all_design_benches, cell_bench, expected_outputs, simulate};
use rlse_cells::defs;
use rlse_ta::translate::{sanitize, translate_circuit};
use rlse_ta::uppaal::{query1_tctl, query2_tctl, to_uppaal_xml};
use std::path::Path;

fn export(dir: &Path, name: &str, bench: rlse_bench::Bench) -> std::io::Result<()> {
    let (events, _, circ) = simulate(bench);
    let expected = expected_outputs(&circ, &events);
    let refs: Vec<(&str, Vec<f64>)> = expected
        .iter()
        .map(|(n, t)| (n.as_str(), t.clone()))
        .collect();
    let tr = translate_circuit(&circ).expect("no holes in exported designs");
    let base = sanitize(&name.to_lowercase());
    std::fs::write(dir.join(format!("{base}.xml")), to_uppaal_xml(&tr.net))?;
    std::fs::write(
        dir.join(format!("{base}.q")),
        format!("{}\n{}\n", query1_tctl(&tr, &refs), query2_tctl(&tr)),
    )?;
    let stats = tr.net.stats();
    println!(
        "{name:<16} -> {base}.xml ({} automata, {} locations), {base}.q",
        stats.automata, stats.locations
    );
    Ok(())
}

fn main() -> std::io::Result<()> {
    let dir = Path::new("target/uppaal");
    std::fs::create_dir_all(dir)?;
    for (name, spec) in defs::all_cells() {
        export(dir, name, cell_bench(name, &spec))?;
    }
    for bench in all_design_benches() {
        let name = bench.name;
        export(dir, name, bench)?;
    }
    println!("\nwrote UPPAAL models and queries to {}", dir.display());
    Ok(())
}
