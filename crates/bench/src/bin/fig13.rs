//! Regenerate the paper's **Figure 13**: moving the first pulse on B to
//! 99 ps violates the AND cell's 2.8 ps setup time against the clock pulse
//! at 100 ps, and the simulator reports a past-constraint diagnostic.

use rlse_cells::and_s;
use rlse_core::prelude::*;

fn main() {
    let mut c = Circuit::new();
    let a = c.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
    let b = c.inp_at(&[99.0, 185.0, 225.0, 265.0], "B");
    let clk = c.inp(50.0, 50.0, 6, "CLK").expect("valid clock stimulus");
    let q = and_s(&mut c, a, b, clk).expect("fresh wires");
    c.inspect(q, "Q");
    let err = Simulation::new(c)
        .run()
        .expect_err("B at 99 must violate the setup constraint");
    println!("Figure 13: past-constraint (setup time) violation\n");
    println!("{err}");
    let msg = err.to_string();
    assert!(msg.contains("Prior input violation on FSM 'AND'"));
    assert!(msg.contains("It was last seen at 99"));
    println!("\n(diagnostic matches the paper's format)  ✓");
}
