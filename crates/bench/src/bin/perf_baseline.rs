//! Performance-baseline harness: measures median ns/event and heap
//! allocations per run for the simulation, sweep, and verification
//! workloads, and prints a `BENCH_sim.json` document to stdout.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rlse-bench --bin perf_baseline \
//!     [label] [--threads 2,4,8] [--design-scale 32] > BENCH_sim.json
//! ```
//!
//! The optional `label` (default `"current"`) tags the kernel under test so
//! before/after reports from different checkouts can sit side by side.
//! `--threads` sets the worker counts the `sim_parallel` section measures
//! (default `2,4,8`); `--design-scale` caps the largest scaled design it
//! runs (`16`, `32`, or `64`; default `32`).
//!
//! Two timing modes are reported per simulation workload:
//!
//! * `fresh` — build a new `Simulation` per iteration and run it, matching
//!   the `benches/simulation.rs` criterion setup (includes circuit
//!   compilation and first-use buffer growth);
//! * `reused` — one `Simulation` run repeatedly, the steady state seen by
//!   Monte-Carlo sweep workers (compiled tables and buffers reused).
//!
//! Event and state counts come from the shared telemetry layer
//! ([`rlse_core::telemetry`]): every workload is run once with an enabled
//! [`Telemetry`] handle and the counters (`sim.wire_pulses`, `sweep.trials`,
//! `mc.states`, ...) feed the JSON directly, so the numbers here are the
//! same ones every other consumer of the telemetry layer sees. A dedicated
//! section measures the overhead of the instrumentation itself (no handle
//! vs. disabled handle vs. enabled handle) on the bitonic_8 workload.
//!
//! Allocation counts come from a counting global allocator and cover the
//! whole `run()` call, including the per-run `Events` materialization at the
//! boundary; the interesting signal is the per-event marginal cost.

use rlse_analog::synth::from_circuit;
use rlse_bench::{
    bench_adder_sync, bench_bitonic, bench_bitonic_waves, bench_c, bench_c_inv, bench_min_max,
    bench_wide_adder_xsfq, expected_outputs, simulate, Bench,
};
use rlse_core::prelude::*;
use rlse_core::sweep::{BatchSweep, Sweep};
use rlse_designs::ripple_adder_with_inputs;
use rlse_ta::mc::{check, check_with_telemetry, McOptions, McQuery};
use rlse_ta::translate::translate_circuit;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A pass-through allocator that counts every allocation and reallocation.
struct CountingAlloc;

// SAFETY: delegates every operation verbatim to the system allocator; the
// counter is a relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Median of a sample of nanosecond timings.
fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Time `f` repeatedly until ~`budget_ms` of samples are collected (at least
/// `min_reps`), returning the median ns per call.
fn time_median<F: FnMut()>(mut f: F, budget_ms: f64, min_reps: usize) -> f64 {
    // Warmup.
    f();
    let probe = {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64() * 1e9
    };
    let reps = ((budget_ms * 1e6 / probe.max(1.0)) as usize).clamp(min_reps, 10_000);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64() * 1e9);
    }
    median_ns(&mut samples)
}

/// Like [`time_median`], but with a per-iteration `setup` whose cost is
/// excluded from the timing (criterion's `iter_batched` shape).
fn time_median_with_setup<T, S: FnMut() -> T, F: FnMut(T)>(
    mut setup: S,
    mut routine: F,
    budget_ms: f64,
    min_reps: usize,
) -> f64 {
    routine(setup());
    let probe = {
        let v = setup();
        let t0 = Instant::now();
        routine(v);
        t0.elapsed().as_secs_f64() * 1e9
    };
    let reps = ((budget_ms * 1e6 / probe.max(1.0)) as usize).clamp(min_reps, 10_000);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let v = setup();
        let t0 = Instant::now();
        routine(v);
        samples.push(t0.elapsed().as_secs_f64() * 1e9);
    }
    median_ns(&mut samples)
}

struct SimRow {
    name: &'static str,
    events: u64,
    dispatches: u64,
    transitions: u64,
    max_heap: u64,
    fresh_ns: f64,
    fresh_allocs: u64,
    reused_ns: f64,
    reused_allocs: u64,
}

fn measure_sim<F: Fn() -> Bench>(name: &'static str, build: F) -> SimRow {
    // One instrumented run: the event/dispatch/transition counts come from
    // the telemetry report and are identical on every run (no variability).
    let tel = Telemetry::new();
    let (events, dispatches, transitions, max_heap) = {
        let mut sim = Simulation::new(build().circuit);
        sim.set_telemetry(&tel);
        let ev = sim.run().expect("bench simulates cleanly");
        let report = tel.report();
        assert_eq!(
            report.counter("sim.wire_pulses"),
            ev.pulse_count_all() as u64,
            "{name}: telemetry wire-pulse counter must match the Events view"
        );
        (
            report.counter("sim.wire_pulses"),
            report.counter("sim.dispatches"),
            report.counter("sim.transitions"),
            report.gauge("sim.max_heap_depth"),
        )
    };
    // Fresh: new simulation per iteration (setup excluded from timing, as
    // in the criterion bench), so the number includes compilation and
    // first-use buffer growth but not circuit construction.
    let fresh_ns = time_median_with_setup(
        || Simulation::new(build().circuit),
        |mut sim| {
            sim.run().expect("clean");
        },
        150.0,
        10,
    );
    let fresh_allocs = {
        let mut sim = Simulation::new(build().circuit);
        let a0 = allocs();
        sim.run().expect("clean");
        allocs() - a0
    };
    // Reused: one simulation, repeated runs (the sweep steady state).
    let mut sim = Simulation::new(build().circuit);
    sim.run().expect("clean");
    let reused_ns = time_median(
        || {
            sim.run().expect("clean");
        },
        150.0,
        10,
    );
    let reused_allocs = {
        let a0 = allocs();
        sim.run().expect("clean");
        allocs() - a0
    };
    SimRow {
        name,
        events,
        dispatches,
        transitions,
        max_heap,
        fresh_ns,
        fresh_allocs,
        reused_ns,
        reused_allocs,
    }
}

/// One workload measured on both Monte-Carlo engines at high trial count:
/// the per-trial-worker scalar sweep (the "before") and the batch
/// kernel (the "after"), both on all cores. The two engines are proven
/// bit-identical by `tests/sweep_batch_differential.rs`; this row prices
/// the structure-of-arrays win (compile-once, observed-only recording, no
/// per-trial allocation).
struct BatchRow {
    name: &'static str,
    trials: u64,
    threads: usize,
    batch_width: usize,
    scalar_ns_per_trial: f64,
    batch_ns_per_trial: f64,
    blocks: u64,
    dispatches: u64,
    wire_pulses: u64,
}

impl BatchRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_trial / self.batch_ns_per_trial.max(1e-9)
    }
}

fn measure_batch_sweep<F>(name: &'static str, build: F, trials: u64) -> BatchRow
where
    F: Fn() -> Circuit + Send + Sync + Copy,
{
    const SIGMA: f64 = 0.2;
    const SEED: u64 = 42;
    const WIDTH: usize = 64;
    // One instrumented batch run supplies the per-block counters and the
    // outcome tallies both engines must agree on (checked cheaply here via
    // the ok count; the differential test suite proves full bit-identity).
    let tel = Telemetry::new();
    let batch_ok = BatchSweep::over(build)
        .variability(|| Variability::Gaussian { std: SIGMA })
        .trials(trials)
        .master_seed(SEED)
        .batch_width(WIDTH)
        .telemetry(&tel)
        .run()
        .ok;
    let report = tel.report();
    let scalar_ok = Sweep::over(build)
        .variability(|| Variability::Gaussian { std: SIGMA })
        .trials(trials)
        .master_seed(SEED)
        .run()
        .ok;
    assert_eq!(batch_ok, scalar_ok, "{name}: engines disagree on outcomes");
    let scalar_ns = time_median(
        || {
            Sweep::over(build)
                .variability(|| Variability::Gaussian { std: SIGMA })
                .trials(trials)
                .master_seed(SEED)
                .run();
        },
        600.0,
        3,
    );
    let batch_ns = time_median(
        || {
            BatchSweep::over(build)
                .variability(|| Variability::Gaussian { std: SIGMA })
                .trials(trials)
                .master_seed(SEED)
                .batch_width(WIDTH)
                .run();
        },
        600.0,
        3,
    );
    BatchRow {
        name,
        trials,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        batch_width: WIDTH,
        scalar_ns_per_trial: scalar_ns / trials as f64,
        batch_ns_per_trial: batch_ns / trials as f64,
        blocks: report.counter("sweep_batch.blocks"),
        dispatches: report.counter("sweep_batch.dispatches"),
        wire_pulses: report.counter("sweep_batch.wire_pulses"),
    }
}

/// One `serve_throughput` row: the generated mixed corpus served end to end
/// through the request scheduler at a fixed worker count, cache-cold (a
/// fresh server, so every distinct circuit compiles) and cache-warm (the
/// same server again, so every circuit hits). Every pass's response bytes
/// are asserted identical to the first — the worker count may only change
/// the wall clock, never the output.
struct ServeRow {
    workers: usize,
    engine_threads: usize,
    cold_rps: f64,
    warm_rps: f64,
    singleflight_waits: u64,
}

fn measure_serve_throughput(corpus: &str, workers_list: &[usize]) -> Vec<ServeRow> {
    use rlse_serve::{ServeOptions, Server};
    let n = corpus.lines().count() as f64;
    let mut reference: Option<Vec<u8>> = None;
    workers_list
        .iter()
        .map(|&workers| {
            let server = Server::new(ServeOptions {
                workers,
                ..ServeOptions::default()
            });
            let mut out = Vec::new();
            let t0 = Instant::now();
            server.serve_reader(corpus.as_bytes(), &mut out).expect("cold pass serves");
            let cold_s = t0.elapsed().as_secs_f64();
            match &reference {
                Some(r) => assert_eq!(
                    *r, out,
                    "workers={workers}: responses must be byte-identical to workers={}",
                    workers_list[0]
                ),
                None => reference = Some(out.clone()),
            }
            // Warm: the same server, so every circuit hits the compiled
            // cache. Median of three passes.
            let mut warm = Vec::with_capacity(3);
            for _ in 0..3 {
                let mut again = Vec::new();
                let t0 = Instant::now();
                server.serve_reader(corpus.as_bytes(), &mut again).expect("warm pass serves");
                warm.push(t0.elapsed().as_secs_f64());
                assert_eq!(out, again, "workers={workers}: warm pass changed bytes");
            }
            warm.sort_by(f64::total_cmp);
            ServeRow {
                workers,
                engine_threads: server.engine_threads(),
                cold_rps: n / cold_s.max(1e-9),
                warm_rps: n / warm[1].max(1e-9),
                singleflight_waits: server.cache().singleflight_waits(),
            }
        })
        .collect()
}

/// Telemetry overhead on the reused bitonic_8 workload: median run time
/// with no handle attached, with a disabled handle, and with an enabled
/// handle. The first two must be indistinguishable (the disabled handle is
/// a `None` inner — every call is a no-op); the third prices the enabled
/// instrumentation.
struct Overhead {
    off_ns: f64,
    disabled_ns: f64,
    enabled_ns: f64,
}

fn measure_overhead() -> Overhead {
    let bench = bench_bitonic(8);
    let mut sim = Simulation::new(bench.circuit);
    sim.run().expect("clean");
    let off_ns = time_median(
        || {
            sim.run().expect("clean");
        },
        300.0,
        20,
    );
    let disabled = Telemetry::disabled();
    sim.set_telemetry(&disabled);
    let disabled_ns = time_median(
        || {
            sim.run().expect("clean");
        },
        300.0,
        20,
    );
    let enabled = Telemetry::new();
    sim.set_telemetry(&enabled);
    let enabled_ns = time_median(
        || {
            sim.run().expect("clean");
        },
        300.0,
        20,
    );
    Overhead {
        off_ns,
        disabled_ns,
        enabled_ns,
    }
}

/// One Table-2 design measured on both analog engines: the naive per-step
/// reference (the "before" of the event-gating work) and the event-gated
/// engine (the "after"), plus the gating counters from one instrumented run.
struct AnalogRow {
    name: &'static str,
    jjs: usize,
    steps: usize,
    reference_median_ns: f64,
    gated_median_ns: f64,
    report: TelemetryReport,
}

fn measure_analog() -> Vec<AnalogRow> {
    [
        ("c_element", bench_c(), 450.0),
        ("inv_c", bench_c_inv(), 450.0),
        ("min_max", bench_min_max(), 450.0),
        ("bitonic_8", bench_bitonic(8), 300.0),
    ]
    .into_iter()
    .map(|(name, bench, t_end)| {
        let tel = Telemetry::new();
        let mut sim = from_circuit(&bench.circuit)
            .expect("Table 2 designs use only analog-modelled cells")
            .telemetry(&tel);
        let gated_ev = sim.run(t_end);
        let reference_ev = sim.run_reference(t_end);
        assert_eq!(
            gated_ev.pulses, reference_ev.pulses,
            "{name}: gated engine diverged from the reference pulse times"
        );
        let report = tel.report();
        // Time the engines without instrumentation attached.
        let disabled = Telemetry::disabled();
        sim.set_telemetry(&disabled);
        let gated_median_ns = time_median(|| drop(sim.run(t_end)), 200.0, 5);
        let reference_median_ns = time_median(|| drop(sim.run_reference(t_end)), 400.0, 3);
        AnalogRow {
            name,
            jjs: gated_ev.jjs,
            steps: gated_ev.steps,
            reference_median_ns,
            gated_median_ns,
            report,
        }
    })
    .collect()
}

/// One scaled design measured scalar vs partitioned at each worker count.
/// The partitioned runs are asserted bit-identical to the scalar events
/// before anything is timed.
struct ParRow {
    name: &'static str,
    events: u64,
    scalar_median_ns: f64,
    threads: Vec<ParThreadRow>,
}

struct ParThreadRow {
    threads: usize,
    median_ns: f64,
    parallel_path: bool,
    regions: u64,
    epochs: u64,
    cross_pulses: u64,
    horizon_stalls: u64,
}

fn measure_parallel<F: Fn() -> Bench>(build: F, threads_list: &[usize]) -> ParRow {
    let bench = build();
    let name = bench.name;
    let mut sim = Simulation::new(bench.circuit);
    let scalar_ev = sim.run().expect("clean");
    let events = scalar_ev.pulse_count_all() as u64;
    let scalar_median_ns = time_median(
        || {
            sim.run().expect("clean");
        },
        300.0,
        5,
    );
    let threads = threads_list
        .iter()
        .map(|&t| {
            // One instrumented run supplies the epoch/cross/stall counters
            // and the bit-identity check; the timed loop runs with the
            // telemetry handle disabled.
            let tel = Telemetry::new();
            let mut par = ParallelSim::new(build().circuit).threads(t).telemetry(&tel);
            let ev = par.run().expect("clean");
            assert_eq!(ev, scalar_ev, "{name}: partitioned run diverged at {t} threads");
            let parallel_path = par.last_run_parallel();
            let report = tel.report();
            let disabled = Telemetry::disabled();
            let mut par = par.telemetry(&disabled);
            let median_ns = time_median(
                || {
                    par.run().expect("clean");
                },
                300.0,
                5,
            );
            ParThreadRow {
                threads: t,
                median_ns,
                parallel_path,
                regions: report.gauge("par.regions"),
                epochs: report.counter("par.epochs"),
                cross_pulses: report.counter("par.cross_pulses"),
                horizon_stalls: report.counter("par.horizon_stalls"),
            }
        })
        .collect();
    ParRow {
        name,
        events,
        scalar_median_ns,
        threads,
    }
}

fn main() {
    let mut label = String::from("current");
    let mut threads_list: Vec<usize> = vec![2, 4, 8];
    let mut design_scale: usize = 32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads needs a comma-separated list");
                threads_list = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes positive integers"))
                    .collect();
                assert!(!threads_list.is_empty(), "--threads list is empty");
            }
            "--design-scale" => {
                let v = args.next().expect("--design-scale needs a value");
                design_scale = v.parse().expect("--design-scale takes 16, 32, or 64");
                assert!(
                    matches!(design_scale, 16 | 32 | 64),
                    "--design-scale takes 16, 32, or 64"
                );
            }
            flag if flag.starts_with("--") => panic!("unknown flag '{flag}'"),
            positional => label = positional.to_string(),
        }
    }

    let rows = [
        measure_sim("c_element", bench_c),
        measure_sim("inv_c", bench_c_inv),
        measure_sim("min_max", bench_min_max),
        measure_sim("bitonic_4", || bench_bitonic(4)),
        measure_sim("bitonic_8", || bench_bitonic(8)),
        measure_sim("bitonic_16", || bench_bitonic(16)),
        measure_sim("bitonic_32", || bench_bitonic(32)),
    ];

    // Sweep: the 1000-trial Gaussian study of the 4-bit ripple adder from
    // benches/sweep.rs, pinned to one worker so the number isolates kernel
    // cost rather than core count. The trial/outcome tallies come from one
    // instrumented sweep; the timed loop runs uninstrumented.
    const TRIALS: u64 = 1000;
    let build_adder = || {
        let mut c = Circuit::new();
        ripple_adder_with_inputs(&mut c, 4, 9, 6, false).expect("valid bench");
        c
    };
    let sweep_tel = Telemetry::new();
    {
        let report = Sweep::over(build_adder)
            .variability(|| Variability::Gaussian { std: 0.2 })
            .trials(TRIALS)
            .master_seed(42)
            .threads(1)
            .telemetry(&sweep_tel)
            .run();
        assert_eq!(report.trials, TRIALS);
    }
    let sweep_report = sweep_tel.report();
    assert_eq!(sweep_report.counter("sweep.trials"), TRIALS);
    let adder_events = {
        let mut sim = Simulation::new(build_adder());
        sim.run().expect("clean").pulse_count_all() as u64
    };
    let sweep_ns = time_median(
        || {
            let report = Sweep::over(build_adder)
                .variability(|| Variability::Gaussian { std: 0.2 })
                .trials(TRIALS)
                .master_seed(42)
                .threads(1)
                .run();
            assert_eq!(report.trials, TRIALS);
        },
        400.0,
        3,
    );
    let sweep_ns_per_trial = sweep_ns / TRIALS as f64;
    let sweep_ns_per_event = sweep_ns_per_trial / adder_events.max(1) as f64;

    // Batch sweep: per-trial-worker engine vs the batch kernel on
    // the same high-trial-count Monte-Carlo workloads (both on all cores).
    let build_adder8 = || {
        let mut c = Circuit::new();
        ripple_adder_with_inputs(&mut c, 8, 173, 99, false).expect("valid bench");
        c
    };
    let batch_rows = [
        measure_batch_sweep("ripple_adder_4bit", build_adder, 100_000),
        measure_batch_sweep("ripple_adder_8bit", build_adder8, 100_000),
        measure_batch_sweep("bitonic_8", || bench_bitonic(8).circuit, 100_000),
    ];

    // Conservative-parallel event loop: scalar vs partitioned medians on
    // the scaled beyond-paper designs, per worker count. Every partitioned
    // run is asserted bit-identical to the scalar events first.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut par_rows: Vec<ParRow> =
        vec![measure_parallel(|| bench_bitonic_waves(16, 6), &threads_list)];
    if design_scale >= 32 {
        par_rows.push(measure_parallel(|| bench_bitonic_waves(32, 8), &threads_list));
        par_rows.push(measure_parallel(|| bench_wide_adder_xsfq(32), &threads_list));
    }
    if design_scale >= 64 {
        par_rows.push(measure_parallel(|| bench_bitonic_waves(64, 8), &threads_list));
        par_rows.push(measure_parallel(|| bench_wide_adder_xsfq(64), &threads_list));
    }

    // Verification: PyLSE→TA translation of the 8-input bitonic sorter and
    // Query-2 model checking of the And cell (from benches/verification.rs).
    let bitonic8 = bench_bitonic(8).circuit;
    let translate_ns = time_median(|| drop(translate_circuit(&bitonic8).unwrap()), 150.0, 10);
    let and_spec = rlse_cells::defs::and_elem();
    let and_circ = rlse_bench::cell_bench("And", &and_spec).circuit;
    let tr = translate_circuit(&and_circ).unwrap();
    let mc_ns = time_median(
        || drop(check(&tr.net, &McQuery::query2(&tr), McOptions::default())),
        400.0,
        3,
    );

    // Design-level model checking: Table-3-style compositions, both queries.
    // Explored-state, peak-store, and subsumption counts come from the
    // telemetry flush of one instrumented Query-2 pass per design.
    struct McRow {
        name: &'static str,
        q1_ns: f64,
        q2_ns: f64,
        report: TelemetryReport,
    }
    let mc_rows: Vec<McRow> = [
        ("min_max", bench_min_max()),
        ("adder_sync", bench_adder_sync()),
        ("bitonic_4", bench_bitonic(4)),
    ]
    .into_iter()
    .map(|(name, bench)| {
        let (events, _, circ) = simulate(bench);
        let expected = expected_outputs(&circ, &events);
        let refs: Vec<(&str, Vec<f64>)> = expected
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        let tr = translate_circuit(&circ).unwrap();
        let tel = Telemetry::new();
        let q2 = check_with_telemetry(&tr.net, &McQuery::query2(&tr), McOptions::default(), Some(&tel));
        assert_eq!(q2.holds, Some(true), "{name} q2: {:?}", q2.violation);
        let report = tel.report();
        assert_eq!(report.counter("mc.states"), q2.states() as u64);
        let q2_ns = time_median(
            || drop(check(&tr.net, &McQuery::query2(&tr), McOptions::default())),
            400.0,
            3,
        );
        let q1_ns = time_median(
            || drop(check(&tr.net, &McQuery::query1(&tr, &refs), McOptions::default())),
            400.0,
            3,
        );
        McRow {
            name,
            q1_ns,
            q2_ns,
            report,
        }
    })
    .collect();

    let overhead = measure_overhead();
    let analog_rows = measure_analog();

    // Serving throughput: the generated 200-request mixed corpus through
    // the request scheduler at the canonical worker counts. On a 1-core
    // host the multi-worker rows measure scheduling overhead, not speedup;
    // host_cores is recorded so readers can judge.
    const SERVE_CORPUS: usize = 200;
    let serve_corpus = rlse_serve::generated_requests(SERVE_CORPUS);
    let serve_rows = measure_serve_throughput(&serve_corpus, &[1, 2, 4, 8]);

    // Hand-rolled JSON (the workspace deliberately has no serde dependency).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"kernel\": \"{label}\",\n"));
    out.push_str("  \"tool\": \"perf_baseline\",\n");
    out.push_str("  \"simulation\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let ev = r.events.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events_per_run\": {}, \
             \"dispatches_per_run\": {}, \"transitions_per_run\": {}, \
             \"max_heap_depth\": {}, \
             \"fresh_median_ns\": {:.0}, \"fresh_ns_per_event\": {:.1}, \
             \"fresh_allocs_per_run\": {}, \
             \"reused_median_ns\": {:.0}, \"reused_ns_per_event\": {:.1}, \
             \"reused_allocs_per_run\": {}}}{}\n",
            r.name,
            r.events,
            r.dispatches,
            r.transitions,
            r.max_heap,
            r.fresh_ns,
            r.fresh_ns / ev,
            r.fresh_allocs,
            r.reused_ns,
            r.reused_ns / ev,
            r.reused_allocs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // Analog engines: the naive per-step reference is the "before", the
    // event-gated engine the "after"; both produce identical pulse times
    // (asserted in `measure_analog`).
    out.push_str("  \"analog\": [\n");
    for (i, r) in analog_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"jjs\": {}, \"steps\": {}, \
             \"reference_median_ns\": {:.0}, \"gated_median_ns\": {:.0}, \
             \"speedup\": {:.2}, \"cell_steps\": {}, \"solves\": {}, \
             \"solves_skipped\": {}, \"newton_iters\": {}, \
             \"refactorizations\": {}, \"refactor_avoided\": {}, \
             \"pulses_routed\": {}, \"peak_active_cells\": {}}}{}\n",
            r.name,
            r.jjs,
            r.steps,
            r.reference_median_ns,
            r.gated_median_ns,
            r.reference_median_ns / r.gated_median_ns.max(1.0),
            r.report.counter("analog.cell_steps"),
            r.report.counter("analog.solves"),
            r.report.counter("analog.solves_skipped"),
            r.report.counter("analog.newton_iters"),
            r.report.counter("analog.refactorizations"),
            r.report.counter("analog.refactor_avoided"),
            r.report.counter("analog.pulses_routed"),
            r.report.gauge("analog.peak_active_cells"),
            if i + 1 == analog_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sweep\": {{\"name\": \"ripple_adder_4bit_gaussian\", \"trials\": {}, \
         \"threads\": 1, \"ok_trials\": {}, \"check_failures\": {}, \
         \"timing_violations\": {}, \"events_per_trial\": {adder_events}, \
         \"median_ns_per_trial\": {sweep_ns_per_trial:.0}, \
         \"ns_per_event\": {sweep_ns_per_event:.1}}},\n",
        sweep_report.counter("sweep.trials"),
        sweep_report.counter("sweep.ok"),
        sweep_report.counter("sweep.check_failures"),
        sweep_report.counter("sweep.timing_violations"),
    ));
    out.push_str("  \"sweep_batch\": [\n");
    for (i, r) in batch_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"trials\": {}, \"threads\": {}, \
             \"batch_width\": {}, \"scalar_ns_per_trial\": {:.1}, \
             \"batch_ns_per_trial\": {:.1}, \"speedup\": {:.2}, \
             \"blocks\": {}, \"dispatches\": {}, \"wire_pulses\": {}}}{}\n",
            r.name,
            r.trials,
            r.threads,
            r.batch_width,
            r.scalar_ns_per_trial,
            r.batch_ns_per_trial,
            r.speedup(),
            r.blocks,
            r.dispatches,
            r.wire_pulses,
            if i + 1 == batch_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // Parallel event loop: scalar vs partitioned single-simulation medians.
    // Speedups are only meaningful when host_cores covers the worker count;
    // the scalar rows are retained so any host can recompute them.
    out.push_str(&format!(
        "  \"sim_parallel\": {{\"host_cores\": {host_cores}, \
         \"design_scale\": {design_scale}, \"designs\": [\n"
    ));
    for (i, r) in par_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events_per_run\": {}, \
             \"scalar_median_ns\": {:.0}, \"threads\": [\n",
            r.name, r.events, r.scalar_median_ns
        ));
        for (j, t) in r.threads.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"threads\": {}, \"median_ns\": {:.0}, \"speedup\": {:.2}, \
                 \"parallel_path\": {}, \"regions\": {}, \"epochs\": {}, \
                 \"cross_pulses\": {}, \"horizon_stalls\": {}}}{}\n",
                t.threads,
                t.median_ns,
                r.scalar_median_ns / t.median_ns.max(1e-9),
                t.parallel_path,
                t.regions,
                t.epochs,
                t.cross_pulses,
                t.horizon_stalls,
                if j + 1 == r.threads.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == par_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]},\n");
    out.push_str(&format!(
        "  \"verification\": {{\"translate_bitonic_8_median_ns\": {translate_ns:.0}, \
         \"model_check_query2_and_median_ns\": {mc_ns:.0},\n"
    ));
    out.push_str("  \"model_check_designs\": [\n");
    for (i, r) in mc_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"query1_median_ns\": {:.0}, \
             \"query2_median_ns\": {:.0}, \"states\": {}, \"peak_store\": {}, \
             \"candidates\": {}, \"subsumed\": {}, \"evicted\": {}}}{}\n",
            r.name,
            r.q1_ns,
            r.q2_ns,
            r.report.counter("mc.states"),
            r.report.gauge("mc.peak_store"),
            r.report.counter("mc.candidates"),
            r.report.counter("mc.subsumed"),
            r.report.counter("mc.evicted"),
            if i + 1 == mc_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]},\n");
    out.push_str(&format!(
        "  \"serve_throughput\": {{\"corpus_requests\": {SERVE_CORPUS}, \
         \"host_cores\": {host_cores}, \"rows\": [\n"
    ));
    for (i, r) in serve_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"engine_threads\": {}, \
             \"cold_requests_per_sec\": {:.1}, \"warm_requests_per_sec\": {:.1}, \
             \"singleflight_waits\": {}}}{}\n",
            r.workers,
            r.engine_threads,
            r.cold_rps,
            r.warm_rps,
            r.singleflight_waits,
            if i + 1 == serve_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]},\n");
    let disabled_pct = 100.0 * (overhead.disabled_ns - overhead.off_ns) / overhead.off_ns;
    let enabled_pct = 100.0 * (overhead.enabled_ns - overhead.off_ns) / overhead.off_ns;
    out.push_str(&format!(
        "  \"telemetry_overhead\": {{\"workload\": \"bitonic_8_reused\", \
         \"off_median_ns\": {:.0}, \"disabled_median_ns\": {:.0}, \
         \"enabled_median_ns\": {:.0}, \"disabled_overhead_pct\": {:.2}, \
         \"enabled_overhead_pct\": {:.2}}}\n",
        overhead.off_ns, overhead.disabled_ns, overhead.enabled_ns, disabled_pct, enabled_pct,
    ));
    out.push_str("}\n");
    print!("{out}");
}
