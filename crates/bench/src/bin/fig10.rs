//! Regenerate the paper's **Figure 10**: simulating the behavioral memory
//! hole (16 addresses × 2 bits) against a scripted schedule of writes and
//! reads, plotting the resulting waveform.

use rlse_core::plot::render_default;
use rlse_core::prelude::*;
use rlse_designs::memory::{decode_reads, memory_bench, MemOp};

fn main() {
    let ops = [
        MemOp::Write { addr: 5, data: 3 },
        MemOp::Write { addr: 9, data: 1 },
        MemOp::Read { addr: 5 },
        MemOp::Read { addr: 9 },
        MemOp::Write { addr: 5, data: 2 },
        MemOp::Read { addr: 5 },
        MemOp::Read { addr: 0 },
    ];
    let mut c = Circuit::new();
    memory_bench(&mut c, &ops).expect("fresh wires");
    let mut sim = Simulation::new(c);
    let events = sim.run().expect("memory bench simulates cleanly");
    println!("Figure 10: simulating the memory Functional (hole) element\n");
    println!("{}", render_default(&events));
    let vals = decode_reads(&events, ops.len());
    println!("per-period read values: {vals:?}");
    assert_eq!(vals, vec![3, 1, 3, 1, 2, 2, 0]);
    println!("write/read round-trips verified  ✓");
}
