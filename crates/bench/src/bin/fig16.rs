//! Regenerate the paper's **Figure 16**: pulse-level waveforms of the C
//! element, min-max pair, and 8-input bitonic sorter (panels a–c), and —
//! with `--analog` — the corresponding schematic-level simulations
//! (panels d–f) from the rlse-analog baseline.

use rlse_analog::synth::from_circuit;
use rlse_bench::{bench_bitonic, bench_c, bench_min_max, simulate, Bench};
use rlse_core::plot::render_default;

fn pulse_panel(bench: Bench, label: &str) {
    let name = bench.name;
    let (events, secs, _) = simulate(bench);
    println!("--- Figure 16{label}: RLSE simulation ({name}) [{secs:.6}s] ---\n");
    println!("{}", render_default(&events));
}

fn analog_panel(bench: Bench, label: &str, t_end: f64) {
    let name = bench.name;
    let mut sim = from_circuit(&bench.circuit).expect("analog-modelled design");
    let start = std::time::Instant::now();
    let ev = sim.run(t_end);
    let secs = start.elapsed().as_secs_f64();
    println!("--- Figure 16{label}: circuit simulation ({name}) [{secs:.3}s, {} JJs] ---\n", ev.jjs);
    for (wire, times) in &ev.pulses {
        let rounded: Vec<f64> = times.iter().map(|t| (t * 10.0).round() / 10.0).collect();
        println!("  {wire}: {rounded:?}");
    }
    println!();
}

fn main() {
    let analog = std::env::args().any(|a| a == "--analog");
    pulse_panel(bench_c(), "a");
    pulse_panel(bench_min_max(), "b");
    pulse_panel(bench_bitonic(8), "c");
    if analog {
        analog_panel(bench_c(), "d", 450.0);
        analog_panel(bench_min_max(), "e", 450.0);
        analog_panel(bench_bitonic(8), "f", 300.0);
        println!(
            "Note: as in the paper, the circuit-level propagation delays differ\n\
             from the purely compositional pulse-level delays (loading effects);\n\
             the pulse *order* on every output is what must (and does) agree."
        );
    } else {
        println!("(run with --analog for the circuit-simulation panels d–f)");
    }
}
