//! Regenerate the paper's **Figure 12**: simulation of the Synchronous And
//! Element, with pulses on Q at exactly 209.2, 259.2, and 309.2 ps, plus the
//! waveform plot of Fig. 12b.

use rlse_bench::bench_and;
use rlse_core::plot::{render, PlotOptions};
use rlse_core::sim::Simulation;

fn main() {
    let bench = bench_and();
    let mut sim = Simulation::new(bench.circuit);
    let events = sim.run().expect("Figure 12 inputs are violation-free");
    println!("Figure 12: Synchronous And Element simulation\n");
    println!(
        "{}",
        render(
            &events,
            PlotOptions {
                width: 100,
                range: Some((0.0, 330.0)),
            }
        )
    );
    let q = events.times("Q");
    println!("events['Q'] = {q:?}");
    assert_eq!(q, &[209.2, 259.2, 309.2], "matches the paper's assertion");
    println!("assert events['Q'] == [209.2, 259.2, 309.2]  ✓");
}
