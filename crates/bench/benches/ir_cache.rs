//! Criterion benches for the netlist-IR service path: what one IR-bearing
//! request costs cold (parse + rebuild + compile) versus warm (parse +
//! rebuild + cache hit), and the IR plumbing itself (canonical hashing,
//! JSON round-trips). The cold/warm gap is the whole point of the
//! `CompiledCache` — repeated requests skip compilation entirely.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rlse_core::ir::{CompiledCache, Ir};
use rlse_core::sim::Simulation;
use rlse_designs::design_ir;

fn cache_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ir_cache");
    for name in ["min_max", "bitonic_8"] {
        let json = design_ir(name, 1.0).to_json();
        group.bench_function(format!("{name}_cold"), |b| {
            b.iter_batched(
                CompiledCache::new,
                |cache| {
                    let ir = Ir::from_json(&json).unwrap();
                    cache.get_or_compile(&ir).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("{name}_warm"), |b| {
            let cache = CompiledCache::new();
            cache
                .get_or_compile(&Ir::from_json(&json).unwrap())
                .unwrap();
            b.iter(|| {
                let ir = Ir::from_json(&json).unwrap();
                let outcome = cache.get_or_compile(&ir).unwrap();
                assert!(outcome.hit);
                outcome
            })
        });
        group.bench_function(format!("{name}_warm_simulate"), |b| {
            // The full warm request: cache lookup plus one simulation over
            // the shared compiled tables.
            let cache = CompiledCache::new();
            cache
                .get_or_compile(&Ir::from_json(&json).unwrap())
                .unwrap();
            b.iter(|| {
                let ir = Ir::from_json(&json).unwrap();
                let outcome = cache.get_or_compile(&ir).unwrap();
                Simulation::with_compiled(outcome.circuit, outcome.compiled)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn ir_plumbing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ir_plumbing");
    let ir = design_ir("bitonic_8", 1.0);
    let json = ir.to_json();
    group.bench_function("bitonic_8_hash", |b| b.iter(|| ir.content_hash()));
    group.bench_function("bitonic_8_to_json", |b| b.iter(|| ir.to_json()));
    group.bench_function("bitonic_8_from_json", |b| {
        b.iter(|| Ir::from_json(&json).unwrap())
    });
    group.finish();
}

criterion_group!(benches, cache_paths, ir_plumbing);
criterion_main!(benches);
