//! Criterion benches for the Table 2 comparison and the pulse simulator's
//! scaling behavior: pulse-level simulation of each Table 2 design, the
//! analog (schematic-level) counterparts, and a bitonic-size sweep showing
//! the per-event cost of the discrete-event simulator.
//!
//! Two pulse-simulation groups are measured:
//!
//! * `pulse_sim` — a fresh `Simulation` per iteration (setup excluded), so
//!   each run pays one-time circuit compilation and buffer growth;
//! * `pulse_sim_steady` — one `Simulation` re-run per iteration, the steady
//!   state Monte-Carlo sweep workers live in: compiled dispatch tables and
//!   scratch buffers are reused, isolating the kernel's per-event cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rlse_analog::synth::from_circuit;
use rlse_bench::{bench_bitonic, bench_c, bench_c_inv, bench_min_max};
use rlse_core::sim::Simulation;

fn pulse_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("pulse_sim");
    for (name, build) in [
        ("c_element", bench_c as fn() -> rlse_bench::Bench),
        ("inv_c", bench_c_inv),
        ("min_max", bench_min_max),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Simulation::new(build().circuit),
                |mut sim| sim.run().unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    for n in [4usize, 8, 16, 32] {
        group.bench_function(format!("bitonic_{n}"), |b| {
            b.iter_batched(
                || Simulation::new(bench_bitonic(n).circuit),
                |mut sim| sim.run().unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn pulse_level_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("pulse_sim_steady");
    for (name, build) in [
        ("c_element", bench_c as fn() -> rlse_bench::Bench),
        ("inv_c", bench_c_inv),
        ("min_max", bench_min_max),
    ] {
        let mut sim = Simulation::new(build().circuit);
        sim.run().unwrap();
        group.bench_function(name, |b| b.iter(|| sim.run().unwrap()));
    }
    for n in [4usize, 8, 16, 32] {
        let mut sim = Simulation::new(bench_bitonic(n).circuit);
        sim.run().unwrap();
        group.bench_function(format!("bitonic_{n}"), |b| b.iter(|| sim.run().unwrap()));
    }
    group.finish();
}

fn analog_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("analog_sim");
    group.sample_size(10);
    group.bench_function("c_element", |b| {
        b.iter_batched(
            || from_circuit(&bench_c().circuit).unwrap(),
            |mut sim| sim.run(450.0),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("min_max", |b| {
        b.iter_batched(
            || from_circuit(&bench_min_max().circuit).unwrap(),
            |mut sim| sim.run(450.0),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, pulse_level, pulse_level_steady, analog_level);
criterion_main!(benches);
