//! Criterion benches for the formal-verification pipeline: PyLSE→TA
//! translation, UPPAAL XML generation, DBM operations (with the
//! full-vs-incremental canonicalization ablation from DESIGN.md §5), and
//! model checking of basic cells.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rlse_bench::{
    bench_adder_sync, bench_bitonic, bench_min_max, cell_bench, expected_outputs, simulate,
};
use rlse_cells::defs;
use rlse_ta::dbm::{Dbm, Rel};
use rlse_ta::mc::{check, McOptions, McQuery};
use rlse_ta::translate::{translate_circuit, translate_machine};
use rlse_ta::uppaal::to_uppaal_xml;

fn translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate");
    group.bench_function("and_cell", |b| {
        b.iter(|| {
            translate_machine(
                &defs::and_elem(),
                &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![60.0])],
                10,
            )
            .unwrap()
        })
    });
    group.bench_function("bitonic_8", |b| {
        let circ = bench_bitonic(8).circuit;
        b.iter(|| translate_circuit(&circ).unwrap())
    });
    group.bench_function("uppaal_xml_min_max", |b| {
        let tr = translate_circuit(&bench_min_max().circuit).unwrap();
        b.iter(|| to_uppaal_xml(&tr.net))
    });
    group.finish();
}

fn dbm_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbm");
    let n = 32;
    let base = {
        let mut z = Dbm::zero(n);
        z.up();
        for i in 1..=n {
            z.constrain_clock(i, Rel::Le, (i * 7 % 50) as i32 + 50);
        }
        z
    };
    // Ablation: incremental tightening (constrain) vs full Floyd–Warshall.
    group.bench_function("incremental_constrain", |b| {
        b.iter_batched(
            || base.clone(),
            |mut z| {
                for i in 1..=n {
                    z.constrain_clock(i, Rel::Ge, 10);
                }
                z
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("full_canonicalize", |b| {
        b.iter_batched(
            || base.clone(),
            |mut z| {
                z.canonicalize();
                z
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("inclusion", |b| {
        let other = base.clone();
        b.iter(|| base.includes(&other))
    });
    group.finish();
}

fn model_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check");
    group.sample_size(10);
    for name in ["JTL", "And", "Xor"] {
        let spec = defs::all_cells()
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1;
        let table_name: &'static str = match name {
            "JTL" => "JTL",
            "And" => "And",
            _ => "Xor",
        };
        let (events, _, circ) = simulate(cell_bench(table_name, &spec));
        let expected = expected_outputs(&circ, &events);
        let tr = translate_circuit(&circ).unwrap();
        group.bench_function(format!("query2_{name}"), |b| {
            b.iter(|| check(&tr.net, &McQuery::query2(&tr), McOptions::default()))
        });
        let refs: Vec<(&str, Vec<f64>)> =
            expected.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
        group.bench_function(format!("query1_{name}"), |b| {
            b.iter(|| check(&tr.net, &McQuery::query1(&tr, &refs), McOptions::default()))
        });
    }
    group.finish();
}

fn model_checking_designs(c: &mut Criterion) {
    // Table-3-style composed designs: the workload the sharded zone-graph
    // engine and the active-clock reduction were built for.
    let mut group = c.benchmark_group("model_check_design");
    group.sample_size(10);
    for bench in [bench_min_max(), bench_adder_sync()] {
        let name = bench.name.replace(' ', "_").to_lowercase();
        let (events, _, circ) = simulate(bench);
        let expected = expected_outputs(&circ, &events);
        let tr = translate_circuit(&circ).unwrap();
        group.bench_function(format!("query2_{name}"), |b| {
            b.iter(|| check(&tr.net, &McQuery::query2(&tr), McOptions::default()))
        });
        let refs: Vec<(&str, Vec<f64>)> =
            expected.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
        group.bench_function(format!("query1_{name}"), |b| {
            b.iter(|| check(&tr.net, &McQuery::query1(&tr, &refs), McOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, translation, dbm_ops, model_checking, model_checking_designs);
criterion_main!(benches);
