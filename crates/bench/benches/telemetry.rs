//! Criterion benches for the telemetry layer: the same steady-state
//! bitonic_8 run with no handle, a disabled handle, and an enabled handle.
//! The first two bars should be indistinguishable — the disabled handle is
//! a `None` inner and every hot-path call short-circuits on one branch; the
//! third shows what the enabled instrumentation (counters, per-cell tallies,
//! spans) costs.

use criterion::{criterion_group, criterion_main, Criterion};
use rlse_bench::bench_bitonic;
use rlse_core::prelude::*;

fn telemetry_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_bitonic_8");

    let mut sim = Simulation::new(bench_bitonic(8).circuit);
    sim.run().unwrap();
    group.bench_function("off", |b| b.iter(|| sim.run().unwrap()));

    let disabled = Telemetry::disabled();
    sim.set_telemetry(&disabled);
    group.bench_function("disabled", |b| b.iter(|| sim.run().unwrap()));

    let enabled = Telemetry::new();
    sim.set_telemetry(&enabled);
    group.bench_function("enabled", |b| b.iter(|| sim.run().unwrap()));

    group.finish();
}

criterion_group!(benches, telemetry_modes);
criterion_main!(benches);
