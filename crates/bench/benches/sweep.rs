//! Criterion bench for the Monte-Carlo sweep engine: the same 1000-trial
//! Gaussian-jitter study of the 4-bit ripple adder run three ways —
//!
//! * `serial_rebuild` — the pre-sweep baseline: rebuild the circuit and a
//!   fresh `Simulation` for every trial, single-threaded (what the old
//!   `robustness` binary did);
//! * `sweep_1_thread` — the sweep engine pinned to one worker, isolating
//!   the `Simulation::reset()` reuse win (no rebuild, reused heap/buffers);
//! * `sweep_all_threads` — the sweep engine on all cores, adding the
//!   parallel fan-out win.
//!
//! A final smoke check prints the measured speedup of the parallel sweep
//! over the serial-rebuild baseline; the acceptance bar is ≥ 2× on 4+
//! cores.

use criterion::{criterion_group, criterion_main, Criterion};
use rlse_core::prelude::*;
use rlse_core::sweep::{trial_seed, BatchSweep};
use rlse_designs::ripple_adder_with_inputs;
use std::time::Instant;

const TRIALS: u64 = 1000;
const SIGMA: f64 = 0.2;
const SEED: u64 = 42;

fn build() -> Circuit {
    let mut c = Circuit::new();
    ripple_adder_with_inputs(&mut c, 4, 9, 6, false).expect("valid bench");
    c
}

/// The pre-sweep baseline: per-trial rebuild, serial.
fn serial_rebuild(trials: u64) -> u64 {
    let mut ok = 0;
    for trial in 0..trials {
        let mut sim = Simulation::new(build())
            .variability(Variability::Gaussian { std: SIGMA })
            .seed(trial_seed(SEED, trial));
        if sim.run().is_ok() {
            ok += 1;
        }
    }
    ok
}

fn run_sweep(trials: u64, threads: usize) -> SweepReport {
    Sweep::over(build)
        .variability(|| Variability::Gaussian { std: SIGMA })
        .trials(trials)
        .master_seed(SEED)
        .threads(threads)
        .run()
}

fn run_batch(trials: u64, threads: usize, width: usize) -> SweepReport {
    BatchSweep::over(build)
        .variability(|| Variability::Gaussian { std: SIGMA })
        .trials(trials)
        .master_seed(SEED)
        .threads(threads)
        .batch_width(width)
        .run()
}

fn monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_ripple_adder_1000");
    group.sample_size(10);
    group.bench_function("serial_rebuild", |b| b.iter(|| serial_rebuild(TRIALS)));
    group.bench_function("sweep_1_thread", |b| b.iter(|| run_sweep(TRIALS, 1)));
    group.bench_function("sweep_all_threads", |b| b.iter(|| run_sweep(TRIALS, 0)));
    group.bench_function("batch_1_thread_w64", |b| b.iter(|| run_batch(TRIALS, 1, 64)));
    group.bench_function("batch_all_threads_w64", |b| {
        b.iter(|| run_batch(TRIALS, 0, 64))
    });
    group.finish();
}

/// Batch width scan at one thread: how wide the lane blocks should be
/// before cache pressure eats the amortization win.
fn batch_width_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_width_ripple_adder_1000");
    group.sample_size(10);
    for width in [1usize, 8, 16, 64, 256] {
        group.bench_function(format!("w{width}"), |b| {
            b.iter(|| run_batch(TRIALS, 1, width))
        });
    }
    group.finish();
}

fn speedup_summary(_c: &mut Criterion) {
    let t0 = Instant::now();
    let baseline_ok = serial_rebuild(TRIALS);
    let baseline = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let report = run_sweep(TRIALS, 0);
    let parallel = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let batch = run_batch(TRIALS, 0, 64);
    let batch_s = t2.elapsed().as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "speedup summary: serial rebuild {baseline:.3}s vs parallel sweep {parallel:.3}s \
         vs batch kernel {batch_s:.3}s => sweep {:.2}x, batch {:.2}x on {cores} cores \
         (ok: baseline {baseline_ok}, sweep {}, batch {})",
        baseline / parallel.max(1e-12),
        baseline / batch_s.max(1e-12),
        report.ok,
        batch.ok,
    );
    assert_eq!(
        baseline_ok, report.ok,
        "sweep and baseline must agree on trial outcomes"
    );
    assert_eq!(
        report, batch,
        "batch kernel and per-trial sweep must produce identical reports"
    );
}

criterion_group!(benches, monte_carlo, batch_width_scan, speedup_summary);
criterion_main!(benches);
