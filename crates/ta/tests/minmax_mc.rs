//! Model-check the min-max pair, reproducing the paper's §5.3 example:
//! pulses on A at 115/215/315 and B at 64/184/304 with a network delay of
//! 25 ps give LOW pulses at 89.0/209.0/329.0 (global 890/2090/3290) and
//! HIGH pulses at 140/240/340 (global 1400/2400/3400).

use rlse_core::prelude::*;
use rlse_designs::min_max;
use rlse_ta::prelude::*;

fn build() -> Circuit {
    let mut circ = Circuit::new();
    let a = circ.inp_at(&[115.0, 215.0, 315.0], "A");
    let b = circ.inp_at(&[64.0, 184.0, 304.0], "B");
    let (low, high) = min_max(&mut circ, a, b).unwrap();
    circ.inspect(low, "LOW");
    circ.inspect(high, "HIGH");
    circ
}

#[test]
fn query1_and_query2_hold_for_min_max() {
    let circ = build();
    let tr = translate_circuit(&circ).unwrap();

    let q2 = check(&tr.net, &McQuery::query2(&tr), McOptions::default());
    assert_eq!(q2.holds, Some(true), "{:?}", q2.violation);
    assert!(q2.states() > 10);
    // The store never holds more zones than there are explored states, and
    // a completed pass records a nonzero peak.
    assert!(q2.peak_store() > 0 && q2.peak_store() <= q2.states());
    assert!(q2.diagnostic.is_none(), "{:?}", q2.diagnostic);

    let expected = [
        ("LOW", vec![89.0, 209.0, 329.0]),
        ("HIGH", vec![140.0, 240.0, 340.0]),
    ];
    let q1 = check(
        &tr.net,
        &McQuery::query1(&tr, &expected),
        McOptions::default(),
    );
    assert_eq!(q1.holds, Some(true), "{:?}", q1.violation);
    println!(
        "min-max: query1 {} states in {:.3}s, query2 {} states in {:.3}s",
        q1.states(),
        q1.time_secs,
        q2.states(),
        q2.time_secs
    );
}

#[test]
fn query1_detects_wrong_expected_times() {
    let circ = build();
    let tr = translate_circuit(&circ).unwrap();
    // Claim LOW fires only at 90.0: refuted.
    let q1 = check(
        &tr.net,
        &McQuery::query1(
            &tr,
            &[
                ("LOW", vec![90.0, 209.0, 329.0]),
                ("HIGH", vec![140.0, 240.0, 340.0]),
            ],
        ),
        McOptions::default(),
    );
    assert_eq!(q1.holds, Some(false));
    assert!(q1.violation.unwrap().contains("LOW"));
}

#[test]
fn uppaal_artifacts_are_generated_for_min_max() {
    let circ = build();
    let tr = translate_circuit(&circ).unwrap();
    let xml = to_uppaal_xml(&tr.net);
    assert!(xml.contains("<system>"));
    let q1 = query1_tctl(
        &tr,
        &[
            ("LOW", vec![89.0, 209.0, 329.0]),
            ("HIGH", vec![140.0, 240.0, 340.0]),
        ],
    );
    // The paper's §5.3 formula shape: fta_end imply global == 890 etc.
    assert!(q1.contains("fta_end imply ((global == 890) || (global == 2090) || (global == 3290))"), "{q1}");
    let q2 = query2_tctl(&tr);
    assert!(q2.starts_with("A[] not ("));
}
