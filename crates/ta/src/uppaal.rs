//! UPPAAL 4.x export: serialize a [`TaNetwork`] to the flat-system XML
//! format accepted by UPPAAL's GUI and `verifyta`, and generate the
//! TCTL queries of the paper's §5.3.
//!
//! The generated artifacts are meant to be dropped straight into UPPAAL:
//! save the XML as `design.xml` and the query text as `design.q`, then run
//! `verifyta design.xml design.q`.

use crate::automaton::{Automaton, Guard, Sync, TaNetwork};
use crate::dbm::Rel;
use crate::translate::Translation;
use std::fmt::Write as _;

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn guard_text(net: &TaNetwork, g: &Guard) -> String {
    g.iter()
        .map(|c| {
            let op = match c.rel {
                Rel::Lt => "<",
                Rel::Le => "<=",
                Rel::Ge => ">=",
                Rel::Gt => ">",
                Rel::Eq => "==",
            };
            format!("{} {op} {}", net.clock_names[c.clock.0], c.bound)
        })
        .collect::<Vec<_>>()
        .join(" && ")
}

fn template_xml(net: &TaNetwork, a: &Automaton, out: &mut String) {
    let _ = writeln!(out, "  <template>");
    let _ = writeln!(out, "    <name>{}</name>", xml_escape(&a.name));
    for (li, l) in a.locations.iter().enumerate() {
        let x = (li % 8) * 150;
        let y = (li / 8) * 120;
        let _ = writeln!(
            out,
            "    <location id=\"id{}\" x=\"{x}\" y=\"{y}\">",
            li
        );
        let _ = writeln!(out, "      <name>{}</name>", xml_escape(&l.name));
        if !l.invariant.is_empty() {
            let _ = writeln!(
                out,
                "      <label kind=\"invariant\">{}</label>",
                xml_escape(&guard_text(net, &l.invariant))
            );
        }
        let _ = writeln!(out, "    </location>");
    }
    let _ = writeln!(out, "    <init ref=\"id{}\"/>", a.init.0);
    for e in &a.edges {
        let _ = writeln!(out, "    <transition>");
        let _ = writeln!(out, "      <source ref=\"id{}\"/>", e.src.0);
        let _ = writeln!(out, "      <target ref=\"id{}\"/>", e.dst.0);
        if !e.guard.is_empty() {
            let _ = writeln!(
                out,
                "      <label kind=\"guard\">{}</label>",
                xml_escape(&guard_text(net, &e.guard))
            );
        }
        match e.sync {
            Sync::Tau => {}
            Sync::Send(ch) => {
                let _ = writeln!(
                    out,
                    "      <label kind=\"synchronisation\">{}!</label>",
                    xml_escape(&net.chan_names[ch.0])
                );
            }
            Sync::Recv(ch) => {
                let _ = writeln!(
                    out,
                    "      <label kind=\"synchronisation\">{}?</label>",
                    xml_escape(&net.chan_names[ch.0])
                );
            }
        }
        if !e.resets.is_empty() {
            let assign = e
                .resets
                .iter()
                .map(|c| format!("{} = 0", net.clock_names[c.0]))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "      <label kind=\"assignment\">{}</label>",
                xml_escape(&assign)
            );
        }
        let _ = writeln!(out, "    </transition>");
    }
    let _ = writeln!(out, "  </template>");
}

/// Serialize the network as an UPPAAL 4.x flat-system XML document.
pub fn to_uppaal_xml(net: &TaNetwork) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str(
        "<!DOCTYPE nta PUBLIC \"-//Uppaal Team//DTD Flat System 1.1//EN\" \
         \"http://www.it.uu.se/research/group/darts/uppaal/flat-1_1.dtd\">\n",
    );
    out.push_str("<nta>\n");
    let mut decl = String::new();
    if !net.clock_names.is_empty() {
        let _ = writeln!(decl, "clock {};", net.clock_names.join(", "));
    }
    if !net.chan_names.is_empty() {
        let _ = writeln!(decl, "chan {};", net.chan_names.join(", "));
    }
    let _ = writeln!(
        out,
        "  <declaration>{}</declaration>",
        xml_escape(&decl)
    );
    for a in &net.automata {
        template_xml(net, a, &mut out);
    }
    let system = net
        .automata
        .iter()
        .map(|a| a.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "  <system>system {system};</system>");
    out.push_str("</nta>\n");
    out
}

/// Generate the paper's Query 1 (correctness) TCTL formula: every output
/// `fta_end` location implies the global clock equals one of the expected
/// (upscaled) instants.
pub fn query1_tctl(tr: &Translation, expected: &[(&str, Vec<f64>)]) -> String {
    let scale = tr.net.scale;
    let mut groups = Vec::new();
    for (wire, ends) in &tr.output_ends {
        let times: Vec<i64> = expected
            .iter()
            .find(|(n, _)| n == wire)
            .map(|(_, ts)| ts.iter().map(|t| (t * scale as f64).round() as i64).collect())
            .unwrap_or_default();
        let alt = if times.is_empty() {
            "false".to_string()
        } else {
            times
                .iter()
                .map(|t| format!("(global == {t})"))
                .collect::<Vec<_>>()
                .join(" || ")
        };
        let conj = ends
            .iter()
            .map(|&(ai, li)| {
                format!(
                    "({}.{} imply ({alt}))",
                    tr.net.automata[ai].name, tr.net.automata[ai].locations[li.0].name
                )
            })
            .collect::<Vec<_>>()
            .join(" && ");
        groups.push(format!("({conj})"));
    }
    if groups.is_empty() {
        // A translation with no output wires has nothing to constrain; the
        // empty conjunction used to serialize as the invalid formula
        // `A[] ()` — mirror query2's empty case instead.
        return "A[] true".to_string();
    }
    format!("A[] ({})", groups.join(" && "))
}

/// Generate the paper's Query 2 TCTL formula: no error state is reachable.
pub fn query2_tctl(tr: &Translation) -> String {
    if tr.error_locations.is_empty() {
        return "A[] true".to_string();
    }
    let disj = tr
        .error_locations
        .iter()
        .map(|&(ai, li)| {
            format!(
                "{}.{}",
                tr.net.automata[ai].name, tr.net.automata[ai].locations[li.0].name
            )
        })
        .collect::<Vec<_>>()
        .join(" || ");
    format!("A[] not ({disj})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_machine;
    use rlse_cells::defs;

    #[test]
    fn xml_has_templates_and_declarations() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0])], 10).unwrap();
        let xml = to_uppaal_xml(&tr.net);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<declaration>clock global"));
        assert!(xml.contains("chan "));
        assert!(xml.contains("<template>"));
        assert!(xml.contains("fta_end"));
        assert!(xml.contains("<system>system "));
        // Balanced tags.
        assert_eq!(xml.matches("<template>").count(), xml.matches("</template>").count());
        assert_eq!(xml.matches("<location").count(), xml.matches("</location>").count());
    }

    #[test]
    fn query1_formula_shape() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0])], 10).unwrap();
        let q = query1_tctl(&tr, &[("q", vec![15.7])]);
        assert!(q.starts_with("A[] "));
        assert!(q.contains("fta_end imply ((global == 157))"), "{q}");
    }

    #[test]
    fn query1_with_no_outputs_is_a_valid_formula() {
        // A translation without output wires used to produce the invalid
        // UPPAAL formula `A[] ()`; it must degrade to `A[] true`.
        let mut tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0])], 10).unwrap();
        tr.output_ends.clear();
        assert_eq!(query1_tctl(&tr, &[]), "A[] true");
    }

    #[test]
    fn query2_formula_lists_error_states() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q = query2_tctl(&tr);
        assert!(q.starts_with("A[] not ("), "{q}");
        assert!(q.contains("err_a_s"), "{q}");
        assert!(q.contains("err_clk_h"), "{q}");
    }
}
