//! Translation of PyLSE Machines and circuits into networks of timed
//! automata, following the expansion of the paper's Figure 14.
//!
//! Each machine instance becomes one *main* automaton plus a set of
//! auxiliary *firing* automata:
//!
//! * every machine state is a stable location;
//! * every machine transition expands into a receive edge (guarded by its
//!   past constraints, with error edges to `err_*_s` locations when a
//!   constrained input was seen too recently), a chain of urgent locations
//!   that emit one `f!` message per fired output, and a wait location with
//!   invariant `c_h ≤ τ_tran` left by an edge guarded `c_h == τ_tran`
//!   (error edges to `err_*_h` catch inputs during the transitional
//!   period);
//! * every fired output gets a firing automaton `f0 → f1 → fta_end` that
//!   waits `τ_fire` between receiving `f?` and sending on the output wire's
//!   channel, duplicated by the soaking factor `⌈τ_fire / τ_tran⌉` so the
//!   cell can re-fire during a pending propagation;
//! * circuit inputs become stimulus automata that emit at exact global
//!   times, and circuit outputs get sink automata that are always ready to
//!   receive.
//!
//! Times are upscaled to integers (default ×10, so `209.2 ps` becomes
//! `2092`) exactly as the paper does to meet UPPAAL's integer-constant
//! requirement.

use crate::automaton::{
    Automaton, ChanId, ClockId, Constraint, Edge, Guard, LocId, LocKind, Location, Sync, TaNetwork,
};
use crate::dbm::Rel;
use rlse_core::circuit::{Circuit, NodeId};
use rlse_core::machine::Machine;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The default integer time scale (model units per picosecond).
pub const DEFAULT_SCALE: i64 = 10;

/// Errors raised during translation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TranslateError {
    /// Behavioral holes have no transition-system semantics and cannot be
    /// translated to timed automata.
    HoleNotSupported {
        /// Name of the offending hole.
        hole: String,
    },
    /// A time value does not fall on the integer grid at the chosen scale.
    TimeNotRepresentable {
        /// The offending time (ps).
        time: f64,
        /// The scale in use.
        scale: i64,
    },
    /// A scaled time constant exceeds the range the DBM arithmetic can
    /// encode without overflow ([`crate::dbm::MAX_BOUND`]). Before this
    /// check, such constants were cast to `i32` downstream and silently
    /// wrapped, producing wrong verdicts instead of an error.
    BoundOverflow {
        /// The offending time (ps).
        time: f64,
        /// The scale in use.
        scale: i64,
        /// The out-of-range scaled constant.
        scaled: i64,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::HoleNotSupported { hole } => {
                write!(f, "hole '{hole}' cannot be translated to timed automata")
            }
            TranslateError::TimeNotRepresentable { time, scale } => write!(
                f,
                "time {time} ps is not an integer multiple of 1/{scale} ps"
            ),
            TranslateError::BoundOverflow { time, scale, scaled } => write!(
                f,
                "time {time} ps at scale {scale} yields the constant {scaled}, \
                 outside the encodable bound range ±{}",
                crate::dbm::MAX_BOUND
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

/// The result of translating a circuit: the network plus the bookkeeping
/// needed to phrase the paper's two queries.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The generated network.
    pub net: TaNetwork,
    /// For every *circuit output* wire name: the `fta_end` locations
    /// (automaton index, location) of the firing automata driving it.
    pub output_ends: BTreeMap<String, Vec<(usize, LocId)>>,
    /// All error locations (automaton index, location), for Query 2.
    pub error_locations: Vec<(usize, LocId)>,
    /// The global clock.
    pub global: ClockId,
}

fn scale_time(t: f64, scale: i64) -> Result<i64, TranslateError> {
    let v = t * scale as f64;
    let r = v.round();
    if (v - r).abs() > 1e-6 {
        return Err(TranslateError::TimeNotRepresentable { time: t, scale });
    }
    let scaled = r as i64;
    if scaled.abs() > crate::dbm::MAX_BOUND as i64 {
        return Err(TranslateError::BoundOverflow { time: t, scale, scaled });
    }
    Ok(scaled)
}

/// Make a string a valid UPPAAL identifier.
pub fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if !s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        s.insert(0, 'w');
    }
    s
}

/// Options controlling the translation.
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Integer time scale (model units per picosecond).
    pub scale: i64,
    /// Upper bound on the soaking factor (number of duplicated firing
    /// automata per output). The faithful value is `usize::MAX`
    /// (`⌈τ_fire/τ_tran⌉` copies); smaller caps trade re-fire headroom for a
    /// smaller state space.
    pub soak_cap: usize,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            scale: DEFAULT_SCALE,
            soak_cap: usize::MAX,
        }
    }
}

/// Translate a whole circuit at the default ×10 time scale.
///
/// # Errors
///
/// Fails if the circuit contains behavioral holes or uses delays that are
/// not representable on the integer grid.
pub fn translate_circuit(circ: &Circuit) -> Result<Translation, TranslateError> {
    translate_circuit_with(circ, TranslateOptions::default())
}

/// Translate a whole circuit with explicit options.
///
/// # Errors
///
/// See [`translate_circuit`].
pub fn translate_circuit_with(
    circ: &Circuit,
    opts: TranslateOptions,
) -> Result<Translation, TranslateError> {
    let mut tr = Translator::new(circ, opts);
    tr.run()?;
    Ok(Translation {
        net: tr.net,
        output_ends: tr.output_ends,
        error_locations: tr.error_locations,
        global: tr.global,
    })
}

/// Translate a single machine in isolation, feeding each input from a
/// stimulus with the given pulse times and sinking every output. This is
/// the per-cell translation used for the basic-cell rows of Table 3.
///
/// # Errors
///
/// Fails if a delay is not representable on the integer grid.
pub fn translate_machine(
    spec: &Arc<Machine>,
    input_times: &[(&str, Vec<f64>)],
    scale: i64,
) -> Result<Translation, TranslateError> {
    let mut circ = Circuit::new();
    let inputs: Vec<_> = spec
        .inputs()
        .iter()
        .map(|name| {
            let times = input_times
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.clone())
                .unwrap_or_default();
            circ.inp_at(&times, name)
        })
        .collect();
    let outs = circ
        .add_machine(spec, &inputs)
        .expect("fresh wires cannot violate fanout");
    for (k, w) in outs.iter().enumerate() {
        let name = spec.outputs()[k].clone();
        circ.inspect(*w, &name);
    }
    translate_circuit_with(
        &circ,
        TranslateOptions {
            scale,
            ..Default::default()
        },
    )
}

struct Translator<'c> {
    circ: &'c Circuit,
    scale: i64,
    soak_cap: usize,
    net: TaNetwork,
    global: ClockId,
    /// Channel for each wire index.
    wire_chan: Vec<ChanId>,
    output_ends: BTreeMap<String, Vec<(usize, LocId)>>,
    error_locations: Vec<(usize, LocId)>,
}

impl<'c> Translator<'c> {
    fn new(circ: &'c Circuit, opts: TranslateOptions) -> Self {
        let scale = opts.scale;
        let mut net = TaNetwork::new(scale);
        let global = net.add_clock("global");
        net.global_clock = Some(global);
        let wire_chan = (0..circ.wire_count())
            .map(|i| {
                let w = circ.wire_at(i);
                net.add_chan(sanitize(circ.wire_name(w)))
            })
            .collect();
        // Retired loopback placeholders keep a channel nobody uses; that is
        // harmless (no edges reference it).
        Translator {
            circ,
            scale,
            soak_cap: opts.soak_cap,
            net,
            global,
            wire_chan,
            output_ends: BTreeMap::new(),
            error_locations: Vec::new(),
        }
    }

    fn run(&mut self) -> Result<(), TranslateError> {
        let mut cell_counts: BTreeMap<String, usize> = BTreeMap::new();
        for n in 0..self.circ.node_count() {
            let node = NodeId(n);
            if let Some(times) = self.circ.node_source_times(node) {
                self.add_stimulus(node, times)?;
            } else if let Some(spec) = self.circ.node_machine(node) {
                let spec = Arc::clone(spec);
                let idx = cell_counts.entry(spec.name().to_lowercase()).or_insert(0);
                let inst = format!("{}{}", sanitize(&spec.name().to_lowercase()), *idx);
                *idx += 1;
                self.add_machine(node, &spec, &inst)?;
            } else {
                // A hole: cannot be translated.
                return Err(TranslateError::HoleNotSupported {
                    hole: self.circ.node_wire_name(node),
                });
            }
        }
        // Sink automata for circuit outputs.
        for w in self.circ.output_wires() {
            let chan = self.wire_chan[self.circ.wire_index(w)];
            let name = format!("sink_{}", sanitize(self.circ.wire_name(w)));
            self.net.automata.push(Automaton {
                name,
                init: LocId(0),
                locations: vec![Location {
                    name: "ready".into(),
                    invariant: vec![],
                    kind: LocKind::Normal,
                    committed: false,
                }],
                edges: vec![Edge {
                    src: LocId(0),
                    dst: LocId(0),
                    sync: Sync::Recv(chan),
                    guard: vec![],
                    resets: vec![],
                }],
            });
        }
        Ok(())
    }

    fn add_stimulus(&mut self, node: NodeId, times: &[f64]) -> Result<(), TranslateError> {
        let wire = self.circ.node_out_wires(node)[0];
        let chan = self.wire_chan[self.circ.wire_index(wire)];
        let name = format!("in_{}", sanitize(self.circ.wire_name(wire)));
        let mut locations = Vec::new();
        let mut edges = Vec::new();
        for (k, &t) in times.iter().enumerate() {
            let ti = scale_time(t, self.scale)?;
            locations.push(Location {
                name: format!("s{k}"),
                invariant: vec![Constraint::new(self.global, Rel::Le, ti)],
                kind: LocKind::Normal,
                committed: false,
            });
            edges.push(Edge {
                src: LocId(k),
                dst: LocId(k + 1),
                sync: Sync::Send(chan),
                guard: vec![Constraint::new(self.global, Rel::Eq, ti)],
                resets: vec![],
            });
        }
        locations.push(Location {
            name: "done".into(),
            invariant: vec![],
            kind: LocKind::Normal,
            committed: false,
        });
        self.net.automata.push(Automaton {
            name,
            init: LocId(0),
            locations,
            edges,
        });
        Ok(())
    }

    fn add_machine(
        &mut self,
        node: NodeId,
        spec: &Arc<Machine>,
        inst: &str,
    ) -> Result<(), TranslateError> {
        let n_in = spec.inputs().len();
        // Clocks: c_h plus one per input.
        let c_h = self.net.add_clock(format!("{inst}_ch"));
        let c_in: Vec<ClockId> = (0..n_in)
            .map(|i| self.net.add_clock(format!("{inst}_c_{}", spec.inputs()[i])))
            .collect();
        // Channels for this machine's input and output wires.
        let in_wires = self.circ.node_in_wires(node);
        let out_wires = self.circ.node_out_wires(node);
        let in_chan: Vec<ChanId> = in_wires
            .iter()
            .map(|w| self.wire_chan[self.circ.wire_index(*w)])
            .collect();
        let out_chan: Vec<ChanId> = out_wires
            .iter()
            .map(|w| self.wire_chan[self.circ.wire_index(*w)])
            .collect();
        let out_is_circuit_output: Vec<Option<String>> = out_wires
            .iter()
            .map(|w| {
                if self.circ.wire_sink(*w).is_none() {
                    Some(self.circ.wire_name(*w).to_string())
                } else {
                    None
                }
            })
            .collect();

        let mut locations: Vec<Location> = spec
            .states()
            .iter()
            .map(|s| Location {
                name: sanitize(s),
                invariant: vec![],
                kind: LocKind::Normal,
                committed: false,
            })
            .collect();
        let mut edges: Vec<Edge> = Vec::new();
        let mut firing_autos: Vec<(Automaton, Option<String>, LocId)> = Vec::new();

        // One bank of firing automata per (output, delay): each bank has a
        // fire channel and `soak` duplicated copies, where `soak` is the
        // largest ⌈τ_fire/τ_tran⌉ over the transitions firing that output
        // (capped by `soak_cap`).
        let mut fire_chan: BTreeMap<(usize, i64), ChanId> = BTreeMap::new();
        {
            let mut fire_groups: BTreeMap<(usize, i64), usize> = BTreeMap::new();
            for t in spec.transitions() {
                let tt = scale_time(t.transition_time, self.scale)?;
                for &(out, delay) in &t.firing {
                    let d = scale_time(delay, self.scale)?;
                    let soak = if tt > 0 {
                        (((d + tt - 1) / tt).max(1) as usize).min(self.soak_cap)
                    } else {
                        1
                    };
                    let e = fire_groups.entry((out.0, d)).or_insert(1);
                    *e = (*e).max(soak);
                }
            }
            for (&(out, d), &soak) in &fire_groups {
                let out_name = sanitize(&spec.outputs()[out]);
                let f_chan = self.net.add_chan(format!("f_{inst}_{out_name}_{d}"));
                fire_chan.insert((out, d), f_chan);
                if soak == 1 {
                    let c_p = self.net.add_clock(format!("{inst}_cp_{out_name}_0"));
                    let fa = Automaton {
                        name: format!("firing_{inst}_{out_name}_0"),
                        init: LocId(0),
                        locations: vec![
                            Location {
                                name: "f0".into(),
                                invariant: vec![],
                                kind: LocKind::Normal,
                                committed: false,
                            },
                            Location {
                                name: "f1".into(),
                                invariant: vec![Constraint::new(c_p, Rel::Le, d)],
                                kind: LocKind::Normal,
                                committed: false,
                            },
                            Location {
                                name: "fta_end".into(),
                                invariant: vec![Constraint::new(c_p, Rel::Le, d)],
                                kind: LocKind::FiringEnd,
                                committed: true,
                            },
                        ],
                        edges: vec![
                            Edge {
                                src: LocId(0),
                                dst: LocId(1),
                                sync: Sync::Recv(f_chan),
                                guard: vec![],
                                resets: vec![c_p],
                            },
                            Edge {
                                src: LocId(1),
                                dst: LocId(2),
                                sync: Sync::Send(out_chan[out]),
                                guard: vec![Constraint::new(c_p, Rel::Eq, d)],
                                resets: vec![],
                            },
                            Edge {
                                src: LocId(2),
                                dst: LocId(0),
                                sync: Sync::Tau,
                                guard: vec![],
                                resets: vec![],
                            },
                        ],
                    };
                    firing_autos.push((fa, out_is_circuit_output[out].clone(), LocId(2)));
                } else {
                    // Soaked copies are identical, so letting the sender pick
                    // any free copy multiplies the state space by a useless
                    // symmetric factor. Arrange the copies in a round-robin
                    // token ring instead: exactly one copy is "ready" (holds
                    // the token) at any time, and accepting a fire message
                    // immediately passes the token to the next copy.
                    let toks: Vec<ChanId> = (0..soak)
                        .map(|i| self.net.add_chan(format!("tok_{inst}_{out_name}_{i}")))
                        .collect();
                    for copy in 0..soak {
                        let c_p =
                            self.net.add_clock(format!("{inst}_cp_{out_name}_{copy}"));
                        let fa = Automaton {
                            name: format!("firing_{inst}_{out_name}_{copy}"),
                            init: if copy == 0 { LocId(1) } else { LocId(0) },
                            locations: vec![
                                Location {
                                    name: "wait".into(),
                                    invariant: vec![],
                                    kind: LocKind::Normal,
                                    committed: false,
                                },
                                Location {
                                    name: "f0".into(),
                                    invariant: vec![],
                                    kind: LocKind::Normal,
                                    committed: false,
                                },
                                Location {
                                    name: "pass".into(),
                                    invariant: vec![Constraint::new(c_p, Rel::Le, 0)],
                                    kind: LocKind::Normal,
                                    committed: true,
                                },
                                Location {
                                    name: "f1".into(),
                                    invariant: vec![Constraint::new(c_p, Rel::Le, d)],
                                    kind: LocKind::Normal,
                                    committed: false,
                                },
                                Location {
                                    name: "fta_end".into(),
                                    invariant: vec![Constraint::new(c_p, Rel::Le, d)],
                                    kind: LocKind::FiringEnd,
                                    committed: true,
                                },
                            ],
                            edges: vec![
                                Edge {
                                    src: LocId(0),
                                    dst: LocId(1),
                                    sync: Sync::Recv(toks[copy]),
                                    guard: vec![],
                                    resets: vec![],
                                },
                                Edge {
                                    src: LocId(1),
                                    dst: LocId(2),
                                    sync: Sync::Recv(f_chan),
                                    guard: vec![],
                                    resets: vec![c_p],
                                },
                                Edge {
                                    src: LocId(2),
                                    dst: LocId(3),
                                    sync: Sync::Send(toks[(copy + 1) % soak]),
                                    guard: vec![],
                                    resets: vec![],
                                },
                                Edge {
                                    src: LocId(3),
                                    dst: LocId(4),
                                    sync: Sync::Send(out_chan[out]),
                                    guard: vec![Constraint::new(c_p, Rel::Eq, d)],
                                    resets: vec![],
                                },
                                Edge {
                                    src: LocId(4),
                                    dst: LocId(0),
                                    sync: Sync::Tau,
                                    guard: vec![],
                                    resets: vec![],
                                },
                            ],
                        };
                        firing_autos.push((fa, out_is_circuit_output[out].clone(), LocId(4)));
                    }
                }
            }
        }

        for t in spec.transitions() {
            let tt = scale_time(t.transition_time, self.scale)?;
            let trigger_chan = in_chan[t.trigger.0];
            let pc_guard: Guard = t
                .past_constraints
                .iter()
                .map(|&(cin, dist)| {
                    Ok(Constraint::new(
                        c_in[cin.0],
                        Rel::Ge,
                        scale_time(dist, self.scale)?,
                    ))
                })
                .collect::<Result<_, TranslateError>>()?;

            // Setup-error edges: one per constrained input.
            for &(cin, dist) in &t.past_constraints {
                let d = scale_time(dist, self.scale)?;
                let err = LocId(locations.len());
                locations.push(Location {
                    name: format!("err_{}_s_{}", sanitize(&spec.inputs()[cin.0]), t.id),
                    invariant: vec![],
                    kind: LocKind::Error,
                    committed: false,
                });
                edges.push(Edge {
                    src: LocId(t.src.0),
                    dst: err,
                    sync: Sync::Recv(trigger_chan),
                    guard: vec![Constraint::new(c_in[cin.0], Rel::Lt, d)],
                    resets: vec![],
                });
            }

            if t.firing.is_empty() && tt == 0 {
                // Instantaneous bookkeeping move.
                edges.push(Edge {
                    src: LocId(t.src.0),
                    dst: LocId(t.dst.0),
                    sync: Sync::Recv(trigger_chan),
                    guard: pc_guard,
                    resets: vec![c_in[t.trigger.0]],
                });
                continue;
            }

            // Chain locations: one urgent send location per fired output,
            // then (if tt > 0) a wait location holding for the transition
            // time (Fig. 14c).
            let mut chain_locs: Vec<LocId> = Vec::new();
            let mut f_chans: Vec<ChanId> = Vec::new();
            for (k, &(out, delay)) in t.firing.iter().enumerate() {
                let d = scale_time(delay, self.scale)?;
                f_chans.push(fire_chan[&(out.0, d)]);
                chain_locs.push(LocId(locations.len()));
                locations.push(Location {
                    name: format!("q{}_{}", t.id, k),
                    invariant: vec![Constraint::new(c_h, Rel::Le, 0)],
                    kind: LocKind::Normal,
                    committed: true,
                });
            }
            if tt > 0 {
                let w = LocId(locations.len());
                chain_locs.push(w);
                locations.push(Location {
                    name: format!("w{}", t.id),
                    invariant: vec![Constraint::new(c_h, Rel::Le, tt)],
                    kind: LocKind::Normal,
                    committed: false,
                });
                edges.push(Edge {
                    src: w,
                    dst: LocId(t.dst.0),
                    sync: Sync::Tau,
                    guard: vec![Constraint::new(c_h, Rel::Eq, tt)],
                    resets: vec![c_h],
                });
            }
            // Receive edge into the chain (or straight to dst if empty).
            let entry = chain_locs.first().copied().unwrap_or(LocId(t.dst.0));
            edges.push(Edge {
                src: LocId(t.src.0),
                dst: entry,
                sync: Sync::Recv(trigger_chan),
                guard: pc_guard,
                resets: vec![c_h, c_in[t.trigger.0]],
            });
            // Send edges along the chain: q0 → q1 → … → wait (or dst).
            for (k, f_chan) in f_chans.iter().enumerate() {
                let next = chain_locs.get(k + 1).copied().unwrap_or(LocId(t.dst.0));
                edges.push(Edge {
                    src: chain_locs[k],
                    dst: next,
                    sync: Sync::Send(*f_chan),
                    guard: vec![],
                    resets: vec![],
                });
            }

            // Transitional-period error edges from every chain location.
            // Only a nonzero transition time opens an illegal-input window;
            // instantaneous chains (urgent send locations) let same-instant
            // pulses be received right after the sends, exactly like the
            // simulator's dispatch of simultaneous batches.
            let hold_guard = Constraint::new(c_h, Rel::Lt, tt);
            for (i_in, chan) in in_chan.iter().enumerate() {
                if tt == 0 || chain_locs.is_empty() {
                    break;
                }
                let err = LocId(locations.len());
                locations.push(Location {
                    name: format!("err_{}_h_{}", sanitize(&spec.inputs()[i_in]), t.id),
                    invariant: vec![],
                    kind: LocKind::Error,
                    committed: false,
                });
                for &cl in &chain_locs {
                    edges.push(Edge {
                        src: cl,
                        dst: err,
                        sync: Sync::Recv(*chan),
                        guard: vec![hold_guard],
                        resets: vec![],
                    });
                }
            }
        }

        let main_idx = self.net.automata.len();
        // Record error locations of the main automaton.
        for (li, l) in locations.iter().enumerate() {
            if l.kind == LocKind::Error {
                self.error_locations.push((main_idx, LocId(li)));
            }
        }
        self.net.automata.push(Automaton {
            name: inst.to_string(),
            init: LocId(spec.start().0),
            locations,
            edges,
        });
        for (fa, circuit_output, end_loc) in firing_autos {
            let idx = self.net.automata.len();
            if let Some(wire_name) = circuit_output {
                self.output_ends
                    .entry(wire_name)
                    .or_default()
                    .push((idx, end_loc));
            }
            self.net.automata.push(fa);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_cells::defs;

    #[test]
    fn jtl_translation_shape() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0])], 10).unwrap();
        let stats = tr.net.stats();
        // Automata: stimulus + main + 1 firing + sink.
        assert_eq!(stats.automata, 4);
        assert!(tr.output_ends.contains_key("q"));
        assert_eq!(tr.output_ends["q"].len(), 1);
        // JTL has no timing constraints → no error locations.
        assert!(tr.error_locations.is_empty());
    }

    #[test]
    fn and_translation_has_soaked_firing_autos() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[
                ("a", vec![20.0]),
                ("b", vec![30.0]),
                ("clk", vec![50.0]),
            ],
            10,
        )
        .unwrap();
        // Soak = ceil(9.2 / 3.0) = 4 firing automata.
        let firing = tr
            .net
            .automata
            .iter()
            .filter(|a| a.name.starts_with("firing_"))
            .count();
        assert_eq!(firing, 4);
        // Error locations: 4 clk transitions × (3 setup + 3 hold) = 24.
        assert_eq!(tr.error_locations.len(), 24);
    }

    #[test]
    fn sanitize_produces_identifiers() {
        assert_eq!(sanitize("_0"), "w_0");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("3x"), "w3x");
    }

    #[test]
    fn holes_are_rejected() {
        use rlse_core::functional::Hole;
        use rlse_core::prelude::*;
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[1.0], "A");
        let h = Hole::new("h", 1.0, &["a"], &["q"], |_, _| vec![false]);
        let _ = circ.add_hole(h, &[a]).unwrap();
        assert!(matches!(
            translate_circuit(&circ),
            Err(TranslateError::HoleNotSupported { .. })
        ));
    }

    #[test]
    fn oversized_scaled_times_are_rejected() {
        // 100 ps at scale 10_000_000 is the constant 1e9 > MAX_BOUND; the
        // old unchecked `as i32` path downstream would wrap such constants
        // silently. The translator must refuse instead.
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![100.0])], 10_000_000);
        match tr {
            Err(TranslateError::BoundOverflow { scaled, .. }) => {
                assert_eq!(scaled, 1_000_000_000);
            }
            other => panic!("expected BoundOverflow, got {other:?}"),
        }
    }

    #[test]
    fn unrepresentable_times_are_rejected() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.03])], 10);
        assert!(matches!(
            tr,
            Err(TranslateError::TimeNotRepresentable { .. })
        ));
    }
}
