//! # rlse-ta — timed automata, UPPAAL export, and model checking
//!
//! The formal-verification layer of RLSE, reproducing §4.4 and §5.3 of the
//! PyLSE paper:
//!
//! * [`automaton`] — networks of timed automata with clocks, guards,
//!   invariants, and binary channel synchronization.
//! * [`translate`] — the automatic PyLSE-Machine→TA translation of Fig. 14,
//!   including setup/hold error locations and soaked firing automata.
//! * [`uppaal`] — UPPAAL 4.x XML export and TCTL query generation
//!   (Query 1: output correctness; Query 2: unreachable error states).
//! * [`dbm`] — difference bound matrices, the zone representation.
//! * [`mc`] — a zone-based reachability model checker that plays the role
//!   of UPPAAL's `verifyta` (which is closed-source and unavailable here),
//!   checking the same two queries.
//!
//! ## Example: verify the Synchronous AND element
//!
//! ```
//! use rlse_ta::prelude::*;
//! use rlse_cells::defs::and_elem;
//!
//! let tr = translate_machine(
//!     &and_elem(),
//!     &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
//!     10,
//! ).unwrap();
//! // Query 2: no timing-violation state is reachable.
//! let r = check(&tr.net, &McQuery::query2(&tr), McOptions::default());
//! assert_eq!(r.holds, Some(true));
//! // Query 1: q fires only at 59.2 ps.
//! let r = check(&tr.net, &McQuery::query1(&tr, &[("q", vec![59.2])]),
//!               McOptions::default());
//! assert_eq!(r.holds, Some(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod automaton;
pub mod dbm;
pub mod mc;
pub mod translate;
pub mod uppaal;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::automaton::{NetworkStats, TaNetwork};
    pub use crate::mc::{check, McOptions, McQuery, McResult, OutputSpec};
    pub use crate::translate::{
        translate_circuit, translate_circuit_with, translate_machine, TranslateOptions,
        Translation,
    };
    pub use crate::uppaal::{query1_tctl, query2_tctl, to_uppaal_xml};
}
