//! A zone-based model checker for networks of timed automata — the role
//! UPPAAL's `verifyta` plays in the paper's §5.3.
//!
//! The checker explores the zone graph: states are pairs of a location
//! vector and a canonical DBM, successors follow internal (`τ`) edges and
//! binary channel synchronizations, zones are widened with maximal-constant
//! extrapolation, and visited states are subsumed by zone inclusion. Two
//! query forms are supported, mirroring the paper:
//!
//! * **Query 1 (correctness)** — `A[] fta_end ⇒ global ∈ {t₁, …, tₖ}`:
//!   whenever a firing automaton driving a circuit output is at its
//!   `fta_end` location, the global clock equals one of the expected output
//!   instants.
//! * **Query 2 (unreachable error states)** — `A[] ¬(err₁ ∨ … ∨ errₙ)`:
//!   no transition-time or past-constraint error location is reachable.

use crate::automaton::{LocId, Sync, TaNetwork};
use crate::dbm::Dbm;
use crate::translate::Translation;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// One expected-output specification for Query 1.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// Circuit-output wire name (for diagnostics).
    pub wire: String,
    /// The `fta_end` locations (automaton index, location) feeding the wire.
    pub ends: Vec<(usize, LocId)>,
    /// Allowed firing instants, in scaled model time units.
    pub allowed: Vec<i64>,
}

/// A query over the network.
#[derive(Debug, Clone)]
pub enum McQuery {
    /// Query 2: none of these locations is reachable.
    NoErrorState(Vec<(usize, LocId)>),
    /// Query 1: outputs fire only at the listed instants.
    OutputsOnlyAt(Vec<OutputSpec>),
}

impl McQuery {
    /// Build Query 1 from a translation plus the expected pulse times (in
    /// picoseconds) per circuit-output wire.
    pub fn query1(tr: &Translation, expected: &[(&str, Vec<f64>)]) -> Self {
        let scale = tr.net.scale;
        let specs = tr
            .output_ends
            .iter()
            .map(|(wire, ends)| {
                let allowed = expected
                    .iter()
                    .find(|(n, _)| n == wire)
                    .map(|(_, ts)| {
                        ts.iter()
                            .map(|t| (t * scale as f64).round() as i64)
                            .collect()
                    })
                    .unwrap_or_default();
                OutputSpec {
                    wire: wire.clone(),
                    ends: ends.clone(),
                    allowed,
                }
            })
            .collect();
        McQuery::OutputsOnlyAt(specs)
    }

    /// Build Query 2 from a translation.
    pub fn query2(tr: &Translation) -> Self {
        McQuery::NoErrorState(tr.error_locations.clone())
    }
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct McResult {
    /// `Some(true)` if the property holds, `Some(false)` with a diagnostic
    /// if it fails, `None` if the state budget was exhausted first (the
    /// paper's `∞` rows).
    pub holds: Option<bool>,
    /// Number of distinct (location vector, zone) states explored.
    pub states: usize,
    /// Wall-clock verification time in seconds.
    pub time_secs: f64,
    /// Human-readable description of the first violation found, if any.
    pub violation: Option<String>,
    /// For a failed property: the action sequence from the initial state to
    /// the violating state (UPPAAL-style counterexample trace).
    pub trace: Option<Vec<String>>,
}

/// Configuration for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct McOptions {
    /// Abort (result `holds = None`) after exploring this many states.
    pub max_states: usize,
    /// Abort (result `holds = None`) after this much wall-clock time in
    /// seconds — large networks can exhaust memory long before the state
    /// budget (the paper reports such designs as `∞`).
    pub max_seconds: f64,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            max_states: 2_000_000,
            max_seconds: 600.0,
        }
    }
}

/// How a state was reached, for counterexample reconstruction.
#[derive(Debug, Clone, Copy)]
enum Action {
    Init,
    Tau { automaton: usize },
    Sync { sender: usize, receiver: usize, chan: usize },
}

struct Explorer<'n> {
    net: &'n TaNetwork,
    max_consts: Vec<i64>,
    /// Per automaton: which locations are committed.
    committed: Vec<Vec<bool>>,
    /// clock index in the DBM = ClockId + 1.
    visited: HashMap<Vec<u32>, Vec<Dbm>>,
    /// Work queue of arena indices.
    queue: VecDeque<usize>,
    /// Arena of explored states, for parent-pointer traces.
    arena: Vec<(Vec<u32>, Dbm, usize, Action)>,
    states: usize,
}

impl<'n> Explorer<'n> {
    fn new(net: &'n TaNetwork, extra_global_const: i64) -> Self {
        let mut max_consts = net.max_constants();
        if let Some(g) = net.global_clock {
            max_consts[g.0] = max_consts[g.0].max(extra_global_const);
        }
        let committed = net
            .automata
            .iter()
            .map(|a| a.locations.iter().map(|l| l.committed).collect())
            .collect();
        Explorer {
            net,
            max_consts,
            committed,
            visited: HashMap::new(),
            queue: VecDeque::new(),
            arena: Vec::new(),
            states: 0,
        }
    }

    fn apply_invariants(&self, locs: &[u32], z: &mut Dbm) -> bool {
        for (ai, a) in self.net.automata.iter().enumerate() {
            for c in &a.locations[locs[ai] as usize].invariant {
                if !z.constrain_clock(c.clock.0 + 1, c.rel, c.bound as i32) {
                    return false;
                }
            }
        }
        true
    }

    fn apply_guard(z: &mut Dbm, guard: &[crate::automaton::Constraint]) -> bool {
        for c in guard {
            if !z.constrain_clock(c.clock.0 + 1, c.rel, c.bound as i32) {
                return false;
            }
        }
        true
    }

    /// Finalize a successor zone: invariants, delay closure, invariants
    /// again, extrapolation. Returns `None` if empty.
    fn close(&self, locs: &[u32], mut z: Dbm) -> Option<Dbm> {
        if !self.apply_invariants(locs, &mut z) {
            return None;
        }
        z.up();
        if !self.apply_invariants(locs, &mut z) {
            return None;
        }
        z.extrapolate(&self.max_consts);
        if z.is_empty() {
            None
        } else {
            Some(z)
        }
    }

    /// Insert if not subsumed; returns true if it was new.
    fn insert(&mut self, locs: Vec<u32>, z: Dbm, parent: usize, action: Action) -> bool {
        let bucket = self.visited.entry(locs.clone()).or_default();
        if bucket.iter().any(|old| old.includes(&z)) {
            return false;
        }
        bucket.retain(|old| !z.includes(old));
        bucket.push(z.clone());
        self.states += 1;
        self.arena.push((locs, z, parent, action));
        self.queue.push_back(self.arena.len() - 1);
        true
    }

    fn initial(&mut self) -> bool {
        let locs: Vec<u32> = self.net.automata.iter().map(|a| a.init.0 as u32).collect();
        let z = Dbm::zero(self.net.clock_count());
        match self.close(&locs, z) {
            Some(z) => self.insert(locs, z, usize::MAX, Action::Init),
            None => false,
        }
    }

    /// Reconstruct the action trace leading to arena entry `idx`.
    fn trace_to(&self, idx: usize) -> Vec<String> {
        let mut steps = Vec::new();
        let mut cur = idx;
        while cur != usize::MAX {
            let (locs, z, parent, action) = &self.arena[cur];
            let when = self
                .net
                .global_clock
                .map(|g| {
                    let (lo, hi) = z.clock_range(g.0 + 1);
                    match hi {
                        Some(h) if h == lo => format!(" @ global={lo}"),
                        _ => format!(" @ global>={lo}"),
                    }
                })
                .unwrap_or_default();
            let name = |ai: usize| {
                format!(
                    "{}.{}",
                    self.net.automata[ai].name,
                    self.net.automata[ai].locations[locs[ai] as usize].name
                )
            };
            match action {
                Action::Init => steps.push("initial state".to_string()),
                Action::Tau { automaton } => {
                    steps.push(format!("tau -> {}{when}", name(*automaton)))
                }
                Action::Sync { sender, receiver, chan } => steps.push(format!(
                    "{}! : {} -> {}{when}",
                    self.net.chan_names[*chan],
                    name(*sender),
                    name(*receiver)
                )),
            }
            cur = *parent;
        }
        steps.reverse();
        steps
    }

    /// Push every successor of `(locs, z)` into the queue.
    ///
    /// Committed semantics (UPPAAL): while any automaton sits in a committed
    /// location, only transitions involving a committed automaton may fire —
    /// this removes the useless interleavings through zero-duration fire
    /// chains that otherwise blow up the state space.
    fn expand(&mut self, idx: usize) {
        let (locs, z) = {
            let (l, z, _, _) = &self.arena[idx];
            (l.clone(), z.clone())
        };
        let locs = &locs[..];
        let z = &z;
        let any_committed = locs
            .iter()
            .enumerate()
            .any(|(ai, &l)| self.committed[ai][l as usize]);
        let is_committed = |ex: &Self, ai: usize| ex.committed[ai][locs[ai] as usize];
        // Internal (τ) edges.
        for (ai, a) in self.net.automata.iter().enumerate() {
            if any_committed && !is_committed(self, ai) {
                continue;
            }
            for e in a.edges_from(LocId(locs[ai] as usize)) {
                if e.sync != Sync::Tau {
                    continue;
                }
                let mut nz = z.clone();
                if !Self::apply_guard(&mut nz, &e.guard) {
                    continue;
                }
                for r in &e.resets {
                    nz.reset(r.0 + 1);
                }
                let mut nl = locs.to_vec();
                nl[ai] = e.dst.0 as u32;
                if let Some(nz) = self.close(&nl, nz) {
                    self.insert(nl, nz, idx, Action::Tau { automaton: ai });
                }
            }
        }
        // Channel synchronizations: every (send, recv) pair.
        for (ai, a) in self.net.automata.iter().enumerate() {
            for e1 in a.edges_from(LocId(locs[ai] as usize)) {
                let ch = match e1.sync {
                    Sync::Send(ch) => ch,
                    _ => continue,
                };
                for (bi, b) in self.net.automata.iter().enumerate() {
                    if bi == ai {
                        continue;
                    }
                    if any_committed && !is_committed(self, ai) && !is_committed(self, bi) {
                        continue;
                    }
                    for e2 in b.edges_from(LocId(locs[bi] as usize)) {
                        if e2.sync != Sync::Recv(ch) {
                            continue;
                        }
                        let mut nz = z.clone();
                        if !Self::apply_guard(&mut nz, &e1.guard)
                            || !Self::apply_guard(&mut nz, &e2.guard)
                        {
                            continue;
                        }
                        for r in e1.resets.iter().chain(&e2.resets) {
                            nz.reset(r.0 + 1);
                        }
                        let mut nl = locs.to_vec();
                        nl[ai] = e1.dst.0 as u32;
                        nl[bi] = e2.dst.0 as u32;
                        if let Some(nz) = self.close(&nl, nz) {
                            self.insert(
                                nl,
                                nz,
                                idx,
                                Action::Sync {
                                    sender: ai,
                                    receiver: bi,
                                    chan: ch.0,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Model-check `query` over `net` by zone-graph exploration.
pub fn check(net: &TaNetwork, query: &McQuery, opts: McOptions) -> McResult {
    let start = Instant::now();
    // Make sure the global clock stays concrete up to the latest expected
    // output instant, so Query 1 can pin exact times.
    let extra = match query {
        McQuery::OutputsOnlyAt(specs) => specs
            .iter()
            .flat_map(|s| s.allowed.iter().copied())
            .max()
            .unwrap_or(0),
        McQuery::NoErrorState(_) => 0,
    };
    let mut ex = Explorer::new(net, extra);
    let g_idx = net.global_clock.map(|g| g.0 + 1);

    let violation = |locs: &[u32], z: &Dbm| -> Option<String> {
        match query {
            McQuery::NoErrorState(errs) => {
                for &(ai, li) in errs {
                    if locs[ai] as usize == li.0 {
                        return Some(format!(
                            "error state {}.{} is reachable",
                            net.automata[ai].name, net.automata[ai].locations[li.0].name
                        ));
                    }
                }
                None
            }
            McQuery::OutputsOnlyAt(specs) => {
                let g = g_idx?;
                for spec in specs {
                    for &(ai, li) in &spec.ends {
                        if locs[ai] as usize != li.0 {
                            continue;
                        }
                        let (lo, hi) = z.clock_range(g);
                        let pinned = hi == Some(lo);
                        if !pinned || !spec.allowed.contains(&lo) {
                            return Some(format!(
                                "output '{}' fires at global time {}{} not in {:?}",
                                spec.wire,
                                lo,
                                if pinned { "" } else { "+" },
                                spec.allowed
                            ));
                        }
                    }
                }
                None
            }
        }
    };

    if !ex.initial() {
        return McResult {
            holds: Some(true),
            states: 0,
            time_secs: start.elapsed().as_secs_f64(),
            violation: None,
            trace: None,
        };
    }

    while let Some(idx) = ex.queue.pop_front() {
        let (locs, z) = {
            let (l, z, _, _) = &ex.arena[idx];
            (l.clone(), z.clone())
        };
        if let Some(v) = violation(&locs, &z) {
            return McResult {
                holds: Some(false),
                states: ex.states,
                time_secs: start.elapsed().as_secs_f64(),
                violation: Some(v),
                trace: Some(ex.trace_to(idx)),
            };
        }
        if ex.states >= opts.max_states || start.elapsed().as_secs_f64() > opts.max_seconds {
            return McResult {
                holds: None,
                states: ex.states,
                time_secs: start.elapsed().as_secs_f64(),
                violation: None,
                trace: None,
            };
        }
        ex.expand(idx);
    }

    McResult {
        holds: Some(true),
        states: ex.states,
        time_secs: start.elapsed().as_secs_f64(),
        violation: None,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_machine;
    use rlse_cells::defs;

    #[test]
    fn jtl_query1_holds_for_correct_times() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0, 20.0])], 10).unwrap();
        // Output q fires at 15.7 and 25.7.
        let q1 = McQuery::query1(&tr, &[("q", vec![15.7, 25.7])]);
        let r = check(&tr.net, &q1, McOptions::default());
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
        assert!(r.states > 0);
    }

    #[test]
    fn jtl_query1_fails_for_wrong_times() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0])], 10).unwrap();
        let q1 = McQuery::query1(&tr, &[("q", vec![16.0])]);
        let r = check(&tr.net, &q1, McOptions::default());
        assert_eq!(r.holds, Some(false));
        assert!(r.violation.unwrap().contains("157"));
    }

    #[test]
    fn and_query2_holds_for_safe_inputs() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let r = check(&tr.net, &q2, McOptions::default());
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
    }

    #[test]
    fn and_query2_detects_setup_violation() {
        // b at 49, clk at 50: violates the 2.8 setup distance.
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![49.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let r = check(&tr.net, &q2, McOptions::default());
        assert_eq!(r.holds, Some(false));
        assert!(r.violation.unwrap().contains("err_b_s"));
    }

    #[test]
    fn and_query1_matches_simulation() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q1 = McQuery::query1(&tr, &[("q", vec![59.2])]);
        let r = check(&tr.net, &q1, McOptions::default());
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
    }

    #[test]
    fn violations_come_with_counterexample_traces() {
        // b at 49, clk at 50 violates setup; the trace must walk from the
        // initial state through the b and clk stimulus synchronizations to
        // the error location.
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![49.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let r = check(&tr.net, &McQuery::query2(&tr), McOptions::default());
        assert_eq!(r.holds, Some(false));
        let trace = r.trace.expect("counterexample trace");
        assert_eq!(trace.first().map(String::as_str), Some("initial state"));
        let text = trace.join("\n");
        assert!(text.contains("err_b_s"), "{text}");
        assert!(text.contains("global>=500"), "{text}");
        // Every step after the first is an action.
        assert!(trace.len() >= 3, "{trace:?}");
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let r = check(&tr.net, &q2, McOptions { max_states: 3, max_seconds: 10.0 });
        assert_eq!(r.holds, None);
    }
}
