//! A parallel zone-based model checker for networks of timed automata — the
//! role UPPAAL's `verifyta` plays in the paper's §5.3.
//!
//! The checker explores the zone graph: states are pairs of a location
//! vector and a canonical DBM, successors follow internal (`τ`) edges and
//! binary channel synchronizations, zones are widened with maximal-constant
//! extrapolation, and visited states are subsumed by zone inclusion. Two
//! query forms are supported, mirroring the paper:
//!
//! * **Query 1 (correctness)** — `A[] fta_end ⇒ global ∈ {t₁, …, tₖ}`:
//!   whenever a firing automaton driving a circuit output is at its
//!   `fta_end` location, the global clock equals one of the expected output
//!   instants.
//! * **Query 2 (unreachable error states)** — `A[] ¬(err₁ ∨ … ∨ errₙ)`:
//!   no transition-time or past-constraint error location is reachable.
//!
//! # Engine
//!
//! Exploration is a **level-synchronous BFS** over the zone graph, run in
//! three phases per level:
//!
//! * **Expand** — the frontier is split into contiguous units and fanned
//!   across a scoped thread pool (the [`crate::automaton::TaNetwork`] is
//!   shared read-only); each unit emits successor candidates. Per-unit
//!   results are flattened in unit order, so the global candidate order is a
//!   pure function of the frontier, never of thread scheduling. Successor
//!   generation uses per-`(automaton, location)` edge indices (`τ` edges,
//!   sends, receives) plus a per-channel receiver table, so a send only
//!   visits automata that can actually receive on its channel.
//! * **Insert** — the passed/waiting store is sharded by a hash of the
//!   location vector; location vectors are interned per shard and stored
//!   once. Candidates are partitioned by shard and the shards are processed
//!   in parallel, each consuming its candidates in global candidate order —
//!   subsumption is local to a location vector, hence local to a shard, so
//!   the accept/kill decisions are again scheduling-independent. A
//!   candidate subsumed by a stored zone is dropped; a candidate that
//!   subsumes stored zones evicts them, and if an evicted zone was accepted
//!   *earlier in the same level* its entry is marked dead via the
//!   level-stamp on the bucket slot — dead entries are counted and kept for
//!   traces but never expanded (the sequential predecessor expanded them: a
//!   real wasted-work bug).
//! * **Merge** — a single thread folds the per-shard accept lists in
//!   candidate order: arena ids are assigned, the next frontier is built
//!   from surviving entries, and the violation with the smallest candidate
//!   index is selected. First-found-at-minimum-BFS-depth therefore holds at
//!   any thread count, and `threads = 1` runs the identical algorithm
//!   inline without spawning.
//!
//! The arena kept for counterexample reconstruction stores only the interned
//! location id, parent pointer, action, and the global-clock range — zones
//! live once, reference-counted, shared between store and frontier.
//!
//! # Budgets
//!
//! `max_states` is checked at level boundaries (crossing a deterministic
//! point, so the verdict is thread-count independent; one level of overshoot
//! is possible). `max_seconds` is wall-clock and inherently approximate:
//! workers poll the elapsed time during expansion and raise a shared abort
//! flag. Both exhaustions yield `holds = None` with a diagnostic.

use crate::automaton::{LocId, Sync as EdgeSync, TaNetwork};
use crate::dbm::{Dbm, MAX_BOUND};
use crate::translate::Translation;
use rlse_core::telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One expected-output specification for Query 1.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// Circuit-output wire name (for diagnostics).
    pub wire: String,
    /// The `fta_end` locations (automaton index, location) feeding the wire.
    pub ends: Vec<(usize, LocId)>,
    /// Allowed firing instants, in scaled model time units.
    pub allowed: Vec<i64>,
}

/// A query over the network.
#[derive(Debug, Clone)]
pub enum McQuery {
    /// Query 2: none of these locations is reachable.
    NoErrorState(Vec<(usize, LocId)>),
    /// Query 1: outputs fire only at the listed instants.
    OutputsOnlyAt(Vec<OutputSpec>),
}

impl McQuery {
    /// Build Query 1 from a translation plus the expected pulse times (in
    /// picoseconds) per circuit-output wire.
    pub fn query1(tr: &Translation, expected: &[(&str, Vec<f64>)]) -> Self {
        let scale = tr.net.scale;
        let specs = tr
            .output_ends
            .iter()
            .map(|(wire, ends)| {
                let allowed = expected
                    .iter()
                    .find(|(n, _)| n == wire)
                    .map(|(_, ts)| {
                        ts.iter()
                            .map(|t| (t * scale as f64).round() as i64)
                            .collect()
                    })
                    .unwrap_or_default();
                OutputSpec {
                    wire: wire.clone(),
                    ends: ends.clone(),
                    allowed,
                }
            })
            .collect();
        McQuery::OutputsOnlyAt(specs)
    }

    /// Build Query 2 from a translation.
    pub fn query2(tr: &Translation) -> Self {
        McQuery::NoErrorState(tr.error_locations.clone())
    }

    /// Build a query from its netlist-IR encoding: [`IrQuery::NoErrorState`]
    /// maps to Query 2 and [`IrQuery::OutputsOnlyAt`] to Query 1 with the
    /// listed expected pulse times.
    pub fn from_ir(tr: &Translation, q: &rlse_core::ir::IrQuery) -> Self {
        match q {
            rlse_core::ir::IrQuery::NoErrorState => McQuery::query2(tr),
            rlse_core::ir::IrQuery::OutputsOnlyAt { outputs } => {
                let expected: Vec<(&str, Vec<f64>)> = outputs
                    .iter()
                    .map(|(n, ts)| (n.as_str(), ts.clone()))
                    .collect();
                McQuery::query1(tr, &expected)
            }
        }
    }
}

/// Structured exploration statistics of one model-checking run. Every field
/// is a pure function of `(net, query, opts.max_states)` — bit-identical at
/// any thread count — so these are the numbers flushed into a
/// [`Telemetry`] handle and compared in determinism tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Number of distinct (location vector, zone) states accepted into the
    /// store, including states later evicted by a subsuming zone.
    pub states: usize,
    /// Peak number of zones simultaneously live in the passed/waiting store
    /// (sampled at level boundaries) — the checker's memory high-water mark
    /// in states.
    pub peak_store: usize,
    /// BFS levels explored (the zone graph's maximal BFS depth reached).
    pub levels: u32,
    /// Successor candidates generated by the expand phase.
    pub candidates: u64,
    /// Candidates dropped because a stored zone already included them.
    pub subsumed: u64,
    /// Stored zones evicted by a larger accepted candidate.
    pub evicted: u64,
    /// Same-level accepted entries killed before expansion (the eviction
    /// caught them between accept and the next frontier).
    pub killed: u64,
    /// Store shards holding at least one live zone when the run ended.
    pub occupied_shards: usize,
    /// Live zones in the fullest shard when the run ended.
    pub max_shard_live: usize,
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct McResult {
    /// `Some(true)` if the property holds, `Some(false)` with a diagnostic
    /// if it fails, `None` if a state/time budget was exhausted first (the
    /// paper's `∞` rows) or the model was refused (see [`McResult::diagnostic`]).
    pub holds: Option<bool>,
    /// Wall-clock verification time in seconds.
    pub time_secs: f64,
    /// Human-readable description of the first violation found, if any.
    pub violation: Option<String>,
    /// For a failed property: the action sequence from the initial state to
    /// the violating state (UPPAAL-style counterexample trace).
    pub trace: Option<Vec<String>>,
    /// Qualifies unusual verdicts: a vacuous pass (empty initial zone), a
    /// refused model (unencodable bounds), or which budget was exhausted.
    /// `None` for an ordinary verdict.
    pub diagnostic: Option<String>,
    /// Structured exploration statistics (states, peak store, subsumption
    /// counters, shard occupancy).
    pub stats: McStats,
}

impl McResult {
    /// States accepted into the store (shorthand for `stats.states`).
    pub fn states(&self) -> usize {
        self.stats.states
    }

    /// Peak live-zone store size (shorthand for `stats.peak_store`).
    pub fn peak_store(&self) -> usize {
        self.stats.peak_store
    }
}

/// Configuration for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct McOptions {
    /// Abort (result `holds = None`) after exploring this many states.
    pub max_states: usize,
    /// Abort (result `holds = None`) after this much wall-clock time in
    /// seconds — large networks can exhaust memory long before the state
    /// budget (the paper reports such designs as `∞`).
    pub max_seconds: f64,
    /// Worker thread count: `0` uses the machine's available parallelism,
    /// `1` runs the identical algorithm inline without spawning. The
    /// verdict, state count, and counterexample are the same at any value —
    /// exploration order is deterministic by construction.
    pub threads: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            max_states: 2_000_000,
            max_seconds: 600.0,
            threads: 0,
        }
    }
}

/// How a state was reached, for counterexample reconstruction.
#[derive(Debug, Clone, Copy)]
enum Action {
    Init,
    Tau { automaton: u32 },
    Sync { sender: u32, receiver: u32, chan: u32 },
}

/// Number of store shards (must be a power of two for the mask below).
const SHARDS: usize = 64;

/// FNV-1a over the location vector, folded to a shard index.
fn shard_of(locs: &[u32]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in locs {
        h ^= u64::from(l);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & (SHARDS as u64 - 1)) as usize
}

/// A stored zone, stamped with the level and per-level accept index that
/// produced it so same-level eviction can kill the not-yet-expanded entry.
struct BucketZone {
    zone: Arc<Dbm>,
    level: u32,
    lidx: u32,
}

/// One shard of the passed/waiting store: interned location vectors plus
/// their zone buckets.
#[derive(Default)]
struct Shard {
    intern: HashMap<Box<[u32]>, u32>,
    vecs: Vec<Box<[u32]>>,
    buckets: Vec<Vec<BucketZone>>,
    /// Zones currently stored across all buckets of this shard.
    live: usize,
}

/// Compact per-state record for counterexample reconstruction: no zone, just
/// the interned location id, the parent pointer, and the global-clock range
/// captured at accept time (`ghi == i64::MIN` means unbounded or absent).
struct ArenaEntry {
    shard: u32,
    local: u32,
    parent: u32,
    action: Action,
    glo: i64,
    ghi: i64,
}

/// A frontier state awaiting expansion.
struct Frontier {
    state: u32,
    locs: Box<[u32]>,
    zone: Arc<Dbm>,
}

/// A successor candidate produced by the expand phase.
struct Cand {
    shard: u32,
    locs: Box<[u32]>,
    zone: Arc<Dbm>,
    parent: u32,
    action: Action,
}

/// Per-shard accept record for one level.
struct LocalAcc {
    cand: u32,
    local: u32,
    alive: bool,
    violation: Option<String>,
}

/// One shard's output for one level: the accepted zones plus the tallies
/// of candidates dropped by subsumption, stored zones evicted, and
/// same-level accepts killed before expansion (see [`McStats`]).
#[derive(Default)]
struct ShardOut {
    accs: Vec<LocalAcc>,
    subsumed: u64,
    evicted: u64,
    killed: u64,
}

/// Run `f(0..units)` across a deterministic scoped thread pool, returning
/// the per-unit results **in unit order** regardless of which thread ran
/// which unit. `threads <= 1` (or a single unit) runs inline.
fn run_units<T, F>(threads: usize, units: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + std::marker::Sync,
{
    if threads <= 1 || units <= 1 {
        return (0..units).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..units).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(units) {
            scope.spawn(|| loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                if u >= units {
                    break;
                }
                let out = f(u);
                *slots[u].lock().expect("unit slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unit slot poisoned")
                .expect("every unit index is claimed exactly once")
        })
        .collect()
}

/// Read-only exploration context: the network plus precomputed edge indices.
struct Engine<'n> {
    net: &'n TaNetwork,
    max_consts: Vec<i64>,
    /// Per automaton: which locations are committed.
    committed: Vec<Vec<bool>>,
    /// `tau[aut][loc]` — indices of τ edges leaving `loc`.
    tau: Vec<Vec<Vec<u32>>>,
    /// `send[aut][loc]` — `(channel, edge index)` of sends leaving `loc`.
    send: Vec<Vec<Vec<(u32, u32)>>>,
    /// `recv[aut][loc]` — `(channel, edge index)` of receives leaving `loc`.
    recv: Vec<Vec<Vec<(u32, u32)>>>,
    /// `recv_aut[chan]` — automata with at least one receive on `chan`.
    recv_aut: Vec<Vec<u32>>,
    /// Words per clock bitset.
    clock_words: usize,
    /// `active[aut][loc]` — bitset of clocks automaton `aut` may read
    /// (guard or invariant) before resetting them, starting from `loc`.
    active: Vec<Vec<Box<[u64]>>>,
    /// The global clock (0-based), exempt from freeing: queries read it.
    global: Option<usize>,
}

/// Per-location clock activity of one automaton (Daws–Yovine): clock `c` is
/// active at `l` when some path from `l` reads `c` (in an invariant or
/// guard) before this automaton resets it. Backward fixpoint over the
/// automaton's edge graph.
fn clock_activity(a: &crate::automaton::Automaton, words: usize) -> Vec<Box<[u64]>> {
    let set = |m: &mut [u64], c: usize| m[c / 64] |= 1u64 << (c % 64);
    let mut act: Vec<Box<[u64]>> = a
        .locations
        .iter()
        .map(|_| vec![0u64; words].into_boxed_slice())
        .collect();
    loop {
        let mut changed = false;
        for (li, l) in a.locations.iter().enumerate() {
            let mut new = vec![0u64; words].into_boxed_slice();
            for c in &l.invariant {
                set(&mut new, c.clock.0);
            }
            for e in &a.edges {
                if e.src.0 != li {
                    continue;
                }
                for c in &e.guard {
                    set(&mut new, c.clock.0);
                }
                let mut inherited = act[e.dst.0].clone();
                for r in &e.resets {
                    inherited[r.0 / 64] &= !(1u64 << (r.0 % 64));
                }
                for (w, i) in new.iter_mut().zip(inherited.iter()) {
                    *w |= i;
                }
            }
            if new != act[li] {
                act[li] = new;
                changed = true;
            }
        }
        if !changed {
            return act;
        }
    }
}

fn apply_guard(z: &mut Dbm, guard: &[crate::automaton::Constraint]) -> bool {
    for c in guard {
        if !z.constrain_clock(c.clock.0 + 1, c.rel, c.bound as i32) {
            return false;
        }
    }
    true
}

impl<'n> Engine<'n> {
    fn new(net: &'n TaNetwork, extra_global_const: i64) -> Self {
        let mut max_consts = net.max_constants();
        if let Some(g) = net.global_clock {
            max_consts[g.0] = max_consts[g.0].max(extra_global_const);
        }
        let committed = net
            .automata
            .iter()
            .map(|a| a.locations.iter().map(|l| l.committed).collect())
            .collect();
        let mut tau = Vec::with_capacity(net.automata.len());
        let mut send = Vec::with_capacity(net.automata.len());
        let mut recv = Vec::with_capacity(net.automata.len());
        let mut recv_aut: Vec<Vec<u32>> = vec![Vec::new(); net.chan_names.len()];
        for (ai, a) in net.automata.iter().enumerate() {
            let mut t = vec![Vec::new(); a.locations.len()];
            let mut s = vec![Vec::new(); a.locations.len()];
            let mut r = vec![Vec::new(); a.locations.len()];
            let mut receives = vec![false; net.chan_names.len()];
            for (ei, e) in a.edges.iter().enumerate() {
                match e.sync {
                    EdgeSync::Tau => t[e.src.0].push(ei as u32),
                    EdgeSync::Send(ch) => s[e.src.0].push((ch.0 as u32, ei as u32)),
                    EdgeSync::Recv(ch) => {
                        r[e.src.0].push((ch.0 as u32, ei as u32));
                        receives[ch.0] = true;
                    }
                }
            }
            for (ch, &has) in receives.iter().enumerate() {
                if has {
                    recv_aut[ch].push(ai as u32);
                }
            }
            tau.push(t);
            send.push(s);
            recv.push(r);
        }
        let clock_words = net.clock_names.len().div_ceil(64);
        let active = net
            .automata
            .iter()
            .map(|a| clock_activity(a, clock_words))
            .collect();
        Engine {
            net,
            max_consts,
            committed,
            tau,
            send,
            recv,
            recv_aut,
            clock_words,
            active,
            global: net.global_clock.map(|g| g.0),
        }
    }

    /// Active-clock reduction: free every clock (except the global one) no
    /// automaton can read again before resetting it. Dead clock values
    /// cannot influence any future transition or query, so freeing them is
    /// exact for location reachability and global-clock ranges — it merges
    /// states that differ only in dead dimensions (fewer states, smaller
    /// store) and leaves `INF` rows that the O(dim³) re-canonicalization in
    /// extrapolation skips.
    fn free_inactive_clocks(&self, locs: &[u32], z: &mut Dbm) {
        let mut used = vec![0u64; self.clock_words];
        for (ai, &l) in locs.iter().enumerate() {
            for (w, a) in used.iter_mut().zip(self.active[ai][l as usize].iter()) {
                *w |= a;
            }
        }
        for c in 0..self.net.clock_names.len() {
            if self.global == Some(c) {
                continue;
            }
            if used[c / 64] & (1u64 << (c % 64)) == 0 {
                z.free(c + 1);
            }
        }
    }

    fn apply_invariants(&self, locs: &[u32], z: &mut Dbm) -> bool {
        for (ai, a) in self.net.automata.iter().enumerate() {
            for c in &a.locations[locs[ai] as usize].invariant {
                if !z.constrain_clock(c.clock.0 + 1, c.rel, c.bound as i32) {
                    return false;
                }
            }
        }
        true
    }

    /// Finalize a successor zone: invariants, delay closure, invariants
    /// again, extrapolation. Returns `None` if empty.
    fn close(&self, locs: &[u32], mut z: Dbm) -> Option<Dbm> {
        if !self.apply_invariants(locs, &mut z) {
            return None;
        }
        z.up();
        if !self.apply_invariants(locs, &mut z) {
            return None;
        }
        self.free_inactive_clocks(locs, &mut z);
        z.extrapolate(&self.max_consts);
        if z.is_empty() {
            None
        } else {
            Some(z)
        }
    }

    /// Emit every successor of `(locs, zone)` into `out`, in a fixed order
    /// (τ edges by automaton then edge index, syncs by sender/receiver/edge
    /// index) so the global candidate order is deterministic.
    ///
    /// Committed semantics (UPPAAL): while any automaton sits in a committed
    /// location, only transitions involving a committed automaton may fire —
    /// this removes the useless interleavings through zero-duration fire
    /// chains that otherwise blow up the state space.
    fn expand_state(&self, locs: &[u32], zone: &Dbm, parent: u32, out: &mut Vec<Cand>) {
        let any_committed = locs
            .iter()
            .enumerate()
            .any(|(ai, &l)| self.committed[ai][l as usize]);
        let committed_at = |ai: usize| self.committed[ai][locs[ai] as usize];
        // Internal (τ) edges.
        for (ai, a) in self.net.automata.iter().enumerate() {
            if any_committed && !committed_at(ai) {
                continue;
            }
            for &ei in &self.tau[ai][locs[ai] as usize] {
                let e = &a.edges[ei as usize];
                let mut nz = zone.clone();
                if !apply_guard(&mut nz, &e.guard) {
                    continue;
                }
                for r in &e.resets {
                    nz.reset(r.0 + 1);
                }
                let mut nl = locs.to_vec();
                nl[ai] = e.dst.0 as u32;
                if let Some(nz) = self.close(&nl, nz) {
                    out.push(Cand {
                        shard: shard_of(&nl) as u32,
                        locs: nl.into_boxed_slice(),
                        zone: Arc::new(nz),
                        parent,
                        action: Action::Tau { automaton: ai as u32 },
                    });
                }
            }
        }
        // Channel synchronizations: each send pairs with every receiver that
        // currently has a matching receive edge.
        for (ai, a) in self.net.automata.iter().enumerate() {
            for &(ch, ei) in &self.send[ai][locs[ai] as usize] {
                let e1 = &a.edges[ei as usize];
                for &bi in &self.recv_aut[ch as usize] {
                    let bi = bi as usize;
                    if bi == ai {
                        continue;
                    }
                    if any_committed && !committed_at(ai) && !committed_at(bi) {
                        continue;
                    }
                    for &(ch2, e2i) in &self.recv[bi][locs[bi] as usize] {
                        if ch2 != ch {
                            continue;
                        }
                        let e2 = &self.net.automata[bi].edges[e2i as usize];
                        let mut nz = zone.clone();
                        if !apply_guard(&mut nz, &e1.guard) || !apply_guard(&mut nz, &e2.guard)
                        {
                            continue;
                        }
                        for r in e1.resets.iter().chain(&e2.resets) {
                            nz.reset(r.0 + 1);
                        }
                        let mut nl = locs.to_vec();
                        nl[ai] = e1.dst.0 as u32;
                        nl[bi] = e2.dst.0 as u32;
                        if let Some(nz) = self.close(&nl, nz) {
                            out.push(Cand {
                                shard: shard_of(&nl) as u32,
                                locs: nl.into_boxed_slice(),
                                zone: Arc::new(nz),
                                parent,
                                action: Action::Sync {
                                    sender: ai as u32,
                                    receiver: bi as u32,
                                    chan: ch,
                                },
                            });
                        }
                    }
                }
            }
        }
    }
}

/// The global-clock range of a zone as `(lo, hi)` with `i64::MIN` standing
/// in for "unbounded" (`hi`) or "no global clock" (`lo`).
fn grange(g_idx: Option<usize>, z: &Dbm) -> (i64, i64) {
    match g_idx {
        None => (i64::MIN, i64::MIN),
        Some(g) => {
            let (lo, hi) = z.clock_range(g);
            (lo, hi.unwrap_or(i64::MIN))
        }
    }
}

/// Reconstruct the action trace leading to arena entry `idx`.
fn trace_to(
    net: &TaNetwork,
    shards: &[Mutex<Shard>],
    arena: &[ArenaEntry],
    idx: u32,
) -> Vec<String> {
    let mut steps = Vec::new();
    let mut cur = idx;
    loop {
        let e = &arena[cur as usize];
        let locs = shards[e.shard as usize]
            .lock()
            .expect("shard poisoned")
            .vecs[e.local as usize]
            .clone();
        let when = if e.glo == i64::MIN {
            String::new()
        } else if e.ghi == e.glo {
            format!(" @ global={}", e.glo)
        } else {
            format!(" @ global>={}", e.glo)
        };
        let name = |ai: u32| {
            let ai = ai as usize;
            format!(
                "{}.{}",
                net.automata[ai].name,
                net.automata[ai].locations[locs[ai] as usize].name
            )
        };
        match e.action {
            Action::Init => steps.push("initial state".to_string()),
            Action::Tau { automaton } => steps.push(format!("tau -> {}{when}", name(automaton))),
            Action::Sync { sender, receiver, chan } => steps.push(format!(
                "{}! : {} -> {}{when}",
                net.chan_names[chan as usize],
                name(sender),
                name(receiver)
            )),
        }
        if e.parent == u32::MAX {
            break;
        }
        cur = e.parent;
    }
    steps.reverse();
    steps
}

/// Final store occupancy, for [`McStats`] and the budget diagnostics.
struct StoreOccupancy {
    live: usize,
    occupied: usize,
    min: usize,
    max: usize,
}

impl StoreOccupancy {
    fn mean(&self) -> usize {
        self.live.checked_div(self.occupied).unwrap_or(0)
    }
}

fn store_occupancy(shards: &mut [Mutex<Shard>]) -> StoreOccupancy {
    let (mut live, mut occupied, mut min, mut max) = (0usize, 0usize, usize::MAX, 0usize);
    for s in shards.iter_mut() {
        let l = s.get_mut().expect("shard poisoned").live;
        if l > 0 {
            live += l;
            occupied += 1;
            min = min.min(l);
            max = max.max(l);
        }
    }
    StoreOccupancy {
        live,
        occupied,
        min: if occupied == 0 { 0 } else { min },
        max,
    }
}

/// Model-check `query` over `net` by deterministic parallel zone-graph
/// exploration (see the module docs for the engine's phase structure).
pub fn check(net: &TaNetwork, query: &McQuery, opts: McOptions) -> McResult {
    check_with_telemetry(net, query, opts, None)
}

/// Like [`check`], additionally flushing into a [`Telemetry`] handle: the
/// deterministic `mc.*` counters and store peaks from [`McStats`], plus
/// per-level `mc.expand`/`mc.insert`/`mc.merge` spans and one `mc.check`
/// span for the whole run on timeline track 0.
pub fn check_with_telemetry(
    net: &TaNetwork,
    query: &McQuery,
    opts: McOptions,
    tel: Option<&Telemetry>,
) -> McResult {
    let tel = tel.filter(|t| t.is_enabled());
    let t0 = tel.and_then(Telemetry::now);
    let r = check_inner(net, query, opts, tel);
    if let Some(t) = tel {
        t.add_many(&[
            ("mc.runs", 1),
            ("mc.states", r.stats.states as u64),
            ("mc.levels", u64::from(r.stats.levels)),
            ("mc.candidates", r.stats.candidates),
            ("mc.subsumed", r.stats.subsumed),
            ("mc.evicted", r.stats.evicted),
            ("mc.killed", r.stats.killed),
        ]);
        if r.holds == Some(false) {
            t.add("mc.violations", 1);
        }
        t.peak("mc.peak_store", r.stats.peak_store as u64);
        t.peak("mc.occupied_shards", r.stats.occupied_shards as u64);
        t.peak("mc.max_shard_live", r.stats.max_shard_live as u64);
        if let Some(started) = t0 {
            t.record_span("mc.check", 0, started, r.stats.states as u64);
        }
    }
    r
}

fn check_inner(
    net: &TaNetwork,
    query: &McQuery,
    opts: McOptions,
    tel: Option<&Telemetry>,
) -> McResult {
    let start = Instant::now();
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };

    // Refuse models whose constants cannot be encoded, instead of silently
    // wrapping `bound as i32` into a wrong verdict.
    if let Some((ai, c)) = net.find_unencodable_bound(MAX_BOUND as i64) {
        return McResult {
            holds: None,
            time_secs: start.elapsed().as_secs_f64(),
            violation: None,
            trace: None,
            diagnostic: Some(format!(
                "clock bound '{c}' in automaton '{}' exceeds the encodable range ±{MAX_BOUND}; \
                 rescale the model (no verdict)",
                net.automata[ai].name
            )),
            stats: McStats::default(),
        };
    }
    // Make sure the global clock stays concrete up to the latest expected
    // output instant, so Query 1 can pin exact times.
    let extra = match query {
        McQuery::OutputsOnlyAt(specs) => specs
            .iter()
            .flat_map(|s| s.allowed.iter().copied())
            .max()
            .unwrap_or(0),
        McQuery::NoErrorState(_) => 0,
    };
    if extra.abs() > MAX_BOUND as i64 {
        return McResult {
            holds: None,
            time_secs: start.elapsed().as_secs_f64(),
            violation: None,
            trace: None,
            diagnostic: Some(format!(
                "expected output instant {extra} exceeds the encodable range ±{MAX_BOUND}; \
                 rescale the model (no verdict)"
            )),
            stats: McStats::default(),
        };
    }

    let engine = Engine::new(net, extra);
    let g_idx = net.global_clock.map(|g| g.0 + 1);

    let violation = |locs: &[u32], z: &Dbm| -> Option<String> {
        match query {
            McQuery::NoErrorState(errs) => {
                for &(ai, li) in errs {
                    if locs[ai] as usize == li.0 {
                        return Some(format!(
                            "error state {}.{} is reachable",
                            net.automata[ai].name, net.automata[ai].locations[li.0].name
                        ));
                    }
                }
                None
            }
            McQuery::OutputsOnlyAt(specs) => {
                let g = g_idx?;
                for spec in specs {
                    for &(ai, li) in &spec.ends {
                        if locs[ai] as usize != li.0 {
                            continue;
                        }
                        let (lo, hi) = z.clock_range(g);
                        let pinned = hi == Some(lo);
                        if !pinned || !spec.allowed.contains(&lo) {
                            return Some(format!(
                                "output '{}' fires at global time {}{} not in {:?}",
                                spec.wire,
                                lo,
                                if pinned { "" } else { "+" },
                                spec.allowed
                            ));
                        }
                    }
                }
                None
            }
        }
    };

    // Initial state. An empty initial zone means the initial invariants are
    // unsatisfiable: every safety property holds vacuously — say so instead
    // of reporting a clean pass.
    let init_locs: Vec<u32> = net.automata.iter().map(|a| a.init.0 as u32).collect();
    let Some(z0) = engine.close(&init_locs, Dbm::zero(net.clock_count())) else {
        return McResult {
            holds: Some(true),
            time_secs: start.elapsed().as_secs_f64(),
            violation: None,
            trace: None,
            diagnostic: Some(
                "vacuous: the initial zone is empty (conflicting invariants at the initial \
                 locations); every safety property holds trivially"
                    .to_string(),
            ),
            stats: McStats::default(),
        };
    };
    let z0 = Arc::new(z0);

    let mut shards: Vec<Mutex<Shard>> = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
    let mut arena: Vec<ArenaEntry> = Vec::new();
    let mut stats = McStats {
        peak_store: 1,
        ..McStats::default()
    };

    let s0 = shard_of(&init_locs);
    {
        let sh = shards[s0].get_mut().expect("shard poisoned");
        sh.intern
            .insert(init_locs.clone().into_boxed_slice(), 0);
        sh.vecs.push(init_locs.clone().into_boxed_slice());
        sh.buckets.push(vec![BucketZone {
            zone: z0.clone(),
            level: 0,
            lidx: 0,
        }]);
        sh.live = 1;
    }
    let (glo, ghi) = grange(g_idx, &z0);
    arena.push(ArenaEntry {
        shard: s0 as u32,
        local: 0,
        parent: u32::MAX,
        action: Action::Init,
        glo,
        ghi,
    });
    if let Some(v) = violation(&init_locs, &z0) {
        let occ = store_occupancy(&mut shards);
        stats.states = 1;
        stats.occupied_shards = occ.occupied;
        stats.max_shard_live = occ.max;
        return McResult {
            holds: Some(false),
            time_secs: start.elapsed().as_secs_f64(),
            violation: Some(v),
            trace: Some(trace_to(net, &shards, &arena, 0)),
            diagnostic: None,
            stats,
        };
    }

    let aborted = AtomicBool::new(false);
    let mut frontier = vec![Frontier {
        state: 0,
        locs: init_locs.into_boxed_slice(),
        zone: z0,
    }];
    let mut level: u32 = 0;

    while !frontier.is_empty() {
        level += 1;
        if arena.len() >= opts.max_states {
            let occ = store_occupancy(&mut shards);
            stats.states = arena.len();
            stats.levels = level;
            return McResult {
                holds: None,
                time_secs: start.elapsed().as_secs_f64(),
                violation: None,
                trace: None,
                diagnostic: Some(format!(
                    "state budget ({}) exhausted after {:.1} s at level {}: {} zones live \
                     across {}/{} shards (per-shard min {}, mean {:.1}, max {})",
                    opts.max_states,
                    start.elapsed().as_secs_f64(),
                    level,
                    occ.live,
                    occ.occupied,
                    SHARDS,
                    occ.min,
                    occ.mean(),
                    occ.max
                )),
                stats,
            };
        }

        // Phase A: expand the frontier in parallel units; flatten in unit
        // order so the candidate order is deterministic.
        let t_expand = tel.and_then(|t| t.now());
        let unit_size = frontier
            .len()
            .div_ceil((threads * 4).max(1))
            .max(1);
        let units = frontier.len().div_ceil(unit_size);
        let cand_lists = run_units(threads, units, |u| {
            let mut out = Vec::new();
            if aborted.load(Ordering::Relaxed) {
                return out;
            }
            let lo = u * unit_size;
            let hi = ((u + 1) * unit_size).min(frontier.len());
            for fe in &frontier[lo..hi] {
                if start.elapsed().as_secs_f64() > opts.max_seconds {
                    aborted.store(true, Ordering::Relaxed);
                    break;
                }
                engine.expand_state(&fe.locs, &fe.zone, fe.state, &mut out);
            }
            out
        });
        if aborted.load(Ordering::Relaxed) {
            let occ = store_occupancy(&mut shards);
            stats.states = arena.len();
            stats.levels = level;
            return McResult {
                holds: None,
                time_secs: start.elapsed().as_secs_f64(),
                violation: None,
                trace: None,
                diagnostic: Some(format!(
                    "time budget ({}s) exhausted after {:.1} s at level {}: {} zones live \
                     across {}/{} shards (per-shard min {}, mean {:.1}, max {})",
                    opts.max_seconds,
                    start.elapsed().as_secs_f64(),
                    level,
                    occ.live,
                    occ.occupied,
                    SHARDS,
                    occ.min,
                    occ.mean(),
                    occ.max
                )),
                stats,
            };
        }
        if let (Some(t), Some(t0)) = (tel, t_expand) {
            t.record_span("mc.expand", 0, t0, frontier.len() as u64);
        }
        let cands: Vec<Cand> = cand_lists.into_iter().flatten().collect();
        stats.candidates += cands.len() as u64;

        // Phase B: partition candidates by shard; process each shard's
        // candidates in global candidate order (subsumption is per-location
        // vector, hence shard-local, so this is scheduling-independent).
        let t_insert = tel.and_then(|t| t.now());
        let mut shard_cands: Vec<Vec<u32>> = vec![Vec::new(); SHARDS];
        for (i, c) in cands.iter().enumerate() {
            shard_cands[c.shard as usize].push(i as u32);
        }
        let active: Vec<u32> = (0..SHARDS as u32)
            .filter(|&s| !shard_cands[s as usize].is_empty())
            .collect();
        let acc_lists = run_units(threads, active.len(), |u| {
            let s = active[u] as usize;
            let mut guard = shards[s].lock().expect("shard poisoned");
            let sh = &mut *guard;
            let mut out = ShardOut::default();
            for &ci in &shard_cands[s] {
                let cand = &cands[ci as usize];
                let local = match sh.intern.get(&cand.locs) {
                    Some(&l) => l,
                    None => {
                        let l = sh.vecs.len() as u32;
                        sh.intern.insert(cand.locs.clone(), l);
                        sh.vecs.push(cand.locs.clone());
                        sh.buckets.push(Vec::new());
                        l
                    }
                };
                let bucket = &mut sh.buckets[local as usize];
                if bucket.iter().any(|b| b.zone.includes(&cand.zone)) {
                    out.subsumed += 1;
                    continue;
                }
                let before = bucket.len();
                bucket.retain(|b| {
                    let evicted = cand.zone.includes(&b.zone);
                    if evicted && b.level == level {
                        // Accepted earlier this level but not yet expanded:
                        // kill it so it never reaches the next frontier.
                        out.accs[b.lidx as usize].alive = false;
                        out.killed += 1;
                    }
                    !evicted
                });
                out.evicted += (before - bucket.len()) as u64;
                sh.live -= before - bucket.len();
                let lidx = out.accs.len() as u32;
                bucket.push(BucketZone {
                    zone: cand.zone.clone(),
                    level,
                    lidx,
                });
                sh.live += 1;
                out.accs.push(LocalAcc {
                    cand: ci,
                    local,
                    alive: true,
                    violation: violation(&cand.locs, &cand.zone),
                });
            }
            out
        });
        if let (Some(t), Some(t0)) = (tel, t_insert) {
            t.record_span("mc.insert", 0, t0, cands.len() as u64);
        }

        // Phase C: sequential merge in candidate order — assign arena ids,
        // pick the minimum-index violation, build the next frontier.
        let t_merge = tel.and_then(|t| t.now());
        let mut all: Vec<(u32, LocalAcc)> = Vec::new();
        for (u, sh_out) in acc_lists.into_iter().enumerate() {
            let s = active[u];
            stats.subsumed += sh_out.subsumed;
            stats.evicted += sh_out.evicted;
            stats.killed += sh_out.killed;
            for a in sh_out.accs {
                all.push((s, a));
            }
        }
        all.sort_by_key(|(_, a)| a.cand);
        let mut best_violation: Option<(u32, String)> = None;
        let mut next_frontier = Vec::new();
        for (s, mut acc) in all {
            let cand = &cands[acc.cand as usize];
            let id = arena.len() as u32;
            let (glo, ghi) = grange(g_idx, &cand.zone);
            arena.push(ArenaEntry {
                shard: s,
                local: acc.local,
                parent: cand.parent,
                action: cand.action,
                glo,
                ghi,
            });
            if best_violation.is_none() {
                if let Some(v) = acc.violation.take() {
                    best_violation = Some((id, v));
                }
            }
            if acc.alive && best_violation.is_none() {
                next_frontier.push(Frontier {
                    state: id,
                    locs: cand.locs.clone(),
                    zone: cand.zone.clone(),
                });
            }
        }
        let occ = store_occupancy(&mut shards);
        stats.peak_store = stats.peak_store.max(occ.live);
        stats.occupied_shards = stats.occupied_shards.max(occ.occupied);
        stats.max_shard_live = stats.max_shard_live.max(occ.max);
        if let (Some(t), Some(t0)) = (tel, t_merge) {
            t.record_span("mc.merge", 0, t0, arena.len() as u64);
        }

        if let Some((id, v)) = best_violation {
            stats.states = arena.len();
            stats.levels = level;
            return McResult {
                holds: Some(false),
                time_secs: start.elapsed().as_secs_f64(),
                violation: Some(v),
                trace: Some(trace_to(net, &shards, &arena, id)),
                diagnostic: None,
                stats,
            };
        }
        frontier = next_frontier;
    }

    stats.states = arena.len();
    stats.levels = level;
    McResult {
        holds: Some(true),
        time_secs: start.elapsed().as_secs_f64(),
        violation: None,
        trace: None,
        diagnostic: None,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Automaton, ClockId, Constraint, LocKind, Location};
    use crate::dbm::Rel;
    use crate::translate::translate_machine;
    use rlse_cells::defs;

    #[test]
    fn jtl_query1_holds_for_correct_times() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0, 20.0])], 10).unwrap();
        // Output q fires at 15.7 and 25.7.
        let q1 = McQuery::query1(&tr, &[("q", vec![15.7, 25.7])]);
        let r = check(&tr.net, &q1, McOptions::default());
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
        assert!(r.states() > 0);
        assert!(r.peak_store() > 0 && r.peak_store() <= r.states());
    }

    #[test]
    fn jtl_query1_fails_for_wrong_times() {
        let tr = translate_machine(&defs::jtl_elem(), &[("a", vec![10.0])], 10).unwrap();
        let q1 = McQuery::query1(&tr, &[("q", vec![16.0])]);
        let r = check(&tr.net, &q1, McOptions::default());
        assert_eq!(r.holds, Some(false));
        assert!(r.violation.unwrap().contains("157"));
    }

    #[test]
    fn and_query2_holds_for_safe_inputs() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let r = check(&tr.net, &q2, McOptions::default());
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
        assert!(r.diagnostic.is_none());
    }

    #[test]
    fn and_query2_detects_setup_violation() {
        // b at 49, clk at 50: violates the 2.8 setup distance.
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![49.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let r = check(&tr.net, &q2, McOptions::default());
        assert_eq!(r.holds, Some(false));
        assert!(r.violation.unwrap().contains("err_b_s"));
    }

    #[test]
    fn and_query1_matches_simulation() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q1 = McQuery::query1(&tr, &[("q", vec![59.2])]);
        let r = check(&tr.net, &q1, McOptions::default());
        assert_eq!(r.holds, Some(true), "{:?}", r.violation);
    }

    #[test]
    fn violations_come_with_counterexample_traces() {
        // b at 49, clk at 50 violates setup; the trace must walk from the
        // initial state through the b and clk stimulus synchronizations to
        // the error location.
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![49.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let r = check(&tr.net, &McQuery::query2(&tr), McOptions::default());
        assert_eq!(r.holds, Some(false));
        let trace = r.trace.expect("counterexample trace");
        assert_eq!(trace.first().map(String::as_str), Some("initial state"));
        let text = trace.join("\n");
        assert!(text.contains("err_b_s"), "{text}");
        assert!(text.contains("global>=500"), "{text}");
        // Every step after the first is an action.
        assert!(trace.len() >= 3, "{trace:?}");
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let r = check(
            &tr.net,
            &q2,
            McOptions {
                max_states: 3,
                max_seconds: 10.0,
                threads: 1,
            },
        );
        assert_eq!(r.holds, None);
        let diag = r.diagnostic.unwrap();
        assert!(diag.contains("state budget"), "{diag}");
        // The diagnostic reports elapsed wall-clock and store occupancy.
        assert!(diag.contains(" s at level "), "{diag}");
        assert!(diag.contains("zones live"), "{diag}");
        assert!(diag.contains("shards"), "{diag}");
    }

    #[test]
    fn telemetry_report_is_identical_across_thread_counts() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![30.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        let q2 = McQuery::query2(&tr);
        let report_at = |threads: usize| {
            let tel = Telemetry::new();
            let opts = McOptions { threads, ..Default::default() };
            let r = check_with_telemetry(&tr.net, &q2, opts, Some(&tel));
            assert_eq!(r.holds, Some(true), "{:?}", r.violation);
            tel.report()
        };
        let seq = report_at(1);
        let par = report_at(4);
        assert_eq!(seq, par);
        assert_eq!(seq.to_json(), par.to_json());
        assert_eq!(seq.counter("mc.runs"), 1);
        assert!(seq.counter("mc.states") > 0);
        // Every stored state except the initial one was once a candidate.
        assert!(seq.counter("mc.candidates") + 1 >= seq.counter("mc.states"));
        assert!(seq.gauge("mc.peak_store") > 0);
    }

    #[test]
    fn sequential_and_parallel_runs_are_identical() {
        let tr = translate_machine(
            &defs::and_elem(),
            &[("a", vec![20.0]), ("b", vec![49.0]), ("clk", vec![50.0])],
            10,
        )
        .unwrap();
        for query in [
            McQuery::query2(&tr),
            McQuery::query1(&tr, &[("q", vec![59.2])]),
        ] {
            let seq = check(&tr.net, &query, McOptions { threads: 1, ..Default::default() });
            let par = check(&tr.net, &query, McOptions { threads: 4, ..Default::default() });
            assert_eq!(seq.holds, par.holds);
            assert_eq!(seq.stats, par.stats);
            assert_eq!(seq.violation, par.violation);
            assert_eq!(seq.trace, par.trace);
        }
    }

    /// A single-location automaton whose invariant is the given constraint.
    fn one_loc_net(inv: Vec<Constraint>) -> TaNetwork {
        let mut net = TaNetwork::new(1);
        net.add_clock("c");
        net.automata.push(Automaton {
            name: "A".into(),
            init: LocId(0),
            locations: vec![Location {
                name: "l0".into(),
                invariant: inv,
                kind: LocKind::Normal,
                committed: false,
            }],
            edges: vec![],
        });
        net
    }

    #[test]
    fn vacuous_initial_zone_gets_a_diagnostic() {
        // Invariant c >= 5 is unsatisfiable at time 0: the initial zone is
        // empty and the "pass" must be flagged as vacuous.
        let net = one_loc_net(vec![Constraint::new(ClockId(0), Rel::Ge, 5)]);
        let r = check(&net, &McQuery::NoErrorState(vec![]), McOptions::default());
        assert_eq!(r.holds, Some(true));
        assert_eq!(r.states(), 0);
        assert!(r.diagnostic.unwrap().contains("vacuous"));
    }

    #[test]
    fn oversized_bounds_refuse_a_verdict() {
        // A bound beyond MAX_BOUND used to wrap in `bound as i32` encoding
        // (2m+1) and silently produce a wrong verdict; now the model is
        // refused with holds = None and a diagnostic.
        let net = one_loc_net(vec![Constraint::new(ClockId(0), Rel::Le, 1 << 30)]);
        let r = check(&net, &McQuery::NoErrorState(vec![]), McOptions::default());
        assert_eq!(r.holds, None);
        assert!(r.diagnostic.unwrap().contains("encodable"));
    }
}
