//! Networks of timed automata (Alur–Dill style, UPPAAL flavored): the
//! target of the PyLSE-Machine translation of the paper's §4.4.
//!
//! A [`TaNetwork`] is a parallel composition of [`Automaton`]s over a shared
//! pool of clocks and binary synchronization channels (`ch!` pairs with
//! `ch?`). Guards and invariants are conjunctions of diagonal-free clock
//! constraints `c ⋈ n` with integer bounds.

use crate::dbm::Rel;
use std::fmt;

/// Index of a clock in the network-wide clock pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub usize);

/// Index of a synchronization channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub usize);

/// Index of a location within one automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub usize);

/// One clock constraint `clock ⋈ bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The constrained clock.
    pub clock: ClockId,
    /// The relation.
    pub rel: Rel,
    /// Integer bound (already in model time units).
    pub bound: i64,
}

impl Constraint {
    /// Build a constraint.
    pub fn new(clock: ClockId, rel: Rel, bound: i64) -> Self {
        Constraint { clock, rel, bound }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.rel {
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Ge => ">=",
            Rel::Gt => ">",
            Rel::Eq => "==",
        };
        write!(f, "c{} {op} {}", self.clock.0, self.bound)
    }
}

/// A conjunction of clock constraints.
pub type Guard = Vec<Constraint>;

/// Edge synchronization action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sync {
    /// Internal action (no synchronization).
    Tau,
    /// Emit on a channel (`ch!`); pairs with a matching [`Sync::Recv`].
    Send(ChanId),
    /// Receive on a channel (`ch?`).
    Recv(ChanId),
}

/// What a location represents, for queries and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocKind {
    /// An ordinary location.
    Normal,
    /// A terminal error location (timing violation; Query 2 checks these
    /// are unreachable).
    Error,
    /// The `fta_end` location of a firing automaton, entered at the instant
    /// an output pulse is emitted (used by Query 1).
    FiringEnd,
}

/// A location with its invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Location {
    /// Display name (UPPAAL identifier).
    pub name: String,
    /// Clock invariant that must hold while control stays here.
    pub invariant: Guard,
    /// Role of this location.
    pub kind: LocKind,
    /// Committed (UPPAAL semantics): while any automaton is in a committed
    /// location, time may not pass and only committed automata may move.
    /// Used for the zero-duration fire chains so independent cells do not
    /// interleave through them.
    pub committed: bool,
}

/// A transition between locations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source location.
    pub src: LocId,
    /// Destination location.
    pub dst: LocId,
    /// Synchronization action.
    pub sync: Sync,
    /// Guard that must hold to take the edge.
    pub guard: Guard,
    /// Clocks reset to 0 when the edge is taken.
    pub resets: Vec<ClockId>,
}

/// One timed automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automaton {
    /// Display name (UPPAAL template/instance name).
    pub name: String,
    /// Initial location.
    pub init: LocId,
    /// Locations.
    pub locations: Vec<Location>,
    /// Edges.
    pub edges: Vec<Edge>,
}

impl Automaton {
    /// Edges leaving `loc`.
    pub fn edges_from(&self, loc: LocId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.src == loc)
    }
}

/// A network of timed automata with shared clocks and channels.
#[derive(Debug, Clone, Default)]
pub struct TaNetwork {
    /// The component automata, composed in parallel.
    pub automata: Vec<Automaton>,
    /// Clock names, indexed by [`ClockId`].
    pub clock_names: Vec<String>,
    /// Channel names, indexed by [`ChanId`].
    pub chan_names: Vec<String>,
    /// The global wall-clock (never reset), if the network has one.
    pub global_clock: Option<ClockId>,
    /// Time scale: model time units per picosecond (the paper upscales
    /// `209.2 ps` to the integer `2092`, i.e. scale 10).
    pub scale: i64,
}

impl TaNetwork {
    /// Create an empty network with the given integer time scale.
    pub fn new(scale: i64) -> Self {
        TaNetwork {
            scale,
            ..Default::default()
        }
    }

    /// Allocate a fresh clock.
    pub fn add_clock(&mut self, name: impl Into<String>) -> ClockId {
        self.clock_names.push(name.into());
        ClockId(self.clock_names.len() - 1)
    }

    /// Allocate a fresh channel.
    pub fn add_chan(&mut self, name: impl Into<String>) -> ChanId {
        self.chan_names.push(name.into());
        ChanId(self.chan_names.len() - 1)
    }

    /// Number of clocks.
    pub fn clock_count(&self) -> usize {
        self.clock_names.len()
    }

    /// Summary counts `(automata, locations, edges, channels)` — the
    /// UPPAAL columns of the paper's Table 3.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            automata: self.automata.len(),
            locations: self.automata.iter().map(|a| a.locations.len()).sum(),
            edges: self.automata.iter().map(|a| a.edges.len()).sum(),
            channels: self.chan_names.len(),
            clocks: self.clock_names.len(),
        }
    }

    /// Per-clock maximal constants (for extrapolation): the largest bound
    /// each clock is compared against anywhere in the network.
    pub fn max_constants(&self) -> Vec<i64> {
        let mut max = vec![0i64; self.clock_names.len()];
        let mut see = |g: &Guard| {
            for c in g {
                let m = &mut max[c.clock.0];
                *m = (*m).max(c.bound.abs());
            }
        };
        for a in &self.automata {
            for l in &a.locations {
                see(&l.invariant);
            }
            for e in &a.edges {
                see(&e.guard);
            }
        }
        max
    }

    /// The first constraint (in automaton order, invariants before edge
    /// guards) whose bound exceeds `limit` in magnitude and therefore cannot
    /// be encoded in the checker's `i32` bound representation, returned as
    /// `(automaton index, constraint)`. `None` when every bound fits.
    ///
    /// The model checker calls this with [`crate::dbm::MAX_BOUND`] before
    /// exploring, so an oversized model is refused with a diagnostic instead
    /// of silently wrapping into a wrong verdict.
    pub fn find_unencodable_bound(&self, limit: i64) -> Option<(usize, Constraint)> {
        for (ai, a) in self.automata.iter().enumerate() {
            for l in &a.locations {
                for c in &l.invariant {
                    if c.bound.abs() > limit {
                        return Some((ai, *c));
                    }
                }
            }
            for e in &a.edges {
                for c in &e.guard {
                    if c.bound.abs() > limit {
                        return Some((ai, *c));
                    }
                }
            }
        }
        None
    }

    /// All `(automaton, location)` pairs with the given kind.
    pub fn locations_of_kind(&self, kind: LocKind) -> Vec<(usize, LocId)> {
        let mut out = Vec::new();
        for (ai, a) in self.automata.iter().enumerate() {
            for (li, l) in a.locations.iter().enumerate() {
                if l.kind == kind {
                    out.push((ai, LocId(li)));
                }
            }
        }
        out
    }
}

/// Size summary of a [`TaNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// Number of component automata.
    pub automata: usize,
    /// Total locations.
    pub locations: usize,
    /// Total edges.
    pub edges: usize,
    /// Channels.
    pub channels: usize,
    /// Clocks.
    pub clocks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_max_constants() {
        let mut net = TaNetwork::new(10);
        let c0 = net.add_clock("g");
        let c1 = net.add_clock("ch");
        let ch = net.add_chan("w0");
        net.automata.push(Automaton {
            name: "A".into(),
            init: LocId(0),
            locations: vec![
                Location {
                    name: "idle".into(),
                    invariant: vec![Constraint::new(c1, Rel::Le, 30)],
                    kind: LocKind::Normal,
                    committed: false,
                },
                Location {
                    name: "err".into(),
                    invariant: vec![],
                    kind: LocKind::Error,
                    committed: false,
                },
            ],
            edges: vec![Edge {
                src: LocId(0),
                dst: LocId(1),
                sync: Sync::Recv(ch),
                guard: vec![Constraint::new(c0, Rel::Ge, 100)],
                resets: vec![c1],
            }],
        });
        let s = net.stats();
        assert_eq!(
            (s.automata, s.locations, s.edges, s.channels, s.clocks),
            (1, 2, 1, 1, 2)
        );
        assert_eq!(net.max_constants(), vec![100, 30]);
        assert_eq!(net.locations_of_kind(LocKind::Error), vec![(0, LocId(1))]);
    }

    #[test]
    fn constraint_display() {
        let c = Constraint::new(ClockId(3), Rel::Ge, 28);
        assert_eq!(c.to_string(), "c3 >= 28");
    }
}
