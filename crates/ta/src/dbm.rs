//! Difference bound matrices (DBMs): the canonical zone representation used
//! by timed-automata model checkers such as UPPAAL.
//!
//! A zone over clocks `x_1..x_n` is a conjunction of constraints
//! `x_i - x_j ≺ m` with `≺ ∈ {<, ≤}`, stored as an `(n+1)²` matrix with the
//! reference "clock" `x_0 = 0` at index 0. Bounds are encoded in a single
//! `i32`: `2m + 1` for `≤ m`, `2m` for `< m`, and [`INF`] for unbounded —
//! the encoding makes "tighter" coincide with smaller integers and lets
//! bound addition be two shifts and a mask.

use std::fmt;

/// Encoded bound: infinity (no constraint).
pub const INF: i32 = i32::MAX;

/// Largest absolute constraint bound the encoded-`i32` arithmetic supports
/// safely.
///
/// Bounds are stored as `2m + 1` (for `≤ m`) or `2m` (for `< m`), and both
/// [`Dbm::constrain`] and [`Dbm::canonicalize`] sum chains of up to three
/// encoded bounds before comparing. Canonical entries are themselves bounded
/// by the model's constants only *after* extrapolation, so intermediate sums
/// can reach a few multiples of the largest constant. `1 << 26` keeps even a
/// three-term chain of doubled bounds (≈ `3 · 2^27`) a factor of ~16 below
/// `i32::MAX`, so no intermediate can wrap for models whose constants all
/// satisfy `|m| ≤ MAX_BOUND`. Callers that accept `i64` bounds (the model
/// checker, the translator) must reject anything larger up front.
pub const MAX_BOUND: i32 = 1 << 26;

/// Encode `≤ m`.
#[inline]
pub const fn le(m: i32) -> i32 {
    2 * m + 1
}

/// Encode `< m`.
#[inline]
pub const fn lt(m: i32) -> i32 {
    2 * m
}

/// The `≤ 0` bound (used for emptiness and the zero zone).
pub const LE_ZERO: i32 = le(0);

#[inline]
fn add_bounds(a: i32, b: i32) -> i32 {
    if a == INF || b == INF {
        INF
    } else {
        // m = m_a + m_b; strictness = strict if either is strict.
        ((a >> 1) + (b >> 1)) * 2 + (a & b & 1)
    }
}

/// A difference bound matrix over `n` real clocks (plus the reference).
///
/// All public constructors and operators keep the matrix canonical (all
/// pairwise constraints as tight as the represented zone allows), so
/// inclusion and emptiness tests are single passes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dbm {
    dim: usize,
    /// Row-major `(dim)²` matrix; entry `(i, j)` bounds `x_i - x_j`.
    m: Box<[i32]>,
}

impl Dbm {
    /// The zone where every clock equals 0, over `clocks` real clocks.
    pub fn zero(clocks: usize) -> Self {
        let dim = clocks + 1;
        Dbm {
            dim,
            m: vec![LE_ZERO; dim * dim].into_boxed_slice(),
        }
    }

    /// The unconstrained zone (all clock valuations with `x_i ≥ 0`).
    pub fn universe(clocks: usize) -> Self {
        let dim = clocks + 1;
        let mut m = vec![INF; dim * dim].into_boxed_slice();
        for i in 0..dim {
            m[i * dim + i] = LE_ZERO;
            m[i] = LE_ZERO; // row 0: 0 - x_j ≤ 0
        }
        Dbm { dim, m }
    }

    /// Number of real clocks (dimension minus the reference).
    pub fn clocks(&self) -> usize {
        self.dim - 1
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> i32 {
        self.m[i * self.dim + j]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: i32) {
        self.m[i * self.dim + j] = v;
    }

    /// The encoded bound on `x_i - x_j` (indices include the reference 0).
    pub fn bound(&self, i: usize, j: usize) -> i32 {
        self.at(i, j)
    }

    /// True if the zone contains no valuation.
    pub fn is_empty(&self) -> bool {
        self.at(0, 0) < LE_ZERO
    }

    /// Let time elapse: remove all upper bounds (the classic `up` operator).
    pub fn up(&mut self) {
        for i in 1..self.dim {
            self.set(i, 0, INF);
        }
    }

    /// Intersect with `x_i - x_j ≺ bound` (encoded). Returns `false` (and
    /// leaves the zone empty) if the result is empty. Maintains canonicity
    /// incrementally in O(dim²).
    pub fn constrain(&mut self, i: usize, j: usize, bound: i32) -> bool {
        if add_bounds(self.at(j, i), bound) < LE_ZERO {
            self.set(0, 0, lt(0)); // mark empty
            return false;
        }
        if bound < self.at(i, j) {
            self.set(i, j, bound);
            for a in 0..self.dim {
                for b in 0..self.dim {
                    let via_ij = add_bounds(add_bounds(self.at(a, i), bound), self.at(j, b));
                    if via_ij < self.at(a, b) {
                        self.set(a, b, via_ij);
                    }
                }
            }
        }
        true
    }

    /// Intersect with `x_c ≤ v` / `< v` / `≥ v` / `> v` / `== v` using the
    /// [`Rel`] relation. `c` is a real clock index (1-based).
    pub fn constrain_clock(&mut self, c: usize, rel: Rel, v: i32) -> bool {
        debug_assert!(c >= 1 && c < self.dim);
        match rel {
            Rel::Le => self.constrain(c, 0, le(v)),
            Rel::Lt => self.constrain(c, 0, lt(v)),
            Rel::Ge => self.constrain(0, c, le(-v)),
            Rel::Gt => self.constrain(0, c, lt(-v)),
            Rel::Eq => self.constrain(c, 0, le(v)) && self.constrain(0, c, le(-v)),
        }
    }

    /// Reset clock `c` to 0.
    pub fn reset(&mut self, c: usize) {
        debug_assert!(c >= 1 && c < self.dim);
        for j in 0..self.dim {
            let v = self.at(0, j);
            self.set(c, j, v);
            let v = self.at(j, 0);
            self.set(j, c, v);
        }
        self.set(c, 0, LE_ZERO);
        self.set(0, c, LE_ZERO);
        // Wait: (c,0) must copy (0,0)=LE_ZERO and (0,c) likewise; the loop
        // above already wrote them via j = 0, but keep them exact.
    }

    /// Forget everything about clock `c` except `c ≥ 0` (UPPAAL's *free*
    /// operation): the zone becomes the cylinder over the other clocks.
    ///
    /// Used for active-clock reduction — when no automaton can read `c`
    /// again before resetting it, its value is dead and freeing it merges
    /// states that differ only in `c`. Preserves canonical form: row `c`
    /// becomes `INF`, and the tightest bound on `x_j - x_c` with `x_c`
    /// unconstrained above and `≥ 0` is the bound on `x_j - 0`.
    pub fn free(&mut self, c: usize) {
        debug_assert!(c >= 1 && c < self.dim);
        for j in 0..self.dim {
            if j != c {
                self.set(c, j, INF);
                let v = self.at(j, 0);
                self.set(j, c, v);
            }
        }
    }

    /// True if `self` includes `other` (every valuation of `other` is in
    /// `self`). Both must be canonical.
    pub fn includes(&self, other: &Dbm) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        self.m.iter().zip(other.m.iter()).all(|(a, b)| a >= b)
    }

    /// Classic maximal-constant extrapolation: bounds above `max[c]` become
    /// infinite and lower bounds below `-max[c]` are clamped, preserving
    /// reachability for diagonal-free automata. `max[c]` is indexed by real
    /// clock (0-based); re-canonicalizes afterwards.
    pub fn extrapolate(&mut self, max: &[i64]) {
        debug_assert_eq!(max.len(), self.dim - 1);
        let mut changed = false;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let v = self.at(i, j);
                if v == INF {
                    continue;
                }
                // Upper bound on x_i (against anything): beyond k_i → INF.
                if i > 0 {
                    let ki = max[i - 1] as i32;
                    if v > le(ki) {
                        self.set(i, j, INF);
                        changed = true;
                        continue;
                    }
                }
                // Lower bound on x_j: below -k_j → clamp to < -k_j.
                if j > 0 {
                    let kj = max[j - 1] as i32;
                    if v < lt(-kj) {
                        self.set(i, j, lt(-kj));
                        changed = true;
                    }
                }
            }
        }
        if changed {
            self.canonicalize();
        }
    }

    /// Full Floyd–Warshall canonicalization (O(dim³)).
    pub fn canonicalize(&mut self) {
        for k in 0..self.dim {
            for i in 0..self.dim {
                let dik = self.at(i, k);
                if dik == INF {
                    continue;
                }
                for j in 0..self.dim {
                    let v = add_bounds(dik, self.at(k, j));
                    if v < self.at(i, j) {
                        self.set(i, j, v);
                    }
                }
            }
        }
        if (0..self.dim).any(|i| self.at(i, i) < LE_ZERO) {
            self.set(0, 0, lt(0));
        }
    }

    /// The inclusive integer range of possible values for clock `c`, as
    /// `(min, max)` with `max == None` meaning unbounded. Bounds are the
    /// tightest *integers* consistent with the zone: strict bounds are
    /// narrowed to the nearest integer inside the zone.
    pub fn clock_range(&self, c: usize) -> (i64, Option<i64>) {
        let lo_b = self.at(0, c); // 0 - x_c ≺ m  ⇒  x_c ≻ -m
        let mut lo = -(lo_b >> 1) as i64;
        if lo_b & 1 == 0 {
            lo += 1; // strict lower bound
        }
        let hi = match self.at(c, 0) {
            INF => None,
            b => {
                let mut h = (b >> 1) as i64;
                if b & 1 == 0 {
                    h -= 1; // strict upper bound
                }
                Some(h)
            }
        };
        (lo, hi)
    }
}

/// Relations usable in clock constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dbm(dim={})", self.dim)?;
        for i in 0..self.dim {
            for j in 0..self.dim {
                let v = self.at(i, j);
                if v == INF {
                    write!(f, "   INF ")?;
                } else {
                    write!(f, "{:>4}{} ", v >> 1, if v & 1 == 1 { "≤" } else { "<" })?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_encoding_orders_strictness() {
        assert!(lt(5) < le(5));
        assert!(le(4) < lt(5));
        assert_eq!(add_bounds(le(3), le(4)), le(7));
        assert_eq!(add_bounds(le(3), lt(4)), lt(7));
        assert_eq!(add_bounds(lt(-3), le(2)), lt(-1));
        assert_eq!(add_bounds(INF, le(1)), INF);
    }

    #[test]
    fn zero_zone_pins_all_clocks() {
        let z = Dbm::zero(2);
        assert!(!z.is_empty());
        assert_eq!(z.clock_range(1), (0, Some(0)));
        assert_eq!(z.clock_range(2), (0, Some(0)));
    }

    #[test]
    fn up_releases_upper_bounds_but_keeps_differences() {
        let mut z = Dbm::zero(2);
        z.up();
        assert_eq!(z.clock_range(1), (0, None));
        // x1 - x2 still == 0.
        assert_eq!(z.bound(1, 2), LE_ZERO);
        assert_eq!(z.bound(2, 1), LE_ZERO);
    }

    #[test]
    fn constrain_then_range() {
        let mut z = Dbm::zero(1);
        z.up();
        assert!(z.constrain_clock(1, Rel::Ge, 3));
        assert!(z.constrain_clock(1, Rel::Le, 7));
        assert_eq!(z.clock_range(1), (3, Some(7)));
        assert!(z.constrain_clock(1, Rel::Eq, 5));
        assert_eq!(z.clock_range(1), (5, Some(5)));
        assert!(!z.constrain_clock(1, Rel::Gt, 5));
        assert!(z.is_empty());
    }

    #[test]
    fn reset_after_delay() {
        let mut z = Dbm::zero(2);
        z.up();
        assert!(z.constrain_clock(1, Rel::Eq, 10)); // x1 == 10, so x2 == 10
        z.reset(2);
        assert_eq!(z.clock_range(2), (0, Some(0)));
        assert_eq!(z.clock_range(1), (10, Some(10)));
        // x1 - x2 == 10 now.
        assert_eq!(z.bound(1, 2), le(10));
        z.up();
        assert!(z.constrain_clock(2, Rel::Eq, 5));
        assert_eq!(z.clock_range(1), (15, Some(15)));
    }

    #[test]
    fn inclusion_is_a_partial_order() {
        let mut a = Dbm::zero(1);
        a.up();
        let mut b = a.clone();
        assert!(b.constrain_clock(1, Rel::Le, 5));
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        assert!(a.includes(&a));
    }

    #[test]
    fn extrapolation_widens_beyond_max_constant() {
        let mut z = Dbm::zero(1);
        z.up();
        assert!(z.constrain_clock(1, Rel::Ge, 100));
        assert!(z.constrain_clock(1, Rel::Le, 120));
        let mut w = z.clone();
        w.extrapolate(&[10]);
        // Beyond the max constant 10, the zone loses its bounds.
        assert_eq!(w.clock_range(1), (11, None));
        assert!(w.includes(&z));
    }

    #[test]
    fn extrapolated_zones_reach_fixpoint() {
        // Simulate a loop that resets x2 while x1 grows: with extrapolation
        // at k=5 the zones stop changing.
        let max = [5i64, 5];
        let mut seen: Vec<Dbm> = Vec::new();
        let mut z = Dbm::zero(2);
        loop {
            let mut next = z.clone();
            next.up();
            assert!(next.constrain_clock(2, Rel::Eq, 3));
            next.reset(2);
            next.extrapolate(&max);
            if seen.iter().any(|s| s.includes(&next)) {
                break;
            }
            seen.push(next.clone());
            z = next;
            assert!(seen.len() < 20, "no fixpoint reached");
        }
        assert!(seen.len() <= 4, "fixpoint after a few iterations");
    }

    #[test]
    fn free_forgets_one_clock_and_stays_canonical() {
        let mut z = Dbm::zero(2);
        z.up();
        assert!(z.constrain_clock(1, Rel::Eq, 10)); // pins x2 == 10 too
        z.free(2);
        // x2 is unconstrained (≥ 0); x1 keeps its pin.
        assert_eq!(z.clock_range(2), (0, None));
        assert_eq!(z.clock_range(1), (10, Some(10)));
        // Canonical: a full re-canonicalization changes nothing.
        let mut w = z.clone();
        w.canonicalize();
        assert_eq!(w, z);
        // Freeing only widens.
        let mut pinned = Dbm::zero(2);
        pinned.up();
        assert!(pinned.constrain_clock(1, Rel::Eq, 10));
        assert!(z.includes(&pinned));
    }

    #[test]
    fn universe_includes_everything() {
        let u = Dbm::universe(2);
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain_clock(1, Rel::Le, 42);
        assert!(u.includes(&z));
        assert!(!z.includes(&u));
    }

    #[test]
    fn urgency_via_le_zero_invariant() {
        // A location with invariant c ≤ 0 entered with c just reset admits
        // no delay: after up ∧ inv, the clock is still pinned at 0.
        let mut z = Dbm::zero(2);
        z.up();
        assert!(z.constrain_clock(1, Rel::Eq, 7));
        z.reset(2);
        z.up();
        assert!(z.constrain_clock(2, Rel::Le, 0));
        assert_eq!(z.clock_range(2), (0, Some(0)));
        assert_eq!(z.clock_range(1), (7, Some(7)));
    }
}
