//! The structure-of-arrays batch sweep kernel: N Monte-Carlo trials
//! advanced in dense lane blocks over one compiled circuit.
//!
//! The scalar [`Sweep`](super::Sweep) runs trials one at a time: every trial
//! walks its own pulse heap, re-checks the circuit, and clones every wire's
//! event list into a fresh [`Events`] dictionary. At the paper's margin-map
//! scale (10⁶+ trials per request, Fig. 13 / Table 3) those per-trial costs
//! dominate. [`BatchSweep`] removes them:
//!
//! - **Compile once.** The circuit is built and lowered to
//!   [`CompiledCircuit`] tables a single time per sweep; every worker shares
//!   the immutable [`Plan`] (tables, routing arrays, stimulus schedule,
//!   observed-wire slots) by reference.
//! - **Dense lanes.** A block of `W` trials ("lanes") shares one set of flat
//!   runtime arrays laid out `[value(node, 0), value(node, 1), …]` — state,
//!   τ_done, Θ, and per-node jitter σ are each a `[n_nodes × W]` vector
//!   indexed `node * W + lane`, so the per-trial state a dispatch touches is
//!   contiguous across lanes and the whole block reuses one allocation.
//! - **Lane-major pump with divergence.** Within a block the lanes are
//!   advanced back to back over one reused pulse heap keyed the scalar
//!   engine's `(time, node, seq)`: lanes never interact (every per-trial
//!   quantity is a lane-indexed column), so running them sequentially
//!   produces exactly the event sequence each scalar trial would, while the
//!   heap only ever holds a single trial's in-flight pulses — merging all
//!   lanes into one `W`×-deep heap measurably loses more to sift depth than
//!   lockstep interleaving gains. Jitter makes lanes diverge freely; a lane
//!   that hits a timing violation is marked dead and its pump ends, while
//!   the remaining lanes are unaffected.
//! - **Observed-only recording.** Pulse times are recorded per observed
//!   wire per lane; anonymous internal wires are never stored, and the
//!   per-trial `Events` clone is replaced by refilling one scratch
//!   dictionary in place for the check callback.
//!
//! ## Determinism
//!
//! Results are **bit-identical** to the scalar engine at any thread count
//! and any batch width. Three properties make this hold:
//!
//! 1. Trial seeds are `trial_seed(master, trial)` — a pure function, exactly
//!    as the scalar sweep derives them, regardless of which block or lane a
//!    trial lands in.
//! 2. Each lane keeps its own RNG, Box–Muller spare, and pulse sequence
//!    counter, and pumps its pulses in the scalar heap order `(time, node,
//!    seq)`, so the lane's jitter stream and dispatch sequence match the
//!    scalar trial event for event.
//! 3. Trial outcomes are stitched back into global trial order (blocks are
//!    dealt round-robin to workers, workers return them in deal order) and
//!    folded by the same serial [`reduce`](super) the scalar engine uses, so
//!    the floating-point accumulation order is fixed.
//!
//! Circuits containing [`Hole`](crate::functional::Hole) nodes fall back to
//! the scalar engine transparently: hole closures may carry arbitrary
//! internal state, which lane-blocked re-execution would corrupt.

use crate::circuit::{Circuit, NodeKind};
use crate::compiled::{CompiledCircuit, CompiledNode};
use crate::error::Time;
use crate::events::Events;
use crate::sim::{resolve_sigma, BoxMuller, CustomDelayFn, Variability};
use crate::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{
    observed_names, reduce, trial_seed, validate_variability, CheckFn, OutAcc, Sweep,
    SweepDetails, SweepError, SweepReport, TrialDetail, TrialOutcome,
};

/// A pending pulse of the lane currently being pumped. The heap is a
/// min-heap on the scalar engine's `(time, node, seq)` key, so
/// same-`(time, node)` pulses pop contiguously and the simultaneous-pulse
/// batching of Fig. 6 works unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BPulse {
    time: Time,
    node: u32,
    port: u32,
    seq: u64,
}

impl Eq for BPulse {}
impl Ord for BPulse {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ascending on (time, node, seq); strictly total — `seq` is unique
        // within a lane and the heap only ever holds one lane — so the pop
        // order of any correct min-heap over this key is fully determined.
        self.time
            .total_cmp(&other.time)
            .then(self.node.cmp(&other.node))
            .then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for BPulse {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything the workers share, compiled exactly once per sweep and then
/// immutable: the lowered circuit, the sorted observed-output names, each
/// wire's recording slot, and each node's start state.
struct Plan {
    cc: CompiledCircuit,
    /// Observed wire names, sorted ascending (the recording-slot order).
    names: Vec<String>,
    /// For each wire index: its slot in `names`, or `u32::MAX` if the wire
    /// is not observed (such pulses are routed but never recorded).
    obs_slot: Vec<u32>,
    /// Each node's initial machine state (0 for sources).
    starts: Vec<u32>,
}

impl Plan {
    fn new(probe: &Circuit) -> Self {
        let names = observed_names(probe);
        let cc = CompiledCircuit::compile(probe);
        let mut obs_slot = vec![u32::MAX; probe.wire_count()];
        for (idx, slot) in obs_slot.iter_mut().enumerate() {
            let w = probe.wire_at(idx);
            if probe.wire_observed(w) {
                *slot = names
                    .binary_search_by(|n| n.as_str().cmp(probe.wire_name(w)))
                    .expect("every observed wire is in the sorted name list")
                    as u32;
            }
        }
        let starts = cc
            .nodes
            .iter()
            .map(|n| match n {
                CompiledNode::Machine { cm, .. } => cc.machines[*cm as usize].start,
                _ => 0,
            })
            .collect();
        Plan {
            cc,
            names,
            obs_slot,
            starts,
        }
    }
}

/// Per-worker execution counters, accumulated locally while pumping and
/// flushed into the shared telemetry handle once per worker. Every field is
/// additive over blocks (and blocks are a pure function of `(trials,
/// width)`), so the merged totals are identical at any thread count.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    blocks: u64,
    dispatches: u64,
    transitions: u64,
    pushed: u64,
    popped: u64,
    wire: u64,
    max_heap: usize,
}

impl Counters {
    fn flush(&self, tel: &Telemetry) {
        tel.add_many(&[
            ("sweep_batch.blocks", self.blocks),
            ("sweep_batch.dispatches", self.dispatches),
            ("sweep_batch.transitions", self.transitions),
            ("sweep_batch.pulses_pushed", self.pushed),
            ("sweep_batch.pulses_popped", self.popped),
            ("sweep_batch.wire_pulses", self.wire),
        ]);
        tel.peak("sweep_batch.max_heap_depth", self.max_heap as u64);
    }
}

/// The results of one block of lanes, in lane order.
struct BlockOut {
    outcomes: Vec<TrialOutcome>,
    /// Per-lane per-output pulse times (empty per lane when the lane
    /// aborted), present only on detailed runs.
    outputs: Option<Vec<Vec<Vec<Time>>>>,
}

/// One worker's reusable batch engine: the dense `[n_nodes × W]` runtime
/// lanes, the pulse heap reused by every lane in turn, per-lane RNG state,
/// and the dispatch scratch buffers. Allocated once per worker, reset per
/// block.
struct Kernel<'p> {
    plan: &'p Plan,
    width: usize,
    // Dense per-(node, lane) runtime state, indexed `node * width + lane`
    // (theta by `(theta_off + input) * width + lane`).
    states: Vec<u32>,
    tau_done: Vec<f64>,
    theta: Vec<f64>,
    var_std: Vec<f64>,
    heap: BinaryHeap<Reverse<BPulse>>,
    // Recorded pulse times per (observed-wire slot, lane), indexed
    // `slot * width + lane`.
    obs: Vec<Vec<Time>>,
    // Dispatch scratch, shared across lanes (only one lane dispatches at a
    // time; these are cleared per batch exactly as in the scalar kernel).
    batch: Vec<u32>,
    rest: Vec<u32>,
    fired: Vec<(u32, f64)>,
    // Per-lane trial state.
    rngs: Vec<StdRng>,
    bms: Vec<BoxMuller>,
    seqs: Vec<u64>,
    dead: Vec<bool>,
    customs: Vec<Option<CustomDelayFn>>,
    /// Scratch events dictionary refilled per lane for the check callback
    /// (only allocated when a check is installed).
    scratch: Option<Events>,
    counters: Counters,
}

impl<'p> Kernel<'p> {
    fn new(plan: &'p Plan, width: usize, has_check: bool) -> Self {
        let n_nodes = plan.cc.nodes.len();
        Kernel {
            plan,
            width,
            states: vec![0; n_nodes * width],
            tau_done: vec![0.0; n_nodes * width],
            theta: vec![f64::NEG_INFINITY; plan.cc.theta_len * width],
            var_std: vec![f64::NAN; n_nodes * width],
            heap: BinaryHeap::with_capacity(plan.cc.stim.len() * width),
            obs: std::iter::repeat_with(Vec::new)
                .take(plan.names.len() * width)
                .collect(),
            batch: Vec::new(),
            rest: Vec::new(),
            fired: Vec::new(),
            rngs: (0..width).map(|_| StdRng::seed_from_u64(0)).collect(),
            bms: (0..width).map(|_| BoxMuller::default()).collect(),
            seqs: vec![0; width],
            dead: vec![false; width],
            customs: (0..width).map(|_| None).collect(),
            scratch: has_check.then(|| Events::preallocated(&plan.names)),
            counters: Counters::default(),
        }
    }

    /// Run one block of `lanes` consecutive trials starting at
    /// `first_trial`. Pure in `(sweep, first_trial, lanes)`: block results
    /// cannot depend on which worker runs the block or what it ran before.
    fn run_block(
        &mut self,
        sweep: &BatchSweep,
        first_trial: u64,
        lanes: usize,
        want_outputs: bool,
        tel_on: bool,
    ) -> BlockOut {
        let Kernel {
            plan,
            width,
            states,
            tau_done,
            theta,
            var_std,
            heap,
            obs,
            batch,
            rest,
            fired,
            rngs,
            bms,
            seqs,
            dead,
            customs,
            scratch,
            counters,
        } = self;
        let plan: &Plan = plan;
        let width = *width;
        let cc = &plan.cc;
        let n_obs = plan.names.len();
        let until = sweep.until;
        let record_ok = |t: Time| until.is_none_or(|u| t <= u);

        // Reset the dense lanes to the initial configuration ⟨q, τ_done, Θ⟩
        // (whole-width fills: unused trailing lanes are never pumped).
        for (node, &s0) in plan.starts.iter().enumerate() {
            states[node * width..(node + 1) * width].fill(s0);
        }
        tau_done.fill(0.0);
        theta.fill(f64::NEG_INFINITY);
        var_std.fill(f64::NAN);
        heap.clear();
        for column in obs.iter_mut() {
            column.clear();
        }

        // Per-lane trial state: the same seed derivation and σ resolution
        // the scalar engine applies per trial.
        for lane in 0..lanes {
            let trial = first_trial + lane as u64;
            rngs[lane] = StdRng::seed_from_u64(trial_seed(sweep.master_seed, trial));
            bms[lane] = BoxMuller::default();
            seqs[lane] = 0;
            dead[lane] = false;
            customs[lane] = None;
            if let Some(factory) = &sweep.variability {
                let v = factory();
                for (node, cn) in cc.nodes.iter().enumerate() {
                    if let CompiledNode::Machine { exempt, .. } = cn {
                        if *exempt {
                            continue;
                        }
                        var_std[node * width + lane] =
                            resolve_sigma(&v, cc.symbols.resolve(cc.cell[node]));
                    }
                }
                if let Variability::Custom(f) = v {
                    customs[lane] = Some(f);
                }
            }
        }

        if tel_on {
            counters.blocks += 1;
        }

        // Advance the block lane-major: each lane pumps its own pulse heap
        // to completion over the shared dense arrays before the next lane
        // starts. Lanes never interact — every per-trial quantity (machine
        // state columns, RNG stream, sequence numbers, recorded pulses) is
        // indexed by lane — so running them back to back produces exactly
        // the per-lane event sequence a fully merged lockstep heap would,
        // while the heap only ever holds one trial's in-flight pulses (the
        // scalar engine's depth) instead of `W`× that.
        for lane in 0..lanes {
            // Seed from the compiled stimulus schedule in compile order —
            // the order the scalar engine seeds from the circuit's source
            // nodes — so this lane's sequence numbers match the scalar
            // trial's exactly.
            heap.clear();
            for sp in &cc.stim {
                if record_ok(sp.time) {
                    let slot = plan.obs_slot[sp.wire as usize];
                    if slot != u32::MAX {
                        obs[slot as usize * width + lane].push(sp.time);
                        if tel_on {
                            counters.wire += 1;
                        }
                    }
                }
                if sp.sink.0 != u32::MAX {
                    heap.push(Reverse(BPulse {
                        time: sp.time,
                        node: sp.sink.0,
                        port: sp.sink.1,
                        seq: seqs[lane],
                    }));
                    seqs[lane] += 1;
                    if tel_on {
                        counters.pushed += 1;
                    }
                }
            }
            if tel_on {
                counters.max_heap = counters.max_heap.max(heap.len());
            }

            // The pump: the scalar discrete-event loop of Fig. 6, acting on
            // this lane's column of every dense array.
            'pump: while let Some(Reverse(first)) = heap.pop() {
                if let Some(u) = until {
                    if first.time > u {
                        // Min pulse beyond the target time: the rest of this
                        // lane's pulses are too, exactly the scalar cutoff.
                        break;
                    }
                }
                let node = first.node as usize;
                let t = first.time;
                // getSimPulses: same (time, node) pulses are heap-adjacent
                // by the ordering key (the whole heap is this lane).
                batch.clear();
                batch.push(first.port);
                while let Some(Reverse(p)) = heap.peek() {
                    if p.time == t && p.node == first.node {
                        batch.push(heap.pop().expect("peeked").0.port);
                    } else {
                        break;
                    }
                }
                if tel_on {
                    counters.popped += batch.len() as u64;
                    counters.dispatches += 1;
                }
                fired.clear();
                let CompiledNode::Machine { cm, theta_off, .. } = cc.nodes[node] else {
                    unreachable!("sources receive no pulses; hole circuits use the scalar fallback")
                };
                let m = &cc.machines[cm as usize];
                let tb = theta_off as usize;
                let si = node * width + lane;
                let mut q = states[si];
                let mut td = tau_done[si];
                // Dispatch (Fig. 6) in priority order, mutating this lane's
                // column of κ in place. A violation kills the lane — the
                // batch equivalent of the scalar run aborting with
                // `Error::Timing` — and its partial column updates never
                // leak: a dead lane's pump ends here and its columns are
                // fully reset before the next block.
                rest.clear();
                rest.extend_from_slice(batch);
                while !rest.is_empty() {
                    let mut pos = 0usize;
                    let mut best = (m.transition(q, rest[0]).priority, rest[0]);
                    for (i, &p) in rest.iter().enumerate().skip(1) {
                        let key = (m.transition(q, p).priority, p);
                        if key < best {
                            pos = i;
                            best = key;
                        }
                    }
                    let sigma = rest.remove(pos);
                    let tr = *m.transition(q, sigma);
                    if t < td {
                        dead[lane] = true;
                        break 'pump;
                    }
                    for &(cin, dist) in &m.pasts[tr.past.0 as usize..tr.past.1 as usize] {
                        let last = theta[(tb + cin as usize) * width + lane];
                        if t < last + dist {
                            dead[lane] = true;
                            break 'pump;
                        }
                    }
                    q = tr.dst;
                    td = t + tr.tau_tran;
                    theta[(tb + sigma as usize) * width + lane] = t;
                    for &(o, d) in &m.firings[tr.fire.0 as usize..tr.fire.1 as usize] {
                        fired.push((o, t + d));
                    }
                }
                states[si] = q;
                tau_done[si] = td;
                if tel_on {
                    counters.transitions += batch.len() as u64;
                }
                // Firing-delay variability from this lane's own RNG stream.
                let std = var_std[si];
                if !std.is_nan() {
                    let rng = &mut rngs[lane];
                    for fo in fired.iter_mut() {
                        let nominal = fo.1 - t;
                        let actual = match customs[lane].as_mut() {
                            Some(f) => f(nominal, cc.symbols.resolve(cc.cell[node]), rng),
                            None => nominal + std * bms[lane].sample(rng),
                        };
                        fo.1 = t + actual.max(0.0);
                    }
                }
                // Deliver fired pulses: record observed wires into the
                // lane's column, push routed pulses back onto the heap.
                let outs = cc.node_out_wires(node);
                for &(port, t_out) in fired.iter() {
                    let wire = outs[port as usize] as usize;
                    if record_ok(t_out) {
                        let slot = plan.obs_slot[wire];
                        if slot != u32::MAX {
                            obs[slot as usize * width + lane].push(t_out);
                            if tel_on {
                                counters.wire += 1;
                            }
                        }
                    }
                    let (sink, sport) = cc.sink[wire];
                    if sink != u32::MAX {
                        heap.push(Reverse(BPulse {
                            time: t_out,
                            node: sink,
                            port: sport,
                            seq: seqs[lane],
                        }));
                        seqs[lane] += 1;
                        if tel_on {
                            counters.pushed += 1;
                        }
                    }
                }
                if tel_on {
                    counters.max_heap = counters.max_heap.max(heap.len());
                }
            }
        }

        // Classify every lane: sort each recorded column (jitter can push
        // pulses out of order, exactly as in the scalar engine), run the
        // check against the refilled scratch dictionary, and accumulate the
        // per-output stats.
        let mut outcomes = Vec::with_capacity(lanes);
        let mut outputs = want_outputs.then(|| Vec::with_capacity(lanes));
        for lane in 0..lanes {
            if dead[lane] {
                outcomes.push(TrialOutcome::Timing);
                if let Some(out) = &mut outputs {
                    out.push(Vec::new());
                }
                continue;
            }
            for slot in 0..n_obs {
                obs[slot * width + lane].sort_by(f64::total_cmp);
            }
            let check_ok = match (&sweep.check, scratch.as_mut()) {
                (Some(check), Some(ev)) => {
                    ev.refill_named((0..n_obs).map(|slot| obs[slot * width + lane].as_slice()));
                    check(ev)
                }
                _ => true,
            };
            let per_output = (0..n_obs)
                .map(|slot| OutAcc::of(&obs[slot * width + lane]))
                .collect();
            outcomes.push(TrialOutcome::Done {
                per_output,
                check_ok,
            });
            if let Some(out) = &mut outputs {
                out.push(
                    (0..n_obs)
                        .map(|slot| obs[slot * width + lane].clone())
                        .collect(),
                );
            }
        }
        BlockOut { outcomes, outputs }
    }
}

/// Private alias for the kernel-execution result triple.
type ExecOut = (Vec<String>, Vec<TrialOutcome>, Option<Vec<Vec<Vec<Time>>>>);

/// The batch Monte-Carlo sweep builder: the structure-of-arrays
/// counterpart of [`Sweep`], bit-identical to it at any thread count and
/// any batch width.
///
/// ```
/// use rlse_core::prelude::*;
/// use rlse_core::machine::{EdgeDef, Machine};
/// use rlse_core::sweep::{BatchSweep, Sweep};
///
/// # fn main() -> Result<(), rlse_core::Error> {
/// let jtl = Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
///     src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default()
/// }])?;
/// let build = move || {
///     let mut c = Circuit::new();
///     let a = c.inp_at(&[10.0], "A");
///     let q = c.add_machine(&jtl, &[a]).unwrap()[0];
///     c.inspect(q, "Q");
///     c
/// };
/// let batch = BatchSweep::over(&build)
///     .variability(|| Variability::Gaussian { std: 0.3 })
///     .trials(256)
///     .master_seed(42)
///     .run();
/// let scalar = Sweep::over(&build)
///     .variability(|| Variability::Gaussian { std: 0.3 })
///     .trials(256)
///     .master_seed(42)
///     .run();
/// assert_eq!(batch, scalar);
/// # Ok(())
/// # }
/// ```
pub struct BatchSweep<'a> {
    build: Box<dyn Fn() -> Circuit + Sync + 'a>,
    variability: Option<Box<dyn Fn() -> Variability + Sync + 'a>>,
    check: Option<CheckFn<'a>>,
    trials: u64,
    master_seed: u64,
    threads: usize,
    batch_width: usize,
    until: Option<Time>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for BatchSweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSweep")
            .field("trials", &self.trials)
            .field("master_seed", &self.master_seed)
            .field("threads", &self.threads)
            .field("batch_width", &self.batch_width)
            .field("until", &self.until)
            .finish_non_exhaustive()
    }
}

impl<'a> BatchSweep<'a> {
    /// Start a batch sweep over the circuit produced by `build`. The builder
    /// is called once for the probe build (twice on the scalar-fallback
    /// path); it must be deterministic.
    pub fn over(build: impl Fn() -> Circuit + Sync + 'a) -> Self {
        BatchSweep {
            build: Box::new(build),
            variability: None,
            check: None,
            trials: 100,
            master_seed: 0,
            threads: 0,
            batch_width: 16,
            until: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a [`Telemetry`] handle: workers flush `sweep_batch.*`
    /// execution counters (additive over blocks, so totals are bit-identical
    /// at any thread count), and the sweep records verdict counters plus a
    /// `sweep_batch.run` span on track 0.
    pub fn telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    /// Set the number of independent trials (default 100).
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Set the master seed from which every trial's RNG stream is derived
    /// (default 0). The same derivation as [`Sweep::master_seed`].
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Set the worker thread count. `0` (the default) uses the machine's
    /// available parallelism. Affects wall-clock only, never the results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the batch width `W`: how many trials (lanes) one block advances
    /// over one shared set of dense arrays (default 16). Wider blocks
    /// amortize block setup over more lanes but touch more state per cell;
    /// like the thread count, the width can never change the results, only
    /// the wall clock.
    pub fn batch_width(mut self, width: usize) -> Self {
        self.batch_width = width.max(1);
        self
    }

    /// Simulate each trial only until the given time (required for circuits
    /// with feedback loops).
    pub fn until(mut self, t: Time) -> Self {
        self.until = Some(t);
        self
    }

    /// Apply a variability model to every trial; the factory is called once
    /// per trial, exactly as in the scalar sweep.
    pub fn variability(mut self, factory: impl Fn() -> Variability + Sync + 'a) -> Self {
        self.variability = Some(Box::new(factory));
        self
    }

    /// Add a per-trial output check. The batch engine hands the callback an
    /// events dictionary holding the **observed** wires only (the scalar
    /// engine also carries anonymous internal wires); checks that only read
    /// named wires — the supported contract — see identical data.
    pub fn check(mut self, check: impl Fn(&Events) -> bool + Sync + 'a) -> Self {
        self.check = Some(Box::new(check));
        self
    }

    fn effective_threads(&self, n_blocks: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        t.min(n_blocks.max(1)).max(1)
    }

    /// The scalar-engine fallback for hole circuits, configured identically.
    fn scalar(&self) -> Sweep<'_> {
        let mut s = Sweep::over(&self.build)
            .trials(self.trials)
            .master_seed(self.master_seed)
            .threads(self.threads)
            .telemetry(&self.telemetry);
        if let Some(v) = &self.variability {
            s = s.variability(v);
        }
        if let Some(c) = &self.check {
            s = s.check(move |ev| c(ev));
        }
        if let Some(u) = self.until {
            s = s.until(u);
        }
        s
    }

    fn has_holes(probe: &Circuit) -> bool {
        probe
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Hole(_)))
    }

    /// Compile once, deal blocks round-robin to workers, and stitch the
    /// per-block results back into global trial order.
    fn execute(&self, probe: &Circuit, want_outputs: bool) -> ExecOut {
        let plan = Plan::new(probe);
        let width = self.batch_width.max(1);
        let n_blocks = (self.trials as usize).div_ceil(width);
        let threads = self.effective_threads(n_blocks);
        let tel_on = self.telemetry.is_enabled();
        let mut per_worker: Vec<Vec<BlockOut>> = Vec::new();
        if n_blocks > 0 {
            std::thread::scope(|scope| {
                let plan = &plan;
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut kernel = Kernel::new(plan, width, self.check.is_some());
                            let t_worker = self.telemetry.now();
                            let mut outs = Vec::new();
                            let mut done = 0u64;
                            // Deterministic round-robin deal: worker w gets
                            // blocks w, w+T, w+2T, …
                            let mut b = w;
                            while b < n_blocks {
                                let first_trial = (b * width) as u64;
                                let lanes = width.min(self.trials as usize - b * width);
                                outs.push(kernel.run_block(
                                    self,
                                    first_trial,
                                    lanes,
                                    want_outputs,
                                    tel_on,
                                ));
                                done += lanes as u64;
                                b += threads;
                            }
                            if tel_on {
                                kernel.counters.flush(&self.telemetry);
                                if let Some(t0) = t_worker {
                                    self.telemetry.record_span(
                                        "sweep_batch.worker",
                                        w as u32 + 1,
                                        t0,
                                        done,
                                    );
                                }
                            }
                            outs
                        })
                    })
                    .collect();
                per_worker = handles
                    .into_iter()
                    .map(|h| h.join().expect("batch sweep worker panicked"))
                    .collect();
            });
        }
        // Stitch: global block b was worker (b mod T)'s next block, so
        // popping each worker's deque in deal order restores trial order.
        for outs in per_worker.iter_mut() {
            outs.reverse();
        }
        let mut outcomes = Vec::with_capacity(self.trials as usize);
        let mut outputs = want_outputs.then(|| Vec::with_capacity(self.trials as usize));
        for b in 0..n_blocks {
            let blk = per_worker[b % threads]
                .pop()
                .expect("one result per dealt block");
            outcomes.extend(blk.outcomes);
            if let Some(out) = &mut outputs {
                out.extend(blk.outputs.expect("outputs requested from every block"));
            }
        }
        (plan.names, outcomes, outputs)
    }

    /// Execute the sweep and aggregate per-trial results into the same
    /// [`SweepReport`] the scalar engine produces — bit-identical to
    /// [`Sweep::run`] with the same circuit, trials, variability, check,
    /// and master seed, at any thread count and batch width.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit or the
    /// sweep configuration is invalid, as [`Sweep::run`] does.
    pub fn run(&self) -> SweepReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run`](Self::run) with invalid sweep configuration reported as a
    /// [`SweepError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SweepError::UnknownCellTypes`] when per-cell-type variability keys
    /// do not match any cell type in the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit.
    pub fn try_run(&self) -> Result<SweepReport, SweepError> {
        let probe = (self.build)();
        probe.check().expect("sweep circuit builder must be valid");
        {
            let v = self.variability.as_ref().map(|f| f());
            validate_variability(v.as_ref(), &probe)?;
        }
        if Self::has_holes(&probe) {
            if self.telemetry.is_enabled() {
                self.telemetry.add("sweep_batch.fallback_scalar", 1);
            }
            return self.scalar().try_run();
        }
        let t_run = self.telemetry.now();
        let (names, outcomes, _) = self.execute(&probe, false);
        let report = reduce(names, self.trials, &outcomes);
        if self.telemetry.is_enabled() {
            self.telemetry.add_many(&[
                ("sweep_batch.runs", 1),
                ("sweep_batch.trials", self.trials),
                ("sweep_batch.ok", report.ok),
                ("sweep_batch.check_failures", report.check_failures),
                ("sweep_batch.timing_violations", report.timing_violations),
                ("sweep_batch.other_errors", report.other_errors),
            ]);
            if let Some(t0) = t_run {
                self.telemetry
                    .record_span("sweep_batch.run", 0, t0, self.trials);
            }
        }
        Ok(report)
    }

    /// Run every trial and return its individual verdict and output pulse
    /// times — bit-identical to [`Sweep::run_detailed`] on the same inputs,
    /// at any thread count and batch width. This is the surface the
    /// differential test harness compares.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit or the
    /// sweep configuration is invalid.
    pub fn run_detailed(&self) -> SweepDetails {
        self.try_run_detailed().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_detailed`](Self::run_detailed) with invalid sweep configuration
    /// reported as a [`SweepError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SweepError::UnknownCellTypes`] when per-cell-type variability keys
    /// do not match any cell type in the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit.
    pub fn try_run_detailed(&self) -> Result<SweepDetails, SweepError> {
        let probe = (self.build)();
        probe.check().expect("sweep circuit builder must be valid");
        {
            let v = self.variability.as_ref().map(|f| f());
            validate_variability(v.as_ref(), &probe)?;
        }
        if Self::has_holes(&probe) {
            return self.scalar().try_run_detailed();
        }
        let (names, outcomes, outputs) = self.execute(&probe, true);
        let outputs = outputs.expect("outputs requested");
        let trials = outcomes
            .iter()
            .zip(outputs)
            .enumerate()
            .map(|(i, (outcome, outs))| TrialDetail {
                trial: i as u64,
                verdict: outcome.verdict(),
                outputs: outs,
            })
            .collect();
        Ok(SweepDetails { names, trials })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{EdgeDef, Machine};
    use std::sync::Arc;

    fn jtl(delay: f64) -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            delay,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    fn splitter() -> Arc<Machine> {
        Machine::new(
            "S",
            &["a"],
            &["l", "r"],
            4.3,
            3,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "l,r",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    /// A small fan-out/fan-in circuit with two observed outputs and an
    /// anonymous internal wire — enough structure to exercise batching,
    /// routing, and multi-output recording.
    fn diamond_builder() -> impl Fn() -> Circuit + Sync {
        move || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 30.0, 55.0], "A");
            let outs = c.add_machine(&splitter(), &[a]).unwrap();
            let l = c.add_machine(&jtl(5.0), &[outs[0]]).unwrap()[0];
            let r = c.add_machine(&jtl(7.7), &[outs[1]]).unwrap()[0];
            c.inspect(l, "L");
            c.inspect(r, "R");
            c
        }
    }

    #[test]
    fn batch_matches_scalar_across_widths_and_threads() {
        let build = diamond_builder();
        let scalar = Sweep::over(&build)
            .variability(|| Variability::Gaussian { std: 0.4 })
            .trials(64)
            .master_seed(7)
            .run();
        for width in [1, 3, 16, 64, 100] {
            for threads in [1, 4] {
                let batch = BatchSweep::over(&build)
                    .variability(|| Variability::Gaussian { std: 0.4 })
                    .trials(64)
                    .master_seed(7)
                    .threads(threads)
                    .batch_width(width)
                    .run();
                assert_eq!(batch, scalar, "width={width} threads={threads}");
            }
        }
    }

    #[test]
    fn detailed_runs_are_bit_identical_to_scalar() {
        let build = diamond_builder();
        let scalar = Sweep::over(&build)
            .variability(|| Variability::Gaussian { std: 0.6 })
            .trials(33)
            .master_seed(3)
            .run_detailed();
        for width in [1, 7, 64] {
            let batch = BatchSweep::over(&build)
                .variability(|| Variability::Gaussian { std: 0.6 })
                .trials(33)
                .master_seed(3)
                .batch_width(width)
                .threads(4)
                .run_detailed();
            assert_eq!(batch, scalar, "width={width}");
        }
    }

    #[test]
    fn check_and_until_match_scalar() {
        let build = diamond_builder();
        let scalar = Sweep::over(&build)
            .variability(|| Variability::Gaussian { std: 0.3 })
            .trials(40)
            .master_seed(11)
            .until(45.0)
            .check(|ev| ev.times("L").len() == ev.times("R").len())
            .run();
        let batch = BatchSweep::over(&build)
            .variability(|| Variability::Gaussian { std: 0.3 })
            .trials(40)
            .master_seed(11)
            .until(45.0)
            .check(|ev| ev.times("L").len() == ev.times("R").len())
            .batch_width(7)
            .run();
        assert_eq!(batch, scalar);
        // The until cutoff actually bit: the third stimulus pulse (t=55)
        // never reaches the outputs.
        assert_eq!(batch.output("L").unwrap().pulses, 80);
    }

    #[test]
    fn stateful_custom_variability_matches_scalar() {
        // A stateful custom model: the k-th firing of a trial gets +0.1·k.
        // The factory builds it fresh per trial in both engines, and each
        // lane calls its own closure in the lane's dispatch order.
        let build = diamond_builder();
        let factory = || {
            let mut k = 0u32;
            Variability::Custom(Box::new(move |nominal, _cell, _rng| {
                k += 1;
                nominal + 0.1 * k as f64
            }))
        };
        let scalar = Sweep::over(&build)
            .variability(factory)
            .trials(17)
            .master_seed(5)
            .run_detailed();
        let batch = BatchSweep::over(&build)
            .variability(factory)
            .trials(17)
            .master_seed(5)
            .batch_width(4)
            .threads(2)
            .run_detailed();
        assert_eq!(batch, scalar);
    }

    #[test]
    fn mixed_per_cell_sigma_matches_scalar() {
        let build = diamond_builder();
        let factory = || {
            let mut map = std::collections::HashMap::new();
            map.insert("JTL".to_string(), 0.5);
            map.insert("S".to_string(), 0.0); // σ=0: skipped, no RNG draw
            Variability::PerCellType(map)
        };
        let scalar = Sweep::over(&build)
            .variability(factory)
            .trials(24)
            .master_seed(9)
            .run_detailed();
        let batch = BatchSweep::over(&build)
            .variability(factory)
            .trials(24)
            .master_seed(9)
            .batch_width(5)
            .run_detailed();
        assert_eq!(batch, scalar);
    }

    #[test]
    fn timing_violations_kill_lanes_not_blocks() {
        // A 10 ps transition-time cell fed pulses 1 ps apart violates in
        // every trial; batch verdicts must match the scalar engine's.
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let build = move || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 11.0, 50.0], "A");
            let q = c.add_machine(&m, &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let scalar = Sweep::over(&build).trials(12).run();
        let batch = BatchSweep::over(&build).trials(12).batch_width(8).run();
        assert_eq!(batch, scalar);
        assert_eq!(batch.timing_violations, 12);
    }

    #[test]
    fn jitter_dependent_violations_diverge_per_lane() {
        // A reconvergent fan-out racing a transition-time window: the two
        // jittered paths arrive ~2 ps apart at a merger that needs 3 ps to
        // recover, so with heavy jitter some trials violate and some pass —
        // lanes within one block genuinely diverge, and must still match
        // the scalar engine.
        let m = Machine::new(
            "DUT",
            &["a", "b"],
            &["q"],
            1.0,
            1,
            &[
                EdgeDef {
                    src: "idle",
                    trigger: "a",
                    dst: "idle",
                    firing: "q",
                    transition_time: 3.0,
                    ..Default::default()
                },
                EdgeDef {
                    src: "idle",
                    trigger: "b",
                    dst: "idle",
                    firing: "q",
                    transition_time: 3.0,
                    ..Default::default()
                },
            ],
        )
        .unwrap();
        let build = move || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0], "A");
            let outs = c.add_machine(&splitter(), &[a]).unwrap();
            let fast = c.add_machine(&jtl(5.0), &[outs[0]]).unwrap()[0];
            let slow = c.add_machine(&jtl(7.0), &[outs[1]]).unwrap()[0];
            let r = c.add_machine(&m, &[fast, slow]).unwrap()[0];
            c.inspect(r, "R");
            c
        };
        let sigma = 2.0;
        let scalar = Sweep::over(&build)
            .variability(move || Variability::Gaussian { std: sigma })
            .trials(200)
            .master_seed(1)
            .run();
        let batch = BatchSweep::over(&build)
            .variability(move || Variability::Gaussian { std: sigma })
            .trials(200)
            .master_seed(1)
            .batch_width(32)
            .threads(4)
            .run();
        assert_eq!(batch, scalar);
        // Guard against a vacuous pass: the workload must actually mix
        // verdicts for the divergence path to have been exercised.
        assert!(batch.ok > 0, "some trials must pass");
        assert!(batch.timing_violations > 0, "some trials must violate");
    }

    #[test]
    fn zero_trials_yields_empty_report_without_panic() {
        let build = diamond_builder();
        let batch = BatchSweep::over(&build).trials(0).run();
        let scalar = Sweep::over(&build).trials(0).run();
        assert_eq!(batch, scalar);
        assert_eq!(batch.trials, 0);
        assert_eq!(batch.ok, 0);
        assert_eq!(batch.failure_rate(), 0.0);
        assert_eq!(batch.output("L").unwrap().pulses, 0);
        // The detailed view is empty too.
        assert!(BatchSweep::over(&build).trials(0).run_detailed().trials.is_empty());
    }

    #[test]
    fn hole_circuits_fall_back_to_scalar() {
        use crate::functional::Hole;
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 20.0], "A");
            let h = Hole::new("pass", 1.5, &["a"], &["q"], |present: &[bool], _t| {
                vec![present[0]]
            });
            let q = c.add_hole(h, &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let tel = Telemetry::new();
        let batch = BatchSweep::over(build).trials(6).telemetry(&tel).run();
        let scalar = Sweep::over(build).trials(6).run();
        assert_eq!(batch, scalar);
        assert_eq!(tel.report().counter("sweep_batch.fallback_scalar"), 1);
        // The scalar engine did the work.
        assert_eq!(tel.report().counter("sweep.runs"), 1);
    }

    #[test]
    fn telemetry_counters_identical_across_threads_and_widths() {
        let run = |threads, width| {
            let tel = Telemetry::new();
            BatchSweep::over(diamond_builder())
                .variability(|| Variability::Gaussian { std: 0.4 })
                .trials(64)
                .master_seed(7)
                .threads(threads)
                .batch_width(width)
                .telemetry(&tel)
                .run();
            tel.report()
        };
        let serial = run(1, 16);
        let parallel = run(8, 16);
        assert_eq!(serial, parallel);
        assert_eq!(serial.counter("sweep_batch.trials"), 64);
        assert_eq!(serial.counter("sweep_batch.ok"), 64);
        assert_eq!(serial.counter("sweep_batch.blocks"), 4);
        assert!(serial.counter("sweep_batch.dispatches") > 0);
        // Different widths change block structure (and so the block
        // counters) but never the verdict counters.
        let wide = run(4, 64);
        assert_eq!(wide.counter("sweep_batch.blocks"), 1);
        assert_eq!(wide.counter("sweep_batch.ok"), 64);
        assert_eq!(
            wide.counter("sweep_batch.dispatches"),
            serial.counter("sweep_batch.dispatches")
        );
    }

    #[test]
    fn nominal_batch_is_exact() {
        let report = BatchSweep::over(diamond_builder()).trials(16).run();
        assert_eq!(report.ok, 16);
        let l = report.output("L").unwrap();
        assert_eq!(l.pulses, 48); // 3 pulses × 16 trials
        assert_eq!(l.min, 10.0 + 4.3 + 5.0);
        assert_eq!(l.max, 55.0 + 4.3 + 5.0);
    }
}
