//! Conservative-parallel discrete-event loop for a *single* simulation
//! (ROADMAP item 5: scaling one run past the paper's Table-3 sizes).
//!
//! [`ParallelSim`] partitions a [`CompiledCircuit`]'s dispatch graph into
//! regions, gives each region its own pulse heap and worker thread, and runs
//! Chandy–Misra-style **epochs**: every worker drains its local heap up to a
//! conservative horizon derived from the other regions' pending times plus
//! the minimum firing delay along every cross-region path, then exchanges
//! cross-partition pulses at a barrier. The result is **bit-identical to the
//! scalar kernel at any thread count** — same [`Events`], same trace, same
//! error on a timing violation — because no ordering decision ever consults
//! wall-clock time or thread identity.
//!
//! ## Why determinism is cheap here
//!
//! The parallel path requires every firing delay in the circuit to be
//! strictly positive (it needs them positive anyway for a non-degenerate
//! lookahead). Under that precondition no pulse can be created *at* the
//! timestamp currently being dispatched, so the scalar kernel's dispatch
//! order is exactly ascending `(time, node)` — the heap's FIFO `seq`
//! tie-break never decides *which batch* runs next, only the input order
//! *within* a batch. That input order equals the creation order of the
//! batch's pulses, which is itself the lexicographic order of a purely local
//! provenance key: `(creator time, creator node, firing index)`, with
//! stimulus pulses first in compiled-stimulus order. Each region keys its
//! heap on `(time, node, provenance)` and reproduces the scalar batch order
//! with no global sequence counter at all.
//!
//! ## The horizon
//!
//! Let `L(s, r)` be the minimum firing delay over every wire that crosses
//! from region `s` into region `r`, `D` its all-pairs shortest-path closure
//! over the region digraph, and `C(r) = min_s (D(r,s) + D(s,r))` the
//! shortest cycle through `r`. With `T_s` the earliest pending time in
//! region `s` at the epoch barrier, region `r` may safely dispatch every
//! batch strictly below
//!
//! ```text
//! bound(r) = min( min_{s≠r} (T_s + D(s, r)),  T_r + C(r) )
//! ```
//!
//! Any pulse that could still arrive from outside either descends from a
//! pending event in some other region `s` (arriving no earlier than
//! `T_s + D(s, r)`) or from `r`'s own pending work leaving and coming back
//! (no earlier than `T_r + C(r)`). The region holding the global minimum
//! always has `T_r < bound(r)` because every delay is positive, so each
//! epoch makes progress and the loop cannot deadlock. Feed-forward circuits
//! have `C(r) = ∞` and pay nothing for the cycle term.
//!
//! ## Fallbacks
//!
//! Circuits the parallel loop cannot run bit-identically fall back to the
//! scalar kernel (counted under `par.fallback_scalar`): holes (stateful user
//! closures need `&mut Circuit`), variability (one global RNG stream in
//! dispatch order), any firing delay ≤ 0, fewer than two usable regions or
//! threads. A timing violation aborts the epoch loop and reruns on the
//! scalar kernel (`par.violation_rerun`) so the diagnostic — and the partial
//! trace — are bitwise exactly the scalar ones; until the first violating
//! dispatch both kernels are identical, so the rerun always re-detects it.

use super::{Simulation, TraceEntry};
use crate::compiled::{CompiledCircuit, CompiledNode};
use crate::error::Error;
use crate::events::Events;
use crate::telemetry::Telemetry;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cross edges cheaper than this (ps) are absorbed into the growing region
/// even past its size target: comparator lanes are stitched from ~2 ps JTL
/// balance edges, and cutting one would collapse the region's lookahead to
/// that 2 ps. Cell-to-cell edges (≳ 5 ps) remain fair game for the cut.
const LANE_BIAS: f64 = 5.0;

/// A pending pulse in a region's local heap, keyed for a min-heap on
/// `(time, node, provenance)` where provenance is `(src_time, src_node,
/// src_fired)` — the creation order the scalar kernel's `seq` would have
/// assigned (see the module docs). Stimulus pulses carry
/// `src_time = -∞, src_node = compiled stimulus index`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RPulse {
    time: f64,
    node: u32,
    port: u32,
    src_time: f64,
    src_node: u32,
    src_fired: u32,
}

impl Eq for RPulse {}
impl Ord for RPulse {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap.
        other
            .time
            .total_cmp(&self.time)
            .then(other.node.cmp(&self.node))
            .then(other.src_time.total_cmp(&self.src_time))
            .then(other.src_node.cmp(&self.src_node))
            .then(other.src_fired.cmp(&self.src_fired))
    }
}
impl PartialOrd for RPulse {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A sense-reversing barrier that spins briefly and then yields — the yield
/// path matters on machines with fewer cores than workers, where a pure spin
/// would serialize every epoch behind the scheduler quantum.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier { n, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// `local` is the caller's thread-local sense, initially `false`. The
    /// release/acquire chain through `count`'s RMWs and the `sense` flip
    /// makes every write sequenced before any arrival visible to every
    /// thread after it returns — which is what lets the pending-time slots
    /// use relaxed loads and stores.
    fn wait(&self, local: &mut bool) {
        let target = !*local;
        *local = target;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The partition and lookahead tables, computed once per (circuit, region
/// count) and reused across runs.
struct Plan {
    /// The region count this plan was built for (cache key).
    want: usize,
    n_regions: usize,
    /// Region index per compiled node (sources join their sink's region).
    region_of: Vec<u32>,
    /// `n_regions²` all-pairs shortest-path lookahead `D(s, r)`.
    dist: Vec<f64>,
    /// Per-region shortest cycle `C(r)` (∞ on feed-forward circuits).
    cycle: Vec<f64>,
    /// Per wire: region of its sink node, `u32::MAX` for unread wires.
    wire_dst_region: Vec<u32>,
    /// Smallest cross-region edge lookahead (diagnostic; ∞ if no cross edge).
    min_lookahead: f64,
}

/// State shared by every region worker for one run.
struct Shared<'a> {
    cc: &'a CompiledCircuit,
    nr: usize,
    dist: &'a [f64],
    cycle: &'a [f64],
    wire_dst_region: &'a [u32],
    until: Option<f64>,
    trace_enabled: bool,
    /// Per-region earliest pending time, published as `f64::to_bits`.
    slots: Vec<AtomicU64>,
    /// Per-region inboxes for cross-partition pulses, drained at barrier B.
    mail: Vec<Mutex<Vec<RPulse>>>,
    /// Set by a worker that hit a timing violation; checked uniformly at the
    /// top of the next epoch so every worker exits together.
    abort: AtomicBool,
    barrier: SpinBarrier,
}

/// One region's private runtime: a full-size copy of the flat machine state
/// (only this region's nodes are ever touched — regions partition the
/// dispatch nodes, so the copies are disjoint by construction), the local
/// heap, per-wire event lists (each wire is written by exactly one region:
/// its driver's), and the outboxes staged for the next barrier.
struct RegionRun {
    id: usize,
    heap: BinaryHeap<RPulse>,
    states: Vec<u32>,
    tau_done: Vec<f64>,
    theta: Vec<f64>,
    wire_events: Vec<Vec<f64>>,
    staged: Vec<Vec<RPulse>>,
    trace: Vec<(f64, u32, TraceEntry)>,
    batch: Vec<u32>,
    rest: Vec<u32>,
    fired: Vec<(u32, f64)>,
    // Deterministic counters: the epoch schedule depends only on the
    // partition and the event times, never on wall-clock, so these agree
    // run-to-run and thread-count-to-thread-count.
    epochs: u64,
    dispatches: u64,
    transitions: u64,
    cross: u64,
    stalls: u64,
    n_wire: u64,
    heap_peak: usize,
    violated: bool,
}

impl RegionRun {
    fn new(id: usize, cc: &CompiledCircuit, n_wires: usize, n_regions: usize) -> Self {
        RegionRun {
            id,
            heap: BinaryHeap::new(),
            states: cc
                .nodes
                .iter()
                .map(|n| match n {
                    CompiledNode::Machine { cm, .. } => cc.machines[*cm as usize].start,
                    _ => 0,
                })
                .collect(),
            tau_done: vec![0.0; cc.nodes.len()],
            theta: vec![f64::NEG_INFINITY; cc.theta_len],
            wire_events: vec![Vec::new(); n_wires],
            staged: vec![Vec::new(); n_regions],
            trace: Vec::new(),
            batch: Vec::new(),
            rest: Vec::new(),
            fired: Vec::new(),
            epochs: 0,
            dispatches: 0,
            transitions: 0,
            cross: 0,
            stalls: 0,
            n_wire: 0,
            heap_peak: 0,
            violated: false,
        }
    }

    /// Drain the local heap strictly below `bound`, mirroring the scalar
    /// kernel's batch-gather + priority dispatch exactly. Returns early with
    /// `violated` set on a timing violation (the diagnostic is produced by
    /// the scalar rerun).
    fn drain(&mut self, bound: f64, sh: &Shared<'_>) {
        let cc = sh.cc;
        while let Some(&first) = self.heap.peek() {
            if first.time >= bound {
                break;
            }
            self.heap.pop();
            let node = first.node as usize;
            let t = first.time;
            // getSimPulses: every same-(time, node) pulse is already in this
            // heap (positive delays + the horizon guarantee), in creation
            // order by the provenance key.
            self.batch.clear();
            self.batch.push(first.port);
            while let Some(p) = self.heap.peek() {
                if p.time == t && p.node == first.node {
                    self.batch.push(self.heap.pop().expect("peeked").port);
                } else {
                    break;
                }
            }
            self.dispatches += 1;
            self.fired.clear();
            let CompiledNode::Machine { cm, theta_off, .. } = cc.nodes[node] else {
                unreachable!("parallel regions dispatch only machine nodes")
            };
            let m = &cc.machines[cm as usize];
            let th = &mut self.theta[theta_off as usize..theta_off as usize + m.n_inputs as usize];
            let mut q = self.states[node];
            let state_before = q;
            let mut td = self.tau_done[node];
            self.rest.clear();
            self.rest.extend_from_slice(&self.batch);
            while !self.rest.is_empty() {
                let mut pos = 0usize;
                let mut best = (m.transition(q, self.rest[0]).priority, self.rest[0]);
                for (i, &p) in self.rest.iter().enumerate().skip(1) {
                    let key = (m.transition(q, p).priority, p);
                    if key < best {
                        pos = i;
                        best = key;
                    }
                }
                let sigma = self.rest.remove(pos);
                let tr = *m.transition(q, sigma);
                if t < td {
                    self.violated = true;
                    return;
                }
                for &(cin, dist) in &m.pasts[tr.past.0 as usize..tr.past.1 as usize] {
                    if t < th[cin as usize] + dist {
                        self.violated = true;
                        return;
                    }
                }
                q = tr.dst;
                td = t + tr.tau_tran;
                th[sigma as usize] = t;
                for &(o, d) in &m.firings[tr.fire.0 as usize..tr.fire.1 as usize] {
                    self.fired.push((o, t + d));
                }
            }
            self.states[node] = q;
            self.tau_done[node] = td;
            self.transitions += self.batch.len() as u64;
            if sh.trace_enabled {
                self.trace.push((
                    t,
                    first.node,
                    TraceEntry {
                        time: t,
                        node_wire: cc.symbols.resolve(cc.node_wire[node]).to_string(),
                        cell: cc.symbols.resolve(m.name).to_string(),
                        inputs: self
                            .batch
                            .iter()
                            .map(|&p| cc.symbols.resolve(m.inputs[p as usize]).to_string())
                            .collect(),
                        state_before: cc
                            .symbols
                            .resolve(m.states[state_before as usize])
                            .to_string(),
                        state_after: cc.symbols.resolve(m.states[q as usize]).to_string(),
                        fired: self
                            .fired
                            .iter()
                            .map(|&(o, ft)| {
                                (cc.symbols.resolve(m.outputs[o as usize]).to_string(), ft)
                            })
                            .collect(),
                    },
                ));
            }
            // Deliver. Pulses past the target time are dropped outright —
            // the scalar kernel parks them in the heap unprocessed, which is
            // observably identical.
            let outs = cc.node_out_wires(node);
            let fired = std::mem::take(&mut self.fired);
            for (idx, &(port, t_out)) in fired.iter().enumerate() {
                if sh.until.is_some_and(|u| t_out > u) {
                    continue;
                }
                let wire = outs[port as usize] as usize;
                self.wire_events[wire].push(t_out);
                self.n_wire += 1;
                let (sink, sport) = cc.sink[wire];
                if sink != u32::MAX {
                    let rp = RPulse {
                        time: t_out,
                        node: sink,
                        port: sport,
                        src_time: t,
                        src_node: first.node,
                        src_fired: idx as u32,
                    };
                    let dst = sh.wire_dst_region[wire] as usize;
                    if dst == self.id {
                        self.heap.push(rp);
                        self.heap_peak = self.heap_peak.max(self.heap.len());
                    } else {
                        self.staged[dst].push(rp);
                    }
                }
            }
            self.fired = fired;
        }
    }
}

/// One region's epoch loop. Two barriers per epoch: publish pending times →
/// **A** → everyone computes identical bounds and exit decisions from the
/// same slot snapshot → drain → deposit cross pulses → **B** → merge inbox.
fn worker(mut rr: RegionRun, sh: &Shared<'_>) -> RegionRun {
    let r = rr.id;
    let nr = sh.nr;
    let mut sense = false;
    loop {
        // Sample the abort flag *before* barrier A: it is only ever written
        // inside a drain (strictly between A and B), so in this window the
        // value is stable and every worker reads the same one. Reading it
        // after A instead would race with the current epoch's drains and
        // let workers disagree on the exit, stranding some at barrier B.
        let abort = sh.abort.load(Ordering::Relaxed);
        let t_next = rr.heap.peek().map_or(f64::INFINITY, |p| p.time);
        sh.slots[r].store(t_next.to_bits(), Ordering::Relaxed);
        sh.barrier.wait(&mut sense);
        let mut global_min = f64::INFINITY;
        let mut bound = t_next + sh.cycle[r];
        for (s, slot) in sh.slots.iter().enumerate() {
            let ts = f64::from_bits(slot.load(Ordering::Relaxed));
            if ts < global_min {
                global_min = ts;
            }
            if s != r {
                let b = ts + sh.dist[s * nr + r];
                if b < bound {
                    bound = b;
                }
            }
        }
        // Uniform exit decisions: every worker sees the same slots and the
        // same pre-A abort sample here, so all of them leave in the same
        // epoch and no barrier is left short.
        if abort || global_min == f64::INFINITY {
            break;
        }
        if sh.until.is_some_and(|u| global_min > u) {
            break;
        }
        rr.epochs += 1;
        let before = rr.dispatches;
        rr.drain(bound, sh);
        if rr.violated {
            sh.abort.store(true, Ordering::Relaxed);
        }
        if t_next.is_finite() && rr.dispatches == before {
            // Had pending work but the horizon blocked all of it.
            rr.stalls += 1;
        }
        for dst in 0..nr {
            if dst != r && !rr.staged[dst].is_empty() {
                rr.cross += rr.staged[dst].len() as u64;
                sh.mail[dst].lock().expect("mailbox poisoned").append(&mut rr.staged[dst]);
            }
        }
        sh.barrier.wait(&mut sense);
        {
            let mut mail = sh.mail[r].lock().expect("mailbox poisoned");
            for p in mail.drain(..) {
                rr.heap.push(p);
            }
        }
        rr.heap_peak = rr.heap_peak.max(rr.heap.len());
    }
    rr
}

/// Internal marker: the epoch loop aborted on a timing violation and the
/// caller must rerun on the scalar kernel for the bitwise-exact diagnostic.
struct Aborted;

/// A [`Simulation`] wrapper that runs eligible circuits on the
/// conservative-parallel epoch loop and everything else on the scalar
/// kernel, with results guaranteed bit-identical either way.
///
/// ```
/// use rlse_core::prelude::*;
/// use rlse_core::machine::{EdgeDef, Machine};
///
/// # fn main() -> Result<(), rlse_core::Error> {
/// let jtl = Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
///     src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default()
/// }])?;
/// let mut c = Circuit::new();
/// let a = c.inp_at(&[10.0, 20.0], "A");
/// let q1 = c.add_machine(&jtl, &[a])?[0];
/// let q2 = c.add_machine(&jtl, &[q1])?[0];
/// c.inspect(q2, "Q");
/// let events = ParallelSim::new(c).threads(4).run()?;
/// assert_eq!(events.times("Q"), &[20.0, 30.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParallelSim {
    sim: Simulation,
    /// Requested worker count; 0 = one per available core.
    threads: usize,
    plan: Option<Plan>,
    trace: Vec<TraceEntry>,
    last_parallel: bool,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("want", &self.want)
            .field("n_regions", &self.n_regions)
            .field("min_lookahead", &self.min_lookahead)
            .finish_non_exhaustive()
    }
}

impl ParallelSim {
    /// Create a parallel simulation over `circuit` with no target time and
    /// an automatic thread count (one worker per available core).
    pub fn new(circuit: crate::circuit::Circuit) -> Self {
        ParallelSim {
            sim: Simulation::new(circuit),
            threads: 0,
            plan: None,
            trace: Vec::new(),
            last_parallel: false,
        }
    }

    /// Wrap an already-configured [`Simulation`] (keeping its target time,
    /// trace flag, telemetry handle, and compiled tables).
    pub fn from_simulation(sim: Simulation) -> Self {
        ParallelSim { sim, threads: 0, plan: None, trace: Vec::new(), last_parallel: false }
    }

    /// Set the worker count. `0` (the default) uses one worker per available
    /// core; `1` always runs the scalar kernel. The circuit is split into at
    /// most this many regions, so results are identical at every setting.
    pub fn threads(mut self, n: usize) -> Self {
        self.set_threads(n);
        self
    }

    /// Change the worker count in place (see [`threads`](Self::threads)).
    pub fn set_threads(&mut self, n: usize) {
        if self.threads != n {
            self.threads = n;
            self.plan = None;
        }
    }

    /// Simulate only until the given time (required for feedback loops).
    pub fn until(mut self, t: f64) -> Self {
        self.sim.until = Some(t);
        self
    }

    /// Enable firing-delay variability. Variability needs the scalar
    /// kernel's single RNG stream, so every run falls back to it.
    pub fn variability(mut self, v: super::Variability) -> Self {
        self.sim.variability = Some(v);
        self
    }

    /// Seed the variability RNG (only meaningful with variability set).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Record a [`TraceEntry`] per dispatched batch, exactly as the scalar
    /// kernel orders them; retrieve with [`trace`](Self::trace).
    pub fn with_trace(mut self) -> Self {
        self.sim.trace_enabled = true;
        self
    }

    /// Attach a [`Telemetry`] handle. Parallel runs flush `par.*` counters
    /// (epochs, horizon stalls, cross-partition pulses, per-region occupancy
    /// peaks) alongside the scalar kernel's `sim.*` set on fallback runs.
    pub fn telemetry(mut self, tel: &Telemetry) -> Self {
        self.sim.telemetry = tel.clone();
        self
    }

    /// The dispatch log of the most recent run, if tracing was enabled.
    pub fn trace(&self) -> &[TraceEntry] {
        if self.last_parallel {
            &self.trace
        } else {
            self.sim.trace()
        }
    }

    /// Borrow the circuit under simulation.
    pub fn circuit(&self) -> &crate::circuit::Circuit {
        self.sim.circuit()
    }

    /// Take the circuit back out.
    pub fn into_circuit(self) -> crate::circuit::Circuit {
        self.sim.into_circuit()
    }

    /// Whether the most recent [`run`](Self::run) took the partitioned path
    /// (false after a fallback or a violation rerun).
    pub fn last_run_parallel(&self) -> bool {
        self.last_parallel
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Why this run must take the scalar kernel, if it must.
    fn scalar_reason(&mut self, threads: usize) -> Option<&'static str> {
        if threads < 2 {
            return Some("threads < 2");
        }
        if self.sim.variability.is_some() {
            return Some("variability needs the scalar RNG stream");
        }
        let cc = self.sim.compiled();
        if cc.nodes.iter().any(|n| matches!(n, CompiledNode::Hole { .. })) {
            return Some("holes need &mut circuit");
        }
        if cc.dispatch_nodes < 2 {
            return Some("fewer than two dispatch nodes");
        }
        if cc.machines.iter().any(|m| m.min_firing_delay() <= 0.0) {
            return Some("non-positive firing delay");
        }
        None
    }

    /// Run to completion, on the partitioned loop when eligible, and return
    /// the events observed on every named wire — bit-identical to
    /// [`Simulation::run`] in every case.
    ///
    /// # Errors
    ///
    /// Exactly [`Simulation::run`]'s: timing violations rerun on the scalar
    /// kernel so the diagnostic is the scalar one, byte for byte.
    pub fn run(&mut self) -> Result<Events, Error> {
        self.last_parallel = false;
        self.sim.circuit.check()?;
        let threads = self.resolved_threads();
        if self.scalar_reason(threads).is_some() {
            self.sim.telemetry.add("par.fallback_scalar", 1);
            return self.sim.run();
        }
        let want = threads.min(self.sim.compiled().dispatch_nodes);
        if self.plan.as_ref().is_none_or(|p| p.want != want) {
            self.plan = Some(build_plan(self.sim.compiled(), want));
        }
        if self.plan.as_ref().expect("plan built").n_regions < 2 {
            self.sim.telemetry.add("par.fallback_scalar", 1);
            return self.sim.run();
        }
        match run_partitioned(&mut self.sim, self.plan.as_ref().expect("plan built")) {
            Ok((events, trace)) => {
                self.trace = trace;
                self.last_parallel = true;
                Ok(events)
            }
            Err(Aborted) => {
                self.sim.telemetry.add("par.violation_rerun", 1);
                self.sim.run()
            }
        }
    }
}

/// Partition the dispatch graph into at most `want` regions by deterministic
/// BFS growth over the undirected wire adjacency (lowest-index seed first,
/// neighbors in ascending node order), then close the lookahead tables over
/// the resulting region digraph. The growth absorbs sub-[`LANE_BIAS`] edges
/// past the size target (up to 1.5×) so comparator lanes stay whole — a
/// cheap min-cut bias that keeps cross-region lookahead at cell scale.
fn build_plan(cc: &CompiledCircuit, want: usize) -> Plan {
    let n = cc.nodes.len();
    let is_machine = |i: usize| matches!(cc.nodes[i], CompiledNode::Machine { .. });
    let dispatch: Vec<u32> =
        (0..n).filter(|&i| is_machine(i)).map(|i| i as u32).collect();
    let min_out: Vec<Vec<f64>> = cc.machines.iter().map(|m| m.min_out_delays()).collect();

    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for &u in &dispatch {
        let CompiledNode::Machine { cm, .. } = cc.nodes[u as usize] else { unreachable!() };
        for (port, &w) in cc.node_out_wires(u as usize).iter().enumerate() {
            let (v, _) = cc.sink[w as usize];
            if v != u32::MAX && v != u && is_machine(v as usize) {
                let wt = min_out[cm as usize][port];
                adj[u as usize].push((v, wt));
                adj[v as usize].push((u, wt));
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }

    let mut region_of = vec![u32::MAX; n];
    let target = dispatch.len().div_ceil(want);
    let cap = target + target.div_ceil(2);
    let mut cur: u32 = 0;
    let mut size = 0usize;
    let mut queue: VecDeque<u32> = VecDeque::new();
    for &seed in &dispatch {
        if region_of[seed as usize] != u32::MAX {
            continue;
        }
        let is_last = (cur as usize) + 1 >= want;
        region_of[seed as usize] = cur;
        size += 1;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            if !is_last && size >= cap {
                break;
            }
            for &(v, wt) in &adj[u as usize] {
                if region_of[v as usize] != u32::MAX {
                    continue;
                }
                if is_last || size < target || (wt < LANE_BIAS && size < cap) {
                    region_of[v as usize] = cur;
                    size += 1;
                    queue.push_back(v);
                }
            }
        }
        queue.clear();
        if (cur as usize) + 1 < want && size >= target {
            cur += 1;
            size = 0;
        }
    }
    let n_regions = dispatch
        .iter()
        .map(|&d| region_of[d as usize] as usize + 1)
        .max()
        .unwrap_or(1);

    // Sources join their sink's region so their stimulus seeds locally;
    // sources driving unread wires are bookkept by region 0.
    for i in 0..n {
        if region_of[i] == u32::MAX {
            let mut r = 0;
            if let Some(&w) = cc.node_out_wires(i).first() {
                let (s, _) = cc.sink[w as usize];
                if s != u32::MAX && region_of[s as usize] != u32::MAX {
                    r = region_of[s as usize];
                }
            }
            region_of[i] = r;
        }
    }

    // Cross-edge lookahead and its shortest-path closure.
    let nr = n_regions;
    let mut dist = vec![f64::INFINITY; nr * nr];
    for r in 0..nr {
        dist[r * nr + r] = 0.0;
    }
    let mut min_cross = f64::INFINITY;
    for &u in &dispatch {
        let CompiledNode::Machine { cm, .. } = cc.nodes[u as usize] else { unreachable!() };
        let ru = region_of[u as usize] as usize;
        for (port, &w) in cc.node_out_wires(u as usize).iter().enumerate() {
            let (v, _) = cc.sink[w as usize];
            if v == u32::MAX {
                continue;
            }
            let rv = region_of[v as usize] as usize;
            if rv == ru {
                continue;
            }
            let wt = min_out[cm as usize][port];
            if wt < dist[ru * nr + rv] {
                dist[ru * nr + rv] = wt;
            }
            min_cross = min_cross.min(wt);
        }
    }
    for k in 0..nr {
        for i in 0..nr {
            let dik = dist[i * nr + k];
            if dik == f64::INFINITY {
                continue;
            }
            for j in 0..nr {
                let alt = dik + dist[k * nr + j];
                if alt < dist[i * nr + j] {
                    dist[i * nr + j] = alt;
                }
            }
        }
    }
    let cycle: Vec<f64> = (0..nr)
        .map(|r| {
            (0..nr)
                .filter(|&s| s != r)
                .map(|s| dist[r * nr + s] + dist[s * nr + r])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let wire_dst_region = cc
        .sink
        .iter()
        .map(|&(s, _)| if s == u32::MAX { u32::MAX } else { region_of[s as usize] })
        .collect();

    Plan { want, n_regions, region_of, dist, cycle, wire_dst_region, min_lookahead: min_cross }
}

/// The partitioned run proper: seed per-region heaps from the compiled
/// stimulus schedule, run the epoch loop on scoped threads, and merge the
/// per-region wire events and trace entries back into scalar order (both
/// merges sort by keys that are unique or totally ordered, so the result is
/// independent of region interleaving).
fn run_partitioned(
    sim: &mut Simulation,
    plan: &Plan,
) -> Result<(Events, Vec<TraceEntry>), Aborted> {
    let tel = sim.telemetry.clone();
    let tel_on = tel.is_enabled();
    let t_run = tel.now();
    let cc = sim.compiled.as_ref().expect("compiled before planning");
    let circuit = &sim.circuit;
    let until = sim.until;
    let trace_enabled = sim.trace_enabled;
    let nr = plan.n_regions;
    let n_wires = circuit.wires.len();

    let mut regions: Vec<RegionRun> =
        (0..nr).map(|r| RegionRun::new(r, cc, n_wires, nr)).collect();
    for (i, st) in cc.stim.iter().enumerate() {
        let owner = if st.sink.0 == u32::MAX {
            0
        } else {
            plan.region_of[st.sink.0 as usize] as usize
        };
        let rr = &mut regions[owner];
        if until.is_none_or(|u| st.time <= u) {
            rr.wire_events[st.wire as usize].push(st.time);
            rr.n_wire += 1;
            if st.sink.0 != u32::MAX {
                rr.heap.push(RPulse {
                    time: st.time,
                    node: st.sink.0,
                    port: st.sink.1,
                    src_time: f64::NEG_INFINITY,
                    src_node: i as u32,
                    src_fired: 0,
                });
            }
        }
    }
    for rr in &mut regions {
        rr.heap_peak = rr.heap.len();
    }

    let shared = Shared {
        cc,
        nr,
        dist: &plan.dist,
        cycle: &plan.cycle,
        wire_dst_region: &plan.wire_dst_region,
        until,
        trace_enabled,
        slots: (0..nr).map(|_| AtomicU64::new(f64::INFINITY.to_bits())).collect(),
        mail: (0..nr).map(|_| Mutex::new(Vec::new())).collect(),
        abort: AtomicBool::new(false),
        barrier: SpinBarrier::new(nr),
    };
    let sh = &shared;
    let mut regions: Vec<RegionRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = regions
            .into_iter()
            .map(|rr| scope.spawn(move || worker(rr, sh)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region worker panicked"))
            .collect()
    });

    if regions.iter().any(|r| r.violated) {
        return Err(Aborted);
    }

    if tel_on {
        let disp_max = regions.iter().map(|r| r.dispatches).max().unwrap_or(0);
        let disp_min = regions.iter().map(|r| r.dispatches).min().unwrap_or(0);
        tel.add_many(&[
            ("par.runs", 1),
            ("par.epochs", regions[0].epochs),
            ("par.dispatches", regions.iter().map(|r| r.dispatches).sum()),
            ("par.transitions", regions.iter().map(|r| r.transitions).sum()),
            ("par.cross_pulses", regions.iter().map(|r| r.cross).sum()),
            ("par.horizon_stalls", regions.iter().map(|r| r.stalls).sum()),
            ("par.wire_pulses", regions.iter().map(|r| r.n_wire).sum()),
        ]);
        tel.peak("par.regions", nr as u64);
        tel.peak("par.region_dispatch_peak", disp_max);
        tel.peak("par.region_dispatch_imbalance", disp_max - disp_min);
        tel.peak(
            "par.local_heap_peak",
            regions.iter().map(|r| r.heap_peak).max().unwrap_or(0) as u64,
        );
        if let Some(t0) = t_run {
            tel.record_span(
                "sim.par_run",
                sim.tel_track,
                t0,
                regions.iter().map(|r| r.dispatches).sum(),
            );
        }
    }

    // Each wire is written by exactly one region, so this is a move plus a
    // scalar-identical total-order sort.
    let mut wires: Vec<Vec<f64>> = vec![Vec::new(); n_wires];
    for rr in regions.iter_mut() {
        for (w, evs) in rr.wire_events.iter_mut().enumerate() {
            if !evs.is_empty() {
                if wires[w].is_empty() {
                    wires[w] = std::mem::take(evs);
                } else {
                    wires[w].append(evs);
                }
            }
        }
    }
    for evs in wires.iter_mut() {
        evs.sort_by(f64::total_cmp);
    }

    let trace = if trace_enabled {
        // Batch keys (time, node) are unique across the whole run, so the
        // sort reproduces the scalar dispatch order exactly.
        let mut entries: Vec<(f64, u32, TraceEntry)> =
            regions.iter_mut().flat_map(|r| r.trace.drain(..)).collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        entries.into_iter().map(|(_, _, e)| e).collect()
    } else {
        Vec::new()
    };

    Ok((Events::from_wires(circuit, &wires), trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::machine::{EdgeDef, Machine};
    use crate::sim::Variability;
    use std::sync::Arc;

    fn jtl(delay: f64) -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            delay,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    fn merger() -> Arc<Machine> {
        Machine::new(
            "M",
            &["a", "b"],
            &["q"],
            6.3,
            5,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
                EdgeDef { src: "idle", trigger: "b", dst: "idle", firing: "q", ..Default::default() },
            ],
        )
        .unwrap()
    }

    fn splitter() -> Arc<Machine> {
        Machine::new(
            "S",
            &["a"],
            &["l", "r"],
            4.3,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "l,r",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    /// A chain of n JTLs fed by several pulses.
    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut w = c.inp_at(&[10.0, 30.0, 55.5], "A");
        for i in 0..n {
            w = c.add_machine(&jtl(2.0 + i as f64 * 0.5), &[w]).unwrap()[0];
        }
        c.inspect(w, "Q");
        c
    }

    fn assert_same_events(a: &Events, b: &Events) {
        assert_eq!(a, b);
        for ((na, ta), (nb, tb)) in a.iter_all().zip(b.iter_all()) {
            assert_eq!(na, nb);
            assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(tb) {
                assert_eq!(x.to_bits(), y.to_bits(), "wire {na} diverges bitwise");
            }
        }
    }

    #[test]
    fn partition_covers_every_node_with_bounded_regions() {
        let mut sim = Simulation::new(chain(12));
        let cc = sim.compiled();
        let plan = build_plan(cc, 4);
        assert!(plan.n_regions >= 2 && plan.n_regions <= 4);
        assert!(plan.region_of.iter().all(|&r| (r as usize) < plan.n_regions));
        assert!(plan.min_lookahead > 0.0);
        // Chain of 12: contiguous blocks, every region non-empty.
        for r in 0..plan.n_regions {
            assert!(plan.region_of.iter().any(|&x| x as usize == r));
        }
    }

    #[test]
    fn chain_matches_scalar_at_every_thread_count() {
        let scalar = Simulation::new(chain(10)).run().unwrap();
        for threads in [2, 3, 4, 8, 16] {
            let mut par = ParallelSim::new(chain(10)).threads(threads);
            let ev = par.run().unwrap();
            assert!(par.last_run_parallel(), "threads={threads} should partition");
            assert_same_events(&scalar, &ev);
        }
    }

    #[test]
    fn simultaneous_fan_in_batches_identically() {
        // Two splitters feed one merger so simultaneous pulses cross regions
        // and must arrive in the scalar batch order.
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 40.0], "A");
            let b = c.inp_at(&[10.0, 40.0], "B");
            let sa = c.add_machine(&splitter(), &[a]).unwrap();
            let sb = c.add_machine(&splitter(), &[b]).unwrap();
            let m1 = c.add_machine(&merger(), &[sa[0], sb[0]]).unwrap()[0];
            let m2 = c.add_machine(&merger(), &[sa[1], sb[1]]).unwrap()[0];
            let q = c.add_machine(&merger(), &[m1, m2]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let mut ssim = Simulation::new(build()).with_trace();
        let scalar = ssim.run().unwrap();
        for threads in [2, 4, 8] {
            let mut par = ParallelSim::new(build()).threads(threads).with_trace();
            let ev = par.run().unwrap();
            assert!(par.last_run_parallel());
            assert_same_events(&scalar, &ev);
            assert_eq!(ssim.trace(), par.trace(), "trace diverges at threads={threads}");
        }
    }

    #[test]
    fn feedback_loop_cycle_bound_matches_scalar() {
        // src -> merger -> splitter -> (out, feedback jtl -> merger.b): the
        // region graph is cyclic, exercising the T_r + C(r) term.
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0], "A");
            let fb = c.loopback_wire();
            let m = c.add_machine(&merger(), &[a, fb]).unwrap()[0];
            let s = c.add_machine(&splitter(), &[m]).unwrap();
            let j = c.add_machine(&jtl(7.0), &[s[1]]).unwrap()[0];
            c.close_loop(j, fb).unwrap();
            c.inspect(s[0], "Q");
            c
        };
        let scalar = Simulation::new(build()).until(300.0).run().unwrap();
        assert!(scalar.times("Q").len() > 3, "oscillator should ring");
        for threads in [2, 3, 4] {
            let mut par = ParallelSim::new(build()).until(300.0).threads(threads);
            let ev = par.run().unwrap();
            assert_same_events(&scalar, &ev);
        }
    }

    #[test]
    fn until_cutoff_matches_scalar() {
        let scalar = Simulation::new(chain(6)).until(40.0).run().unwrap();
        let mut par = ParallelSim::new(chain(6)).until(40.0).threads(4);
        assert_same_events(&scalar, &par.run().unwrap());
        assert!(par.last_run_parallel());
    }

    #[test]
    fn violation_reruns_scalar_for_identical_diagnostic() {
        let tight = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let build = |tight: &Arc<Machine>| {
            // The 6 ps stage is above LANE_BIAS so the cut actually happens
            // and the violation fires on the partitioned path.
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 11.0], "A");
            let j = c.add_machine(&jtl(6.0), &[a]).unwrap()[0];
            let q = c.add_machine(tight, &[j]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let scalar_err = format!("{:?}", Simulation::new(build(&tight)).run().unwrap_err());
        let tel = Telemetry::new();
        let mut par = ParallelSim::new(build(&tight)).threads(2).telemetry(&tel);
        let par_err = format!("{:?}", par.run().unwrap_err());
        assert_eq!(scalar_err, par_err);
        assert!(!par.last_run_parallel());
        assert_eq!(tel.report().counter("par.violation_rerun"), 1);
    }

    #[test]
    fn ineligible_circuits_fall_back_with_counter() {
        let tel = Telemetry::new();
        // threads = 1
        let mut p1 = ParallelSim::new(chain(4)).threads(1).telemetry(&tel);
        p1.run().unwrap();
        assert!(!p1.last_run_parallel());
        assert_eq!(tel.report().counter("par.fallback_scalar"), 1);
        // variability
        let mut p2 = ParallelSim::new(chain(4))
            .threads(4)
            .variability(Variability::Gaussian { std: 0.1 })
            .seed(7)
            .telemetry(&tel);
        p2.run().unwrap();
        assert!(!p2.last_run_parallel());
        assert_eq!(tel.report().counter("par.fallback_scalar"), 2);
        // hole
        use crate::functional::Hole;
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let h = Hole::new("h", 1.0, &["a"], &["q"], |_, _| vec![true]);
        let hq = c.add_hole(h, &[a]).unwrap()[0];
        let q = c.add_machine(&jtl(2.0), &[hq]).unwrap()[0];
        c.inspect(q, "Q");
        let mut p3 = ParallelSim::from_simulation(Simulation::new(c).telemetry(&tel)).threads(4);
        p3.run().unwrap();
        assert!(!p3.last_run_parallel());
        assert_eq!(tel.report().counter("par.fallback_scalar"), 3);
    }

    #[test]
    fn variability_fallback_matches_scalar_jitter_stream() {
        let scalar = Simulation::new(chain(5))
            .variability(Variability::Gaussian { std: 0.3 })
            .seed(11)
            .run()
            .unwrap();
        let mut par = ParallelSim::new(chain(5))
            .threads(8)
            .variability(Variability::Gaussian { std: 0.3 })
            .seed(11);
        assert_same_events(&scalar, &par.run().unwrap());
    }

    #[test]
    fn telemetry_counters_are_deterministic_and_account_dispatches() {
        let run_once = || {
            let tel = Telemetry::new();
            let mut par = ParallelSim::new(chain(10)).threads(4).telemetry(&tel);
            par.run().unwrap();
            assert!(par.last_run_parallel());
            tel.report()
        };
        let r1 = run_once();
        let r2 = run_once();
        assert_eq!(r1, r2, "par.* counters must not depend on scheduling");
        // 3 pulses through 10 JTLs = 30 dispatches, exactly the scalar count.
        assert_eq!(r1.counter("par.dispatches"), 30);
        assert_eq!(r1.counter("par.runs"), 1);
        assert!(r1.counter("par.epochs") >= 1);
        assert!(r1.gauge("par.regions") >= 2);
        assert!(r1.counter("par.cross_pulses") >= 1);
    }

    #[test]
    fn reused_parallel_sim_reproduces_runs() {
        let mut par = ParallelSim::new(chain(8)).threads(4).with_trace();
        let ev1 = par.run().unwrap();
        let tr1 = par.trace().to_vec();
        let ev2 = par.run().unwrap();
        assert_same_events(&ev1, &ev2);
        assert_eq!(tr1, par.trace());
    }
}
