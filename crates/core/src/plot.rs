//! Text waveform rendering (stands in for the paper's matplotlib plots,
//! e.g. Fig. 10, 12b, 16a–c).
//!
//! Each named wire is drawn as one row with `|` marks at pulse instants:
//!
//! ```text
//! A   |····|···|····|···
//! CLK ··|····|····|····|
//! ```

use crate::error::Time;
use crate::events::Events;

/// Options for [`render`].
#[derive(Debug, Clone, Copy)]
pub struct PlotOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Explicit time range; defaults to `[0, max pulse time + 5%]`.
    pub range: Option<(Time, Time)>,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 100,
            range: None,
        }
    }
}

/// Render the events as an ASCII waveform, one row per named wire, plus a
/// time-axis footer.
pub fn render(events: &Events, opts: PlotOptions) -> String {
    let (t0, t1) = opts.range.unwrap_or_else(|| {
        let max = events
            .iter()
            .flat_map(|(_, ts)| ts.iter().copied())
            .fold(0.0_f64, f64::max);
        (0.0, if max > 0.0 { max * 1.05 } else { 1.0 })
    });
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    let width = opts.width.max(10);
    let name_w = events
        .names()
        .map(str::len)
        .max()
        .unwrap_or(4)
        .max(4);

    let mut out = String::new();
    for (name, times) in events.iter() {
        let mut row = vec!['·'; width];
        for &t in times {
            if t < t0 || t > t1 {
                continue;
            }
            let col = (((t - t0) / span) * (width - 1) as f64).round() as usize;
            row[col.min(width - 1)] = '|';
        }
        out.push_str(&format!("{name:<name_w$} "));
        out.extend(row);
        out.push('\n');
    }
    // Axis with ~5 tick labels.
    let mut axis = vec![' '; width];
    let mut labels = String::new();
    let ticks = 5usize;
    for i in 0..=ticks {
        let col = i * (width - 1) / ticks;
        axis[col] = '+';
        let t = t0 + span * i as f64 / ticks as f64;
        let lbl = format!("{t:.0}");
        let pos = name_w + 1 + col;
        while labels.len() < pos {
            labels.push(' ');
        }
        labels.push_str(&lbl);
    }
    out.push_str(&format!("{:<name_w$} ", ""));
    out.extend(axis);
    out.push('\n');
    out.push_str(&labels);
    out.push('\n');
    out
}

/// Render with default options.
pub fn render_default(events: &Events) -> String {
    render(events, PlotOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn render_marks_pulses() {
        let mut m = BTreeMap::new();
        m.insert("A".to_string(), vec![0.0, 50.0, 100.0]);
        m.insert("LONGNAME".to_string(), vec![100.0]);
        let e = Events::from_map(m);
        let s = render(
            &e,
            PlotOptions {
                width: 101,
                range: Some((0.0, 100.0)),
            },
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("A"));
        // Pulses at columns 0, 50, 100 of the plot area.
        let plot = &lines[0][9..]; // "LONGNAME" = 8 chars + 1 space
        assert_eq!(plot.chars().next(), Some('|'));
        assert_eq!(plot.chars().nth(50), Some('|'));
        assert_eq!(plot.chars().nth(100), Some('|'));
        assert!(lines[1].starts_with("LONGNAME"));
        assert!(s.contains('+'));
    }

    #[test]
    fn render_handles_empty_events() {
        let e = Events::from_map(BTreeMap::new());
        let s = render_default(&e);
        assert!(s.contains('+'));
    }

    #[test]
    fn out_of_range_pulses_are_skipped() {
        let mut m = BTreeMap::new();
        m.insert("A".to_string(), vec![500.0]);
        let e = Events::from_map(m);
        let s = render(
            &e,
            PlotOptions {
                width: 20,
                range: Some((0.0, 100.0)),
            },
        );
        assert!(!s.lines().next().unwrap().contains('|'));
    }
}
