//! Static analysis of machines and circuits beyond the constructive checks
//! (paper §4.2 and the VeriSFQ-style structural checks of §6).
//!
//! [`Machine::new`](crate::machine::Machine::new) already rejects ill-formed
//! definitions (unknown names, missing `idle`, incomplete specification, no
//! firing transition), and [`Circuit`] enforces fanout-of-one structurally.
//! This module adds *lint-style* diagnostics that are legal but usually
//! wrong: unreachable states, dead transitions, silent input sources,
//! unobserved outputs, and clocked cells fed from unrelated clock roots.

use crate::circuit::{Circuit, NodeId};
use crate::machine::Machine;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A lint finding; none of these prevent simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Lint {
    /// A state can never be entered from `idle`.
    UnreachableState {
        /// Machine name.
        machine: String,
        /// The unreachable state.
        state: String,
    },
    /// A transition whose source state is unreachable.
    DeadTransition {
        /// Machine name.
        machine: String,
        /// Transition index.
        transition: usize,
    },
    /// An input source that never produces a pulse.
    SilentSource {
        /// The source's wire name.
        wire: String,
    },
    /// A circuit output wire nobody observes (unnamed, so its pulses are
    /// invisible in the events dictionary).
    UnobservedOutput {
        /// The anonymous wire name (`_N`).
        wire: String,
    },
    /// Two clocked cells whose `clk` inputs trace back to different input
    /// sources — usually a wiring mistake in synchronous designs.
    MixedClockRoots {
        /// The distinct clock-root wire names found.
        roots: Vec<String>,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnreachableState { machine, state } => {
                write!(f, "state '{state}' of FSM '{machine}' is unreachable from idle")
            }
            Lint::DeadTransition { machine, transition } => write!(
                f,
                "transition {transition} of FSM '{machine}' can never fire (unreachable source)"
            ),
            Lint::SilentSource { wire } => {
                write!(f, "input '{wire}' never produces a pulse")
            }
            Lint::UnobservedOutput { wire } => write!(
                f,
                "output wire '{wire}' is unnamed; its pulses will not appear in the events dictionary"
            ),
            Lint::MixedClockRoots { roots } => write!(
                f,
                "clocked cells are driven from different clock roots: {roots:?}"
            ),
        }
    }
}

/// The result of [`analyze`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in deterministic order.
    pub lints: Vec<Lint>,
}

impl Report {
    /// True if no findings were produced.
    pub fn is_clean(&self) -> bool {
        self.lints.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lints.is_empty() {
            writeln!(f, "no findings")
        } else {
            for l in &self.lints {
                writeln!(f, "- {l}")?;
            }
            Ok(())
        }
    }
}

/// States reachable from `idle` by any input sequence (ignoring timing).
pub fn reachable_states(m: &Machine) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    let mut work = VecDeque::new();
    seen.insert(m.start().0);
    work.push_back(m.start());
    while let Some(q) = work.pop_front() {
        for i in 0..m.inputs().len() {
            let t = m.transition_for(q, crate::machine::InputId(i));
            if seen.insert(t.dst.0) {
                work.push_back(t.dst);
            }
        }
    }
    seen
}

/// Lint a single machine definition.
pub fn analyze_machine(m: &Machine) -> Vec<Lint> {
    let reach = reachable_states(m);
    let mut lints = Vec::new();
    for (si, s) in m.states().iter().enumerate() {
        if !reach.contains(&si) {
            lints.push(Lint::UnreachableState {
                machine: m.name().to_string(),
                state: s.clone(),
            });
        }
    }
    for t in m.transitions() {
        if !reach.contains(&t.src.0) {
            lints.push(Lint::DeadTransition {
                machine: m.name().to_string(),
                transition: t.id,
            });
        }
    }
    lints
}

/// Trace a wire upstream through single-input transport until an input
/// source or a multi-input cell is found; returns the root wire name for
/// sources, or `None` otherwise.
fn clock_root(circ: &Circuit, mut node: NodeId, mut port: usize) -> Option<String> {
    // Walk: the wire feeding (node, port) is driven by some (driver, dport);
    // keep walking single-input machines (JTL) and splitters.
    for _ in 0..10_000 {
        let wire = circ.node_in_wires(node).get(port).copied()?;
        let (driver, dport) = circ.wire_driver(wire);
        if circ.node_source_times(driver).is_some() {
            let w = circ.node_out_wires(driver)[0];
            return Some(circ.wire_name(w).to_string());
        }
        match circ.node_machine(driver) {
            Some(spec) if spec.inputs().len() == 1 => {
                node = driver;
                port = 0;
                let _ = dport;
            }
            _ => return None,
        }
    }
    None
}

/// Lint a whole circuit.
pub fn analyze(circ: &Circuit) -> Report {
    let mut lints = Vec::new();
    // Machine-level lints, once per distinct machine type.
    let mut seen_types = BTreeSet::new();
    for (_, spec) in circ.machines() {
        if seen_types.insert(spec.name().to_string()) {
            lints.extend(analyze_machine(spec));
        }
    }
    // Silent sources.
    for (name, times) in circ.sources() {
        if times.is_empty() {
            lints.push(Lint::SilentSource {
                wire: name.to_string(),
            });
        }
    }
    // Unobserved outputs.
    for w in circ.output_wires() {
        if !circ.wire_observed(w) {
            lints.push(Lint::UnobservedOutput {
                wire: circ.wire_name(w).to_string(),
            });
        }
    }
    // Clock-root analysis: collect the root of every input named "clk".
    let mut roots: BTreeMap<String, usize> = BTreeMap::new();
    for (node, spec) in circ.machines() {
        for (port, input) in spec.inputs().iter().enumerate() {
            if input == "clk" {
                if let Some(root) = clock_root(circ, node, port) {
                    *roots.entry(root).or_insert(0) += 1;
                }
            }
        }
    }
    if roots.len() > 1 {
        lints.push(Lint::MixedClockRoots {
            roots: roots.keys().cloned().collect(),
        });
    }
    Report { lints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{EdgeDef, Machine};

    fn jtl() -> std::sync::Arc<Machine> {
        Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
            src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default()
        }]).unwrap()
    }

    #[test]
    fn unreachable_state_is_flagged() {
        // 'limbo' is fully specified but no edge from the reachable region
        // enters it.
        let m = Machine::new(
            "X",
            &["a"],
            &["q"],
            1.0,
            1,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
                EdgeDef { src: "limbo", trigger: "a", dst: "idle", ..Default::default() },
            ],
        )
        .unwrap();
        let lints = analyze_machine(&m);
        assert!(lints.iter().any(|l| matches!(l, Lint::UnreachableState { state, .. } if state == "limbo")));
        assert!(lints.iter().any(|l| matches!(l, Lint::DeadTransition { transition: 1, .. })));
    }

    #[test]
    fn clean_machine_has_no_lints() {
        assert!(analyze_machine(&jtl()).is_empty());
    }

    #[test]
    fn silent_sources_and_unobserved_outputs() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[], "A");
        let _q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        let report = analyze(&c);
        assert!(report
            .lints
            .iter()
            .any(|l| matches!(l, Lint::SilentSource { wire } if wire == "A")));
        assert!(report
            .lints
            .iter()
            .any(|l| matches!(l, Lint::UnobservedOutput { .. })));
        assert!(!report.is_clean());
        assert!(report.to_string().contains("never produces a pulse"));
    }

    #[test]
    fn mixed_clock_roots_are_flagged() {
        let clocked = Machine::new(
            "G",
            &["a", "clk"],
            &["q"],
            1.0,
            1,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "arr", ..Default::default() },
                EdgeDef { src: "idle", trigger: "clk", dst: "idle", ..Default::default() },
                EdgeDef { src: "arr", trigger: "a", dst: "arr", ..Default::default() },
                EdgeDef { src: "arr", trigger: "clk", dst: "idle", firing: "q", ..Default::default() },
            ],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a1 = c.inp_at(&[10.0], "A1");
        let a2 = c.inp_at(&[10.0], "A2");
        let clk1 = c.inp_at(&[50.0], "CLK1");
        let clk2 = c.inp_at(&[50.0], "CLK2");
        let q1 = c.add_machine(&clocked, &[a1, clk1]).unwrap()[0];
        let q2 = c.add_machine(&clocked, &[a2, clk2]).unwrap()[0];
        c.inspect(q1, "Q1");
        c.inspect(q2, "Q2");
        let report = analyze(&c);
        assert!(report
            .lints
            .iter()
            .any(|l| matches!(l, Lint::MixedClockRoots { roots } if roots.len() == 2)));
    }

    #[test]
    fn single_clock_root_through_jtl_is_clean() {
        let clocked = Machine::new(
            "G",
            &["a", "clk"],
            &["q"],
            1.0,
            1,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "arr", ..Default::default() },
                EdgeDef { src: "idle", trigger: "clk", dst: "idle", ..Default::default() },
                EdgeDef { src: "arr", trigger: "a", dst: "arr", ..Default::default() },
                EdgeDef { src: "arr", trigger: "clk", dst: "idle", firing: "q", ..Default::default() },
            ],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let clk = c.inp_at(&[50.0], "CLK");
        let delayed = c.add_machine(&jtl(), &[clk]).unwrap()[0];
        let q = c.add_machine(&clocked, &[a, delayed]).unwrap()[0];
        c.inspect(q, "Q");
        let report = analyze(&c);
        assert!(!report
            .lints
            .iter()
            .any(|l| matches!(l, Lint::MixedClockRoots { .. })));
    }

    #[test]
    fn reachable_states_covers_whole_good_machines() {
        let m = jtl();
        assert_eq!(reachable_states(&m).len(), 1);
    }
}
