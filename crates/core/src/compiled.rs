//! One-time compilation of a [`Circuit`] into flat, index-addressed dispatch
//! tables — the allocation-free backbone of the pulse simulator's hot path.
//!
//! The simulator of early RLSE versions interpreted the circuit directly:
//! every dispatched batch cloned machine configurations, wire-name strings,
//! and freshly allocated batch/sigma/fired vectors. This module lowers the
//! whole circuit **once per [`Simulation`](crate::sim::Simulation)** into:
//!
//! * a per-machine **transition table** dense in `(state, input)`, with
//!   firing delays and past-constraint lists resolved to contiguous arrays
//!   (`CompiledMachine`), so a dispatch is a handful of array lookups;
//! * an interned **symbol table** ([`SymbolTable`]) holding every cell-type,
//!   wire, state, and port name exactly once, so the event loop passes `u32`
//!   symbols and strings are materialized only at the trace/VCD/error
//!   boundary;
//! * flat **routing arrays** (`out_wires` / `sink`) replacing the pointer
//!   walk through `Node`/`WireData` structs when delivering fired pulses.
//!
//! Compilation is pure: it never changes observable semantics. Golden traces
//! are byte-identical because every string a [`TraceEntry`]
//! (crate::sim::TraceEntry) or timing diagnostic needs is interned verbatim
//! at compile time and resolved back on demand.

use crate::circuit::{Circuit, NodeKind};
use crate::machine::{InputId, Machine, StateId};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// FNV-1a hasher: compilation hashes thousands of short strings and pointer
/// keys, where SipHash's per-key setup dominates. Not DoS-resistant — fine
/// for compiler-internal tables keyed by circuit-controlled names.
#[derive(Debug, Default)]
struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
    fn write_u64(&mut self, n: u64) {
        let h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        self.0 = (h ^ n).wrapping_mul(FNV_PRIME);
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// An interned string: a dense `u32` id into a [`SymbolTable`].
///
/// Symbols are only meaningful together with the table that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of this symbol within its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner: each distinct string is stored once and addressed by a
/// dense [`Symbol`]. Built during circuit compilation; read-only afterwards.
#[derive(Debug, Default)]
pub struct SymbolTable {
    strings: Vec<String>,
    index: FastMap<String, u32>,
}

impl SymbolTable {
    /// Intern `s`, returning its (stable) symbol. Repeated calls with the
    /// same string return the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&i) = self.index.get(s) {
            return Symbol(i);
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        Symbol(i)
    }

    /// Intern `s` without registering it for deduplication: a later
    /// [`intern`](Self::intern) of the same string mints a fresh symbol.
    /// Used for node-wire names, which are unique per circuit by
    /// construction — skipping the dedup map halves compile-time hashing.
    /// Resolution behaves identically either way.
    pub(crate) fn intern_untracked(&mut self, s: &str) -> Symbol {
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        Symbol(i)
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One row of a compiled transition table: everything
/// [`Machine::step`](crate::machine::Machine::step) needs, as plain numbers
/// and ranges into the owning [`CompiledMachine`]'s flat arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledTransition {
    /// Transition id (for diagnostics; matches `Transition::id`).
    pub(crate) id: u32,
    /// Destination state.
    pub(crate) dst: u32,
    /// Priority among simultaneous triggers; lower wins.
    pub(crate) priority: u32,
    /// `τ_tran`: time for the transition to complete.
    pub(crate) tau_tran: f64,
    /// Range into [`CompiledMachine::firings`].
    pub(crate) fire: (u32, u32),
    /// Range into [`CompiledMachine::pasts`].
    pub(crate) past: (u32, u32),
}

/// A [`Machine`] lowered to dense arrays: the transition table is indexed by
/// `state * n_inputs + input`, and firing/past-constraint lists live in two
/// shared flat arrays addressed by ranges.
#[derive(Debug)]
pub struct CompiledMachine {
    pub(crate) n_inputs: u32,
    pub(crate) start: u32,
    /// Dense `(state, input)` table.
    pub(crate) table: Vec<CompiledTransition>,
    /// Flat `(output port, firing delay)` pairs.
    pub(crate) firings: Vec<(u32, f64)>,
    /// Flat `(input port, min distance)` past-constraint pairs.
    pub(crate) pasts: Vec<(u32, f64)>,
    pub(crate) name: Symbol,
    pub(crate) states: Vec<Symbol>,
    pub(crate) inputs: Vec<Symbol>,
    pub(crate) outputs: Vec<Symbol>,
}

impl CompiledMachine {
    fn compile(spec: &Machine, syms: &mut SymbolTable) -> Self {
        let n_in = spec.inputs().len();
        let n_states = spec.states().len();
        let mut table = Vec::with_capacity(n_states * n_in);
        let mut firings = Vec::new();
        let mut pasts = Vec::new();
        for q in 0..n_states {
            for s in 0..n_in {
                let t = spec.transition_for(StateId(q), InputId(s));
                let f0 = firings.len() as u32;
                firings.extend(t.firing.iter().map(|&(o, d)| (o.0 as u32, d)));
                let p0 = pasts.len() as u32;
                pasts.extend(t.past_constraints.iter().map(|&(i, d)| (i.0 as u32, d)));
                table.push(CompiledTransition {
                    id: t.id as u32,
                    dst: t.dst.0 as u32,
                    priority: t.priority,
                    tau_tran: t.transition_time,
                    fire: (f0, firings.len() as u32),
                    past: (p0, pasts.len() as u32),
                });
            }
        }
        CompiledMachine {
            n_inputs: n_in as u32,
            start: spec.start().0 as u32,
            table,
            firings,
            pasts,
            name: syms.intern(spec.name()),
            states: spec.states().iter().map(|s| syms.intern(s)).collect(),
            inputs: spec.inputs().iter().map(|s| syms.intern(s)).collect(),
            outputs: spec.outputs().iter().map(|s| syms.intern(s)).collect(),
        }
    }

    /// `δ(state, port)` as a table lookup.
    #[inline]
    pub(crate) fn transition(&self, state: u32, port: u32) -> &CompiledTransition {
        &self.table[(state * self.n_inputs + port) as usize]
    }

    /// Structural-equality hash of a machine definition, used to share one
    /// compiled table between distinct `Arc<Machine>` instances (per-instance
    /// delay overrides clone the spec, so pointer identity under-shares).
    fn fingerprint(spec: &Machine) -> u64 {
        let mut h = FnvHasher::default();
        spec.name().hash(&mut h);
        h.write_usize(spec.start().0);
        h.write_u64(spec.firing_delay().to_bits());
        for group in [spec.states(), spec.inputs(), spec.outputs()] {
            h.write_usize(group.len());
            for s in group {
                s.hash(&mut h);
            }
        }
        for t in spec.transitions() {
            h.write_usize(t.src.0);
            h.write_usize(t.trigger.0);
            h.write_usize(t.dst.0);
            h.write_u32(t.priority);
            h.write_u64(t.transition_time.to_bits());
            for &(o, d) in &t.firing {
                h.write_usize(o.0);
                h.write_u64(d.to_bits());
            }
            for &(i, d) in &t.past_constraints {
                h.write_usize(i.0);
                h.write_u64(d.to_bits());
            }
        }
        h.finish()
    }

    /// Exact structural comparison against a spec — the collision guard
    /// behind [`fingerprint`](Self::fingerprint)-based sharing. Every field
    /// the compiled table carries must match.
    fn matches(&self, spec: &Machine, syms: &SymbolTable) -> bool {
        let names_match = |symbols: &[Symbol], names: &[String]| {
            symbols.len() == names.len()
                && symbols
                    .iter()
                    .zip(names)
                    .all(|(&s, n)| syms.resolve(s) == n.as_str())
        };
        if syms.resolve(self.name) != spec.name()
            || self.start as usize != spec.start().0
            || !names_match(&self.states, spec.states())
            || !names_match(&self.inputs, spec.inputs())
            || !names_match(&self.outputs, spec.outputs())
        {
            return false;
        }
        for q in 0..spec.states().len() {
            for s in 0..spec.inputs().len() {
                let orig = spec.transition_for(StateId(q), InputId(s));
                let comp = self.transition(q as u32, s as u32);
                if comp.id as usize != orig.id
                    || comp.dst as usize != orig.dst.0
                    || comp.priority != orig.priority
                    || comp.tau_tran.to_bits() != orig.transition_time.to_bits()
                {
                    return false;
                }
                let fire = &self.firings[comp.fire.0 as usize..comp.fire.1 as usize];
                if fire.len() != orig.firing.len()
                    || fire.iter().zip(&orig.firing).any(|(&(o, d), &(oo, od))| {
                        o as usize != oo.0 || d.to_bits() != od.to_bits()
                    })
                {
                    return false;
                }
                let past = &self.pasts[comp.past.0 as usize..comp.past.1 as usize];
                if past.len() != orig.past_constraints.len()
                    || past
                        .iter()
                        .zip(&orig.past_constraints)
                        .any(|(&(i, d), &(oi, od))| {
                            i as usize != oi.0 || d.to_bits() != od.to_bits()
                        })
                {
                    return false;
                }
            }
        }
        true
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.n_inputs as usize
    }

    /// Per-output minimum firing delay over every transition in the table
    /// (`+∞` for outputs no transition fires). This is the machine's
    /// *lookahead*: a pulse arriving at time `t` cannot produce a pulse on
    /// output `o` earlier than `t + min_out_delays()[o]`, which is what the
    /// conservative parallel event loop
    /// ([`sim::parallel`](crate::sim::parallel)) uses to bound how far a
    /// partition may safely run ahead of its neighbors.
    pub(crate) fn min_out_delays(&self) -> Vec<f64> {
        let mut min = vec![f64::INFINITY; self.outputs.len()];
        for tr in &self.table {
            for &(o, d) in &self.firings[tr.fire.0 as usize..tr.fire.1 as usize] {
                if d < min[o as usize] {
                    min[o as usize] = d;
                }
            }
        }
        min
    }

    /// The smallest firing delay anywhere in the table (`+∞` if the machine
    /// never fires). The parallel event loop requires this to be strictly
    /// positive for every machine in the circuit — zero-delay firings would
    /// collapse its cross-partition lookahead to nothing.
    pub(crate) fn min_firing_delay(&self) -> f64 {
        self.firings.iter().fold(f64::INFINITY, |m, &(_, d)| m.min(d))
    }

    /// Number of `(state, input)` table rows.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

/// One stimulus pulse, pre-resolved to its wire and reading sink so a
/// kernel can seed its pulse heap without touching the [`Circuit`]. Listed
/// in the scalar simulator's seeding order: source nodes in circuit order,
/// then pulses in declaration order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledStim {
    /// Pulse time.
    pub(crate) time: f64,
    /// The source node's output wire.
    pub(crate) wire: u32,
    /// The wire's reading `(node, port)`, or `(u32::MAX, 0)` if unread.
    pub(crate) sink: (u32, u32),
}

/// Per-node compiled shape: what kind of node it is plus the indices the
/// event loop needs to dispatch into it without touching the [`Circuit`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum CompiledNode {
    /// Stimulus source; receives no pulses.
    Source,
    /// A machine instance: which compiled table, where its `Θ` lives in the
    /// simulation's flat theta array, and whether it skips variability.
    Machine {
        cm: u32,
        theta_off: u32,
        exempt: bool,
    },
    /// A behavioral hole: offsets of its input/output port-name symbols in
    /// [`CompiledCircuit::hole_port_syms`].
    Hole { in_syms: u32, out_syms: u32 },
}

/// A [`Circuit`] lowered for simulation: compiled machines (shared between
/// instances of the same spec), per-node dispatch info, interned names, and
/// flat pulse-routing arrays. Built once per simulation by
/// [`CompiledCircuit::compile`] and retained across
/// [`Simulation::reset`](crate::sim::Simulation::reset), so Monte-Carlo
/// sweep workers pay compilation once per circuit, not once per trial.
#[derive(Debug)]
pub struct CompiledCircuit {
    pub(crate) symbols: SymbolTable,
    pub(crate) machines: Vec<CompiledMachine>,
    pub(crate) nodes: Vec<CompiledNode>,
    /// Per node: the name of its first output wire (the paper's node id),
    /// or `<node N>` for wire-less nodes.
    pub(crate) node_wire: Vec<Symbol>,
    /// Per node: the cell-type name (machine or hole name; sources reuse the
    /// wire symbol, which the event loop never reads).
    pub(crate) cell: Vec<Symbol>,
    /// Flat per-node output-wire indices; node `n` drives
    /// `out_wires[out_start[n]..out_start[n + 1]]`.
    pub(crate) out_wires: Vec<u32>,
    pub(crate) out_start: Vec<u32>,
    /// Per wire: the reading `(node, port)`, or `(u32::MAX, 0)` if unread.
    pub(crate) sink: Vec<(u32, u32)>,
    /// Interned hole port names, inputs then outputs per hole node.
    pub(crate) hole_port_syms: Vec<Symbol>,
    /// Total machine input ports — the length of the flat `Θ` array.
    pub(crate) theta_len: usize,
    /// Total stimulus pulses across every source node.
    pub(crate) stim_pulses: usize,
    /// Flat stimulus schedule in scalar seeding order (see [`CompiledStim`]).
    pub(crate) stim: Vec<CompiledStim>,
    /// Number of dispatchable nodes (machines and holes; sources excluded).
    pub(crate) dispatch_nodes: usize,
}

impl CompiledCircuit {
    /// Lower `circuit` into flat dispatch tables. Pure and infallible: an
    /// ill-formed circuit still compiles (validation stays in
    /// [`Circuit::check`]); compilation only reshapes data.
    pub fn compile(circuit: &Circuit) -> Self {
        let mut symbols = SymbolTable::default();
        let mut machines: Vec<CompiledMachine> = Vec::new();
        // Instances sharing one `Arc<Machine>` share one compiled table
        // (fast path); structurally identical specs behind distinct Arcs —
        // common when per-instance overrides clone the definition — share
        // via fingerprint + exact comparison.
        let mut by_ptr: FastMap<usize, u32> = FastMap::default();
        let mut by_shape: FastMap<u64, Vec<u32>> = FastMap::default();
        let n_nodes = circuit.nodes.len();
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut node_wire = Vec::with_capacity(n_nodes);
        let mut cell = Vec::with_capacity(n_nodes);
        let mut out_wires = Vec::new();
        let mut out_start = Vec::with_capacity(n_nodes + 1);
        let mut hole_port_syms = Vec::new();
        let mut theta_len = 0usize;
        let mut stim_pulses = 0usize;
        let mut dispatch_nodes = 0usize;
        let mut stim: Vec<CompiledStim> = Vec::new();

        for (i, node) in circuit.nodes.iter().enumerate() {
            let nw = match circuit.node_wire_name_ref(crate::circuit::NodeId(i)) {
                Some(name) => symbols.intern_untracked(name),
                None => symbols.intern_untracked(&format!("<node {i}>")),
            };
            node_wire.push(nw);
            match &node.kind {
                NodeKind::Source { pulses } => {
                    stim_pulses += pulses.len();
                    let wire = node.out_wires[0];
                    let sink = match circuit.wires[wire].sink {
                        Some((n, p)) => (n.0 as u32, p as u32),
                        None => (u32::MAX, 0),
                    };
                    stim.extend(pulses.iter().map(|&time| CompiledStim {
                        time,
                        wire: wire as u32,
                        sink,
                    }));
                    nodes.push(CompiledNode::Source);
                    cell.push(nw);
                }
                NodeKind::Machine { spec, overrides } => {
                    dispatch_nodes += 1;
                    let key = Arc::as_ptr(spec) as usize;
                    let cm = match by_ptr.get(&key) {
                        Some(&cm) => cm,
                        None => {
                            let shape = CompiledMachine::fingerprint(spec);
                            let candidates = by_shape.entry(shape).or_default();
                            let cm = match candidates
                                .iter()
                                .find(|&&c| machines[c as usize].matches(spec, &symbols))
                            {
                                Some(&cm) => cm,
                                None => {
                                    let cm = machines.len() as u32;
                                    machines.push(CompiledMachine::compile(spec, &mut symbols));
                                    by_shape.entry(shape).or_default().push(cm);
                                    cm
                                }
                            };
                            by_ptr.insert(key, cm);
                            cm
                        }
                    };
                    cell.push(machines[cm as usize].name);
                    nodes.push(CompiledNode::Machine {
                        cm,
                        theta_off: theta_len as u32,
                        exempt: overrides.exempt_from_variability,
                    });
                    theta_len += spec.inputs().len();
                }
                NodeKind::Hole(hole) => {
                    dispatch_nodes += 1;
                    let in0 = hole_port_syms.len() as u32;
                    for p in hole.inputs() {
                        hole_port_syms.push(symbols.intern(p));
                    }
                    let out0 = hole_port_syms.len() as u32;
                    for p in hole.outputs() {
                        hole_port_syms.push(symbols.intern(p));
                    }
                    cell.push(symbols.intern(hole.name()));
                    nodes.push(CompiledNode::Hole {
                        in_syms: in0,
                        out_syms: out0,
                    });
                }
            }
            out_start.push(out_wires.len() as u32);
            out_wires.extend(node.out_wires.iter().map(|&w| w as u32));
        }
        out_start.push(out_wires.len() as u32);

        let sink = circuit
            .wires
            .iter()
            .map(|w| match w.sink {
                Some((n, p)) => (n.0 as u32, p as u32),
                None => (u32::MAX, 0),
            })
            .collect();

        CompiledCircuit {
            symbols,
            machines,
            nodes,
            node_wire,
            cell,
            out_wires,
            out_start,
            sink,
            hole_port_syms,
            theta_len,
            stim_pulses,
            stim,
            dispatch_nodes,
        }
    }

    /// The symbol table of every interned name.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of distinct compiled machine specs (instances of one
    /// `Arc<Machine>` share a table).
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of compiled nodes (sources, machines, holes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total machine input ports: the size of the simulator's flat `Θ`
    /// (last-seen-time) array.
    pub fn theta_len(&self) -> usize {
        self.theta_len
    }

    /// A rough upper-bound estimate of dispatched batches per run, for
    /// pre-sizing the trace buffer: every stimulus pulse can reach at most
    /// every dispatchable node once on a feed-forward circuit. Capped so a
    /// pathological product never reserves unbounded memory; feedback loops
    /// can exceed the estimate, in which case the trace simply grows.
    pub fn event_estimate(&self) -> usize {
        self.stim_pulses.saturating_mul(self.dispatch_nodes).min(4096)
    }

    /// The output wires driven by `node`, as dense wire indices.
    #[inline]
    pub(crate) fn node_out_wires(&self, node: usize) -> &[u32] {
        &self.out_wires[self.out_start[node] as usize..self.out_start[node + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EdgeDef;

    fn jtl() -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            5.0,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    #[test]
    fn interning_is_stable_and_deduplicated() {
        let mut t = SymbolTable::default();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn shared_specs_compile_once() {
        let m = jtl();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q1 = c.add_machine(&m, &[a]).unwrap()[0];
        let _q2 = c.add_machine(&m, &[q1]).unwrap();
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.machine_count(), 1, "one table for both instances");
        assert_eq!(cc.node_count(), 3);
        assert_eq!(cc.theta_len(), 2, "one theta slot per instance input");
    }

    #[test]
    fn event_estimate_scales_with_stimulus_and_nodes() {
        let m = jtl();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 20.0, 30.0], "A");
        let q1 = c.add_machine(&m, &[a]).unwrap()[0];
        let _q2 = c.add_machine(&m, &[q1]).unwrap();
        let cc = CompiledCircuit::compile(&c);
        // 3 stimulus pulses x 2 dispatchable nodes.
        assert_eq!(cc.event_estimate(), 6);
        // The cap bounds pathological products.
        assert!(CompiledCircuit::compile(&c).event_estimate() <= 4096);
    }

    #[test]
    fn stim_schedule_mirrors_scalar_seeding_order() {
        let m = jtl();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let b = c.inp_at(&[20.0], "B");
        let q = c.add_machine(&m, &[a]).unwrap()[0];
        let _ = c.add_machine(&m, &[b]).unwrap();
        c.inspect(q, "Q");
        let cc = CompiledCircuit::compile(&c);
        // Node order then pulse order — not time order.
        let times: Vec<f64> = cc.stim.iter().map(|s| s.time).collect();
        assert_eq!(times, vec![10.0, 30.0, 20.0]);
        assert_eq!(cc.stim.len(), cc.stim_pulses);
        // Every stim pulse resolves its reading sink.
        assert_eq!(cc.stim[0].sink, (2, 0));
        assert_eq!(cc.stim[2].sink, (3, 0));
    }

    #[test]
    fn compiled_table_matches_machine_semantics() {
        let m = crate::machine::Machine::new(
            "M2",
            &["a", "b"],
            &["q"],
            3.0,
            1,
            &[
                EdgeDef {
                    src: "idle",
                    trigger: "a",
                    dst: "armed",
                    ..Default::default()
                },
                EdgeDef {
                    src: "idle",
                    trigger: "b",
                    dst: "idle",
                    ..Default::default()
                },
                EdgeDef {
                    src: "armed",
                    trigger: "b",
                    dst: "idle",
                    firing: "q",
                    transition_time: 2.0,
                    past_constraints: &[("a", 1.5)],
                    ..Default::default()
                },
                EdgeDef {
                    src: "armed",
                    trigger: "a",
                    dst: "armed",
                    ..Default::default()
                },
            ],
        )
        .unwrap();
        let mut syms = SymbolTable::default();
        let cm = CompiledMachine::compile(&m, &mut syms);
        assert_eq!(cm.table_len(), m.states().len() * m.inputs().len());
        assert_eq!(cm.input_count(), 2);
        for q in 0..m.states().len() {
            for s in 0..m.inputs().len() {
                let orig = m.transition_for(StateId(q), InputId(s));
                let comp = cm.transition(q as u32, s as u32);
                assert_eq!(comp.id as usize, orig.id);
                assert_eq!(comp.dst as usize, orig.dst.0);
                assert_eq!(comp.priority, orig.priority);
                assert_eq!(comp.tau_tran, orig.transition_time);
                let fire: Vec<(u32, f64)> =
                    cm.firings[comp.fire.0 as usize..comp.fire.1 as usize].to_vec();
                let orig_fire: Vec<(u32, f64)> =
                    orig.firing.iter().map(|&(o, d)| (o.0 as u32, d)).collect();
                assert_eq!(fire, orig_fire);
                let past: Vec<(u32, f64)> =
                    cm.pasts[comp.past.0 as usize..comp.past.1 as usize].to_vec();
                let orig_past: Vec<(u32, f64)> = orig
                    .past_constraints
                    .iter()
                    .map(|&(i, d)| (i.0 as u32, d))
                    .collect();
                assert_eq!(past, orig_past);
            }
        }
        assert_eq!(syms.resolve(cm.name), "M2");
        assert_eq!(syms.resolve(cm.states[cm.start as usize]), "idle");
    }

    #[test]
    fn wireless_nodes_get_placeholder_names() {
        // Compilation of any circuit interns the node-wire names; a node
        // always has at least one out wire in practice, so exercise the
        // normal path and the sink sentinel.
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        let q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.symbols().resolve(cc.node_wire[0]), "A");
        assert_eq!(cc.symbols().resolve(cc.node_wire[1]), "Q");
        // Q has no reader.
        let q_wire = cc.node_out_wires(1)[0] as usize;
        assert_eq!(cc.sink[q_wire].0, u32::MAX);
        // A's wire feeds node 1 port 0.
        let a_wire = cc.node_out_wires(0)[0] as usize;
        assert_eq!(cc.sink[a_wire], (1, 0));
    }
}
