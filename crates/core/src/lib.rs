//! # rlse-core — the PyLSE Machine formalism and pulse simulator
//!
//! This crate implements the core of RLSE, a Rust reproduction of PyLSE
//! (PLDI 2022): a pulse-transfer level language for superconductor
//! electronics.
//!
//! * [`machine`] — the PyLSE Machine `⟨Q, q_init, Σ, Λ, δ, μ, θ⟩` with the
//!   Transition / Dispatch / Trace semantics of the paper's Fig. 6.
//! * [`circuit`] — networks of machines and wires (the Network relation),
//!   with fanout-of-one enforcement.
//! * [`functional`] — behavioral "holes" mixing software models into pulse
//!   circuits.
//! * [`sim`] — the discrete-event simulator, with optional firing-delay
//!   variability, and [`sim::parallel`] — the conservative-parallel epoch
//!   loop that runs one large simulation across cores, bit-identical to the
//!   scalar kernel.
//! * [`compiled`] — the one-time lowering of a circuit into flat dispatch
//!   tables and interned names that makes the simulator's hot loop
//!   allocation-free.
//! * [`sweep`] — deterministically-seeded parallel Monte-Carlo sweeps over
//!   a circuit under variability (the §5.2 / Fig. 13 experiments).
//! * [`telemetry`] — zero-cost-when-disabled counters, spans, and timeline
//!   export shared by the simulator, the sweep engine, and (via `rlse-ta`)
//!   the model checker.
//! * [`ir`] — the versioned serializable netlist IR (hand-rolled JSON, a
//!   canonical content hash) and the [`ir::CompiledCache`] memoizing
//!   compiled artifacts across requests.
//! * [`events`] — the events dictionary and §5.2-style dynamic checks.
//! * [`plot`] — text waveform rendering.
//! * [`error`] — definition, wiring, and timing-violation errors, with
//!   Figure-13-style diagnostics.
//!
//! ## Example
//!
//! A C element (coincidence cell) fires when both inputs have arrived:
//!
//! ```
//! use rlse_core::prelude::*;
//! use rlse_core::machine::{EdgeDef, Machine};
//!
//! # fn main() -> Result<(), rlse_core::Error> {
//! let c_elem = Machine::new("C", &["a", "b"], &["q"], 12.0, 7, &[
//!     EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..EdgeDef::default() },
//!     EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..EdgeDef::default() },
//!     EdgeDef { src: "a_arr", trigger: "b", dst: "idle", firing: "q", ..EdgeDef::default() },
//!     EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..EdgeDef::default() },
//!     EdgeDef { src: "b_arr", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default() },
//!     EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..EdgeDef::default() },
//! ])?;
//!
//! let mut circuit = Circuit::new();
//! let a = circuit.inp_at(&[100.0], "A");
//! let b = circuit.inp_at(&[130.0], "B");
//! let q = circuit.add_machine(&c_elem, &[a, b])?[0];
//! circuit.inspect(q, "Q");
//! let events = Simulation::new(circuit).run()?;
//! assert_eq!(events.times("Q"), &[142.0]); // 130 + 12 ps
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod circuit;
pub mod compiled;
pub mod error;
pub mod events;
pub mod functional;
pub mod ir;
pub mod machine;
pub mod plot;
pub mod sim;
pub mod sweep;
pub mod telemetry;
pub mod validate;
pub mod vcd;

pub use error::{Error, Time};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::circuit::{Circuit, NodeOverrides, Wire};
    pub use crate::error::{Error, Time};
    pub use crate::events::Events;
    pub use crate::functional::Hole;
    pub use crate::ir::{CompiledCache, Ir, IrQuery};
    pub use crate::machine::{EdgeDef, Machine};
    pub use crate::sim::parallel::ParallelSim;
    pub use crate::sim::{Simulation, TraceEntry, Variability};
    pub use crate::sweep::{OutputStats, Sweep, SweepError, SweepReport};
    pub use crate::telemetry::{Histogram, Telemetry, TelemetryReport};
}
