//! A persistent compiled-artifact cache keyed on [`Ir::content_hash`].
//!
//! The expensive per-circuit artifacts — the flat dispatch tables of
//! [`CompiledCircuit`] and, via the type-keyed sidecar, downstream artifacts
//! such as the analog engine's cell templates — are memoized across
//! requests. Entries store the full canonical byte encoding and compare it
//! exactly on lookup, so a 64-bit hash collision can never alias two
//! different circuits.
//!
//! The cache is built for concurrent callers (the `rlse-serve` worker pool
//! hits one shared instance from every request worker):
//!
//! * **Sharding** — entries and sidecars are split across
//!   [`SHARDS`] independently-locked shards by content hash, so lookups for
//!   different circuits never contend on one lock.
//! * **Single-flight compilation** — when N requests for the same hash
//!   arrive while no entry exists yet, exactly one caller compiles; the
//!   rest block on the in-flight marker and are served the finished entry
//!   (counted in [`singleflight_waits`](CompiledCache::singleflight_waits)
//!   and the `ir_cache.singleflight_waits` telemetry counter). If the
//!   compiling caller panics, waiters wake and retry — one of them becomes
//!   the new leader — so a poisoned flight can never strand the queue.
//! * **Global LRU** — the entry cap is enforced across all shards: the
//!   eviction path briefly locks every shard (in index order) and removes
//!   the globally least-recently-used entry. Eviction is the rare slow path
//!   by construction, so the full sweep does not affect steady-state
//!   lookups.

use super::{Ir, IrError};
use crate::circuit::Circuit;
use crate::compiled::CompiledCircuit;
use crate::telemetry::Telemetry;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Number of independently-locked shards (a power of two; the shard index
/// is the hash's low bits).
const SHARDS: usize = 16;

/// The result of a cache lookup: the rebuilt circuit plus the (possibly
/// memoized) compiled form.
#[derive(Debug)]
pub struct CacheOutcome {
    /// The IR's content hash — the cache key, also usable with the sidecar.
    pub hash: u64,
    /// True if the compiled circuit was served from the cache (including
    /// after waiting on another caller's in-flight compilation).
    pub hit: bool,
    /// A fresh circuit rebuilt from the IR (cheap; every caller needs one).
    pub circuit: Circuit,
    /// The compiled dispatch tables, shared with the cache.
    pub compiled: Arc<CompiledCircuit>,
}

struct Entry {
    canon: Vec<u8>,
    compiled: Arc<CompiledCircuit>,
    /// Tick of the last lookup that touched this entry (LRU eviction key).
    last_used: u64,
}

/// An in-flight compilation: waiters block on the condvar until the leader
/// marks it done (or abandons it by unwinding).
struct Flight {
    canon: Vec<u8>,
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new(canon: Vec<u8>) -> Self {
        Flight {
            canon,
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Block until the leader finishes (successfully or not).
    fn wait(&self) {
        let mut done = self.done.lock().expect("flight poisoned");
        while !*done {
            done = self.cv.wait(done).expect("flight poisoned");
        }
    }

    /// Wake every waiter; called exactly once, by the leader's guard.
    fn finish(&self) {
        *self.done.lock().expect("flight poisoned") = true;
        self.cv.notify_all();
    }
}

/// Removes the leader's flight marker and wakes waiters on drop, so a
/// panicking compile can never strand the waiters — they retry and one
/// becomes the new leader.
struct FlightGuard<'a> {
    cache: &'a CompiledCache,
    hash: u64,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut shard = self.cache.shard(self.hash);
        if shard
            .flights
            .get(&self.hash)
            .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
        {
            shard.flights.remove(&self.hash);
        }
        drop(shard);
        self.flight.finish();
    }
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Vec<Entry>>,
    flights: HashMap<u64, Arc<Flight>>,
}

type SidecarShard = HashMap<(u64, TypeId), Arc<dyn Any + Send + Sync>>;

/// A thread-safe memo of compiled circuits keyed on IR content, with a
/// type-keyed sidecar for downstream artifacts (e.g. analog cell-template
/// banks) cached under the same hash. Sharded and single-flight — see the
/// module docs for the concurrency design.
///
/// By default the cache is **unbounded**: every distinct circuit compiled
/// through it stays resident (entries plus their sidecars) until
/// [`clear`](CompiledCache::clear) or drop. That is the right trade for
/// batch runs over a fixed request corpus; a long-lived embedder fed many
/// distinct IRs should cap it with
/// [`with_max_entries`](CompiledCache::with_max_entries), which evicts the
/// globally least-recently-used entry (and its sidecars) on overflow.
///
/// ```
/// use rlse_core::circuit::Circuit;
/// use rlse_core::ir::{CompiledCache, Ir};
/// # use rlse_core::machine::{EdgeDef, Machine};
/// # let jtl = Machine::new("JTL", &["a"], &["q"], 5.7, 2, &[EdgeDef {
/// #     src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default()
/// # }]).unwrap();
/// let mut c = Circuit::new();
/// let a = c.inp_at(&[10.0], "A");
/// let q = c.add_machine(&jtl, &[a]).unwrap()[0];
/// c.inspect(q, "Q");
/// let ir = Ir::from_circuit(&c).unwrap();
///
/// let cache = CompiledCache::new();
/// let first = cache.get_or_compile(&ir).unwrap();
/// let second = cache.get_or_compile(&ir).unwrap();
/// assert!(!first.hit && second.hit);
/// assert!(std::sync::Arc::ptr_eq(&first.compiled, &second.compiled));
/// ```
pub struct CompiledCache {
    shards: Vec<Mutex<Shard>>,
    sidecars: Vec<Mutex<SidecarShard>>,
    /// Entry count across all shards (kept in step under the shard locks;
    /// read lock-free for the cheap over-cap check).
    count: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    singleflight_waits: AtomicU64,
    /// Monotone lookup counter stamping `Entry::last_used`.
    tick: AtomicU64,
    /// Entry cap; `None` means unbounded (the default).
    max_entries: Option<usize>,
    telemetry: Telemetry,
    /// Test hook run by the compile leader between claiming the flight and
    /// compiling; lets tests hold the compile open deterministically.
    #[cfg(test)]
    compile_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for CompiledCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("singleflight_waits", &self.singleflight_waits())
            .finish()
    }
}

impl Default for CompiledCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CompiledCache {
    /// An empty, unbounded cache with no telemetry attached.
    pub fn new() -> Self {
        CompiledCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            sidecars: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            count: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            max_entries: None,
            telemetry: Telemetry::disabled(),
            #[cfg(test)]
            compile_hook: Mutex::new(None),
        }
    }

    /// Bound the cache to at most `max` compiled circuits (clamped to at
    /// least 1). Inserting past the bound evicts the globally
    /// least-recently-used entry, along with its sidecars once no other
    /// entry shares its hash; evictions count `ir_cache.evictions` on the
    /// attached telemetry.
    #[must_use]
    pub fn with_max_entries(mut self, max: usize) -> Self {
        self.max_entries = Some(max.max(1));
        self
    }

    /// Attach a telemetry handle; lookups count `ir_cache.hits` /
    /// `ir_cache.misses` / `ir_cache.singleflight_waits` (and
    /// `ir_cache.sidecar_hits` / `_misses`) on it.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    fn shard(&self, hash: u64) -> MutexGuard<'_, Shard> {
        self.shards[hash as usize & (SHARDS - 1)]
            .lock()
            .expect("compiled cache poisoned")
    }

    fn sidecar_shard(&self, hash: u64) -> MutexGuard<'_, SidecarShard> {
        self.sidecars[hash as usize & (SHARDS - 1)]
            .lock()
            .expect("sidecar cache poisoned")
    }

    /// Rebuild the IR's circuit and return its compiled form, compiling at
    /// most once per distinct canonical content — even under contention:
    /// concurrent callers for the same content wait for the one in-flight
    /// compilation instead of duplicating it, and are served as hits.
    ///
    /// The circuit is re-validated **before** the IR is hashed, on every
    /// call: [`Ir::to_circuit`] rejects dangling machine indices (among
    /// other malformations) that [`Ir::canonical_bytes`] would panic on, so
    /// an untrusted document can never panic the cache.
    ///
    /// # Errors
    ///
    /// Any [`IrError`] from [`Ir::to_circuit`].
    pub fn get_or_compile(&self, ir: &Ir) -> Result<CacheOutcome, IrError> {
        let circuit = ir.to_circuit()?;
        let canon = ir.canonical_bytes();
        let hash = super::fnv1a(&canon);

        loop {
            let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
            let flight = {
                let mut shard = self.shard(hash);
                if let Some(found) = shard
                    .entries
                    .get_mut(&hash)
                    .and_then(|bucket| bucket.iter_mut().find(|e| e.canon == canon))
                    .map(|e| {
                        e.last_used = stamp;
                        Arc::clone(&e.compiled)
                    })
                {
                    drop(shard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.add("ir_cache.hits", 1);
                    return Ok(CacheOutcome {
                        hash,
                        hit: true,
                        circuit,
                        compiled: found,
                    });
                }
                match shard.flights.get(&hash) {
                    // Same content is already compiling: join the flight.
                    Some(f) if f.canon == canon => Some(Arc::clone(f)),
                    // A different canon under the same 64-bit hash is
                    // compiling (vanishingly rare): compile independently,
                    // without registering a flight of our own.
                    Some(_) => None,
                    None => {
                        let f = Arc::new(Flight::new(canon.clone()));
                        shard.flights.insert(hash, Arc::clone(&f));
                        None
                    }
                }
            };

            if let Some(flight) = flight {
                self.singleflight_waits.fetch_add(1, Ordering::Relaxed);
                self.telemetry.add("ir_cache.singleflight_waits", 1);
                flight.wait();
                // The leader either inserted the entry (next iteration is
                // a hit) or unwound (we race to become the new leader).
                continue;
            }

            // We are the compile leader (or an independent hash-collision
            // compile). The guard wakes waiters even if compile panics.
            let guard = {
                let shard = self.shard(hash);
                shard
                    .flights
                    .get(&hash)
                    .filter(|f| f.canon == canon)
                    .map(|f| FlightGuard {
                        cache: self,
                        hash,
                        flight: Arc::clone(f),
                    })
            };
            #[cfg(test)]
            if let Some(hook) = &*self.compile_hook.lock().expect("hook poisoned") {
                hook();
            }
            let compiled = Arc::new(CompiledCircuit::compile(&circuit));
            let compiled = {
                let mut shard = self.shard(hash);
                // A racing hash-collision compile of the same canon may
                // have inserted while we worked; keep theirs.
                match shard
                    .entries
                    .get_mut(&hash)
                    .and_then(|bucket| bucket.iter_mut().find(|e| e.canon == canon))
                {
                    Some(e) => {
                        e.last_used = stamp;
                        Arc::clone(&e.compiled)
                    }
                    None => {
                        shard.entries.entry(hash).or_default().push(Entry {
                            canon,
                            compiled: Arc::clone(&compiled),
                            last_used: stamp,
                        });
                        self.count.fetch_add(1, Ordering::Relaxed);
                        compiled
                    }
                }
            };
            drop(guard);
            if let Some(cap) = self.max_entries {
                self.enforce_cap(cap);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.telemetry.add("ir_cache.misses", 1);
            return Ok(CacheOutcome {
                hash,
                hit: false,
                circuit,
                compiled,
            });
        }
    }

    /// Evict globally least-recently-used entries until at most `cap`
    /// remain. Locks every shard (in index order — the only multi-shard
    /// lock path, so it cannot deadlock against single-shard users); once a
    /// victim's hash bucket empties, its sidecars go too.
    fn enforce_cap(&self, cap: usize) {
        if self.count.load(Ordering::Relaxed) <= cap {
            return;
        }
        let mut shards: Vec<MutexGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|m| m.lock().expect("compiled cache poisoned"))
            .collect();
        loop {
            let total: usize = shards
                .iter()
                .map(|s| s.entries.values().map(Vec::len).sum::<usize>())
                .sum();
            self.count.store(total, Ordering::Relaxed);
            if total <= cap {
                return;
            }
            let victim = shards
                .iter()
                .enumerate()
                .flat_map(|(si, shard)| {
                    shard.entries.iter().flat_map(move |(&h, bucket)| {
                        bucket
                            .iter()
                            .enumerate()
                            .map(move |(i, e)| (e.last_used, si, h, i))
                    })
                })
                .min();
            let Some((_, si, h, i)) = victim else { return };
            let bucket = shards[si].entries.get_mut(&h).expect("victim bucket exists");
            bucket.remove(i);
            self.count.fetch_sub(1, Ordering::Relaxed);
            if bucket.is_empty() {
                shards[si].entries.remove(&h);
                self.sidecar_shard(h).retain(|&(sh, _), _| sh != h);
            }
            self.telemetry.add("ir_cache.evictions", 1);
        }
    }

    /// A typed artifact previously stored for `hash` (e.g. an analog
    /// template bank), if present.
    pub fn sidecar<T: Any + Send + Sync>(&self, hash: u64) -> Option<Arc<T>> {
        let got = self.sidecar_shard(hash).get(&(hash, TypeId::of::<T>())).cloned();
        match got {
            Some(v) => {
                self.telemetry.add("ir_cache.sidecar_hits", 1);
                v.downcast::<T>().ok()
            }
            None => {
                self.telemetry.add("ir_cache.sidecar_misses", 1);
                None
            }
        }
    }

    /// Store a typed artifact under `hash`, replacing any previous value of
    /// the same type.
    pub fn put_sidecar<T: Any + Send + Sync>(&self, hash: u64, value: Arc<T>) {
        self.sidecar_shard(hash)
            .insert((hash, TypeId::of::<T>()), value);
    }

    /// Number of distinct compiled circuits held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|m| {
                m.lock()
                    .expect("compiled cache poisoned")
                    .entries
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// True if no compiled circuits are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cache hits since construction (including single-flight waiters
    /// served the leader's entry).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cache misses (compilations) since construction. Under
    /// single-flight, concurrent requests for the same content cost one
    /// miss total.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times a caller blocked on another caller's in-flight compilation of
    /// the same content instead of compiling it again.
    pub fn singleflight_waits(&self) -> u64 {
        self.singleflight_waits.load(Ordering::Relaxed)
    }

    /// Install a function the compile leader runs before compiling (tests
    /// hold the compile open to force single-flight waits).
    #[cfg(test)]
    fn set_compile_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.compile_hook.lock().expect("hook poisoned") = Some(hook);
    }

    /// Drop every entry and sidecar (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("compiled cache poisoned");
            shard.entries.clear();
        }
        for shard in &self.sidecars {
            shard.lock().expect("sidecar cache poisoned").clear();
        }
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::small_jtl_ir;
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn hit_after_miss_shares_the_compiled_tables() {
        let tel = Telemetry::new();
        let cache = CompiledCache::new().with_telemetry(&tel);
        let ir = small_jtl_ir();
        let a = cache.get_or_compile(&ir).unwrap();
        let b = cache.get_or_compile(&ir).unwrap();
        assert!(!a.hit);
        assert!(b.hit);
        assert_eq!(a.hash, b.hash);
        assert!(Arc::ptr_eq(&a.compiled, &b.compiled));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.singleflight_waits(), 0);
        let report = tel.report();
        assert_eq!(report.counter("ir_cache.hits"), 1);
        assert_eq!(report.counter("ir_cache.misses"), 1);
    }

    #[test]
    fn different_content_occupies_different_entries() {
        let cache = CompiledCache::new();
        let ir = small_jtl_ir();
        let mut stretched = ir.clone();
        if let super::super::IrNode::Source { pulses } = &mut stretched.nodes[0] {
            for t in pulses.iter_mut() {
                *t += 1.0;
            }
        }
        cache.get_or_compile(&ir).unwrap();
        cache.get_or_compile(&stretched).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn malformed_ir_is_an_error_not_a_panic() {
        // REVIEW regression: a dangling machine index must surface as the
        // `to_circuit` validation error — previously `canonical_bytes` ran
        // first and panicked on the unchecked index.
        let mut ir = small_jtl_ir();
        if let super::super::IrNode::Instance { machine, .. } = &mut ir.nodes[1] {
            *machine = 99;
        }
        let cache = CompiledCache::new();
        assert!(matches!(
            cache.get_or_compile(&ir),
            Err(IrError::Malformed(_))
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn max_entries_evicts_least_recently_used() {
        let tel = Telemetry::new();
        let cache = CompiledCache::new().with_max_entries(2).with_telemetry(&tel);
        let base = small_jtl_ir();
        let variant = |shift: f64| {
            let mut ir = base.clone();
            if let super::super::IrNode::Source { pulses } = &mut ir.nodes[0] {
                for t in pulses.iter_mut() {
                    *t += shift;
                }
            }
            ir
        };
        let (a, b, c) = (variant(0.0), variant(1.0), variant(2.0));
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap();
        cache.put_sidecar(b.content_hash(), Arc::new(vec![1u8]));
        // Touch `a` so `b` is the LRU entry, then overflow with `c`.
        assert!(cache.get_or_compile(&a).unwrap().hit);
        cache.get_or_compile(&c).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get_or_compile(&a).unwrap().hit, "a survived");
        assert!(cache.get_or_compile(&c).unwrap().hit, "c survived");
        assert!(!cache.get_or_compile(&b).unwrap().hit, "b was evicted");
        assert!(
            cache.sidecar::<Vec<u8>>(b.content_hash()).is_none(),
            "b's sidecar went with it"
        );
        assert!(tel.report().counter("ir_cache.evictions") >= 2);
    }

    #[test]
    fn sidecar_round_trips_typed_artifacts() {
        let cache = CompiledCache::new();
        let ir = small_jtl_ir();
        let hash = ir.content_hash();
        assert!(cache.sidecar::<Vec<u32>>(hash).is_none());
        cache.put_sidecar(hash, Arc::new(vec![1u32, 2, 3]));
        assert_eq!(*cache.sidecar::<Vec<u32>>(hash).unwrap(), vec![1, 2, 3]);
        // Type-keyed: a different type under the same hash is independent.
        assert!(cache.sidecar::<String>(hash).is_none());
        cache.clear();
        assert!(cache.sidecar::<Vec<u32>>(hash).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn single_flight_compiles_once_under_contention() {
        // The compile hook holds the leader inside the compile until every
        // other thread has reached the cache, so all N-1 of them MUST find
        // the in-flight marker and wait — making the wait count exact, not
        // timing-dependent.
        const THREADS: usize = 4;
        let tel = Telemetry::new();
        let cache = Arc::new(CompiledCache::new().with_telemetry(&tel));
        let in_compile = Arc::new(Barrier::new(THREADS));
        {
            let in_compile = Arc::clone(&in_compile);
            cache.set_compile_hook(Box::new(move || {
                in_compile.wait();
                // Give the waiters time to move from the barrier into the
                // flight wait (they hold no lock the leader needs).
                std::thread::sleep(std::time::Duration::from_millis(50));
            }));
        }
        let ir = small_jtl_ir();
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|i| {
                    let cache = Arc::clone(&cache);
                    let ir = ir.clone();
                    let in_compile = Arc::clone(&in_compile);
                    s.spawn(move || {
                        if i != 0 {
                            // Wait until the leader is provably mid-compile.
                            in_compile.wait();
                        }
                        cache.get_or_compile(&ir).unwrap().hit
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.misses(), 1, "compile ran exactly once");
        assert_eq!(cache.hits(), THREADS as u64 - 1);
        assert_eq!(cache.singleflight_waits(), THREADS as u64 - 1);
        assert_eq!(outcomes.iter().filter(|hit| !**hit).count(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            tel.report().counter("ir_cache.singleflight_waits"),
            THREADS as u64 - 1
        );
    }

    #[test]
    fn concurrent_distinct_compiles_respect_the_entry_cap() {
        const THREADS: usize = 8;
        const CAP: usize = 3;
        let cache = Arc::new(CompiledCache::new().with_max_entries(CAP));
        let base = small_jtl_ir();
        let start = Arc::new(Barrier::new(THREADS));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let start = Arc::clone(&start);
                let mut ir = base.clone();
                if let super::super::IrNode::Source { pulses } = &mut ir.nodes[0] {
                    for p in pulses.iter_mut() {
                        *p += t as f64;
                    }
                }
                s.spawn(move || {
                    start.wait();
                    for _ in 0..3 {
                        let got = cache.get_or_compile(&ir).unwrap();
                        assert_eq!(got.hash, ir.content_hash());
                    }
                });
            }
        });
        assert!(cache.len() <= CAP, "cap holds after concurrent churn");
        assert!(cache.misses() >= THREADS as u64, "each distinct IR compiled");
        assert_eq!(cache.count.load(Ordering::Relaxed), cache.len());
    }

    #[test]
    fn concurrent_same_hash_waiters_all_get_working_artifacts() {
        // No hook: rely on a barrier for best-effort contention and assert
        // the invariants that must hold at ANY interleaving — one entry,
        // hits + misses == calls, every outcome shares the same tables.
        const THREADS: usize = 8;
        let cache = Arc::new(CompiledCache::new());
        let ir = small_jtl_ir();
        let start = Arc::new(Barrier::new(THREADS));
        let compiled: Vec<Arc<CompiledCircuit>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let ir = ir.clone();
                    let start = Arc::clone(&start);
                    s.spawn(move || {
                        start.wait();
                        cache.get_or_compile(&ir).unwrap().compiled
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), THREADS as u64);
        assert_eq!(cache.misses(), 1, "single-flight deduped the compile");
        for c in &compiled {
            assert!(Arc::ptr_eq(c, &compiled[0]), "all callers share one artifact");
        }
    }

    #[test]
    fn sidecars_preloaded_concurrently_account_hits_per_shard() {
        let tel = Telemetry::new();
        let cache = Arc::new(CompiledCache::new().with_telemetry(&tel));
        let base = small_jtl_ir();
        let irs: Vec<_> = (0..6)
            .map(|t| {
                let mut ir = base.clone();
                if let super::super::IrNode::Source { pulses } = &mut ir.nodes[0] {
                    for p in pulses.iter_mut() {
                        *p += t as f64;
                    }
                }
                ir
            })
            .collect();
        for ir in &irs {
            cache.put_sidecar(ir.content_hash(), Arc::new(ir.content_hash()));
        }
        std::thread::scope(|s| {
            for ir in &irs {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    let hash = ir.content_hash();
                    let got = cache.sidecar::<u64>(hash).expect("preloaded");
                    assert_eq!(*got, hash, "sidecar shards never cross wires");
                    assert!(cache.sidecar::<String>(hash).is_none());
                });
            }
        });
        let report = tel.report();
        assert_eq!(report.counter("ir_cache.sidecar_hits"), 6);
        assert_eq!(report.counter("ir_cache.sidecar_misses"), 6);
    }
}
