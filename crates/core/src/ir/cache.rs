//! A persistent compiled-artifact cache keyed on [`Ir::content_hash`].
//!
//! The expensive per-circuit artifacts — the flat dispatch tables of
//! [`CompiledCircuit`] and, via the type-keyed sidecar, downstream artifacts
//! such as the analog engine's cell templates — are memoized across
//! requests. Entries store the full canonical byte encoding and compare it
//! exactly on lookup, so a 64-bit hash collision can never alias two
//! different circuits.

use super::{Ir, IrError};
use crate::circuit::Circuit;
use crate::compiled::CompiledCircuit;
use crate::telemetry::Telemetry;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The result of a cache lookup: the rebuilt circuit plus the (possibly
/// memoized) compiled form.
#[derive(Debug)]
pub struct CacheOutcome {
    /// The IR's content hash — the cache key, also usable with the sidecar.
    pub hash: u64,
    /// True if the compiled circuit was served from the cache.
    pub hit: bool,
    /// A fresh circuit rebuilt from the IR (cheap; every caller needs one).
    pub circuit: Circuit,
    /// The compiled dispatch tables, shared with the cache.
    pub compiled: Arc<CompiledCircuit>,
}

struct Entry {
    canon: Vec<u8>,
    compiled: Arc<CompiledCircuit>,
    /// Tick of the last lookup that touched this entry (LRU eviction key).
    last_used: u64,
}

/// A thread-safe memo of compiled circuits keyed on IR content, with a
/// type-keyed sidecar for downstream artifacts (e.g. analog cell-template
/// banks) cached under the same hash.
///
/// By default the cache is **unbounded**: every distinct circuit compiled
/// through it stays resident (entries plus their sidecars) until
/// [`clear`](CompiledCache::clear) or drop. That is the right trade for
/// batch runs over a fixed request corpus; a long-lived embedder fed many
/// distinct IRs should cap it with
/// [`with_max_entries`](CompiledCache::with_max_entries), which evicts the
/// least-recently-used entry (and its sidecars) on overflow.
///
/// ```
/// use rlse_core::circuit::Circuit;
/// use rlse_core::ir::{CompiledCache, Ir};
/// # use rlse_core::machine::{EdgeDef, Machine};
/// # let jtl = Machine::new("JTL", &["a"], &["q"], 5.7, 2, &[EdgeDef {
/// #     src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default()
/// # }]).unwrap();
/// let mut c = Circuit::new();
/// let a = c.inp_at(&[10.0], "A");
/// let q = c.add_machine(&jtl, &[a]).unwrap()[0];
/// c.inspect(q, "Q");
/// let ir = Ir::from_circuit(&c).unwrap();
///
/// let cache = CompiledCache::new();
/// let first = cache.get_or_compile(&ir).unwrap();
/// let second = cache.get_or_compile(&ir).unwrap();
/// assert!(!first.hit && second.hit);
/// assert!(std::sync::Arc::ptr_eq(&first.compiled, &second.compiled));
/// ```
pub struct CompiledCache {
    entries: Mutex<HashMap<u64, Vec<Entry>>>,
    sidecars: Mutex<HashMap<(u64, TypeId), Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotone lookup counter stamping `Entry::last_used`.
    tick: AtomicU64,
    /// Entry cap; `None` means unbounded (the default).
    max_entries: Option<usize>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for CompiledCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl Default for CompiledCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CompiledCache {
    /// An empty, unbounded cache with no telemetry attached.
    pub fn new() -> Self {
        CompiledCache {
            entries: Mutex::new(HashMap::new()),
            sidecars: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            max_entries: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Bound the cache to at most `max` compiled circuits (clamped to at
    /// least 1). Inserting past the bound evicts the least-recently-used
    /// entry, along with its sidecars once no other entry shares its hash;
    /// evictions count `ir_cache.evictions` on the attached telemetry.
    #[must_use]
    pub fn with_max_entries(mut self, max: usize) -> Self {
        self.max_entries = Some(max.max(1));
        self
    }

    /// Attach a telemetry handle; lookups count `ir_cache.hits` /
    /// `ir_cache.misses` (and `ir_cache.sidecar_hits` / `_misses`) on it.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    /// Rebuild the IR's circuit and return its compiled form, compiling at
    /// most once per distinct canonical content.
    ///
    /// The circuit is re-validated **before** the IR is hashed, on every
    /// call: [`Ir::to_circuit`] rejects dangling machine indices (among
    /// other malformations) that [`Ir::canonical_bytes`] would panic on, so
    /// an untrusted document can never panic the cache.
    ///
    /// # Errors
    ///
    /// Any [`IrError`] from [`Ir::to_circuit`].
    pub fn get_or_compile(&self, ir: &Ir) -> Result<CacheOutcome, IrError> {
        let circuit = ir.to_circuit()?;
        let canon = ir.canonical_bytes();
        let hash = super::fnv1a(&canon);
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);

        if let Some(found) = self
            .entries
            .lock()
            .expect("compiled cache poisoned")
            .get_mut(&hash)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.canon == canon))
            .map(|e| {
                e.last_used = stamp;
                Arc::clone(&e.compiled)
            })
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.telemetry.add("ir_cache.hits", 1);
            return Ok(CacheOutcome {
                hash,
                hit: true,
                circuit,
                compiled: found,
            });
        }

        let compiled = Arc::new(CompiledCircuit::compile(&circuit));
        let mut entries = self.entries.lock().expect("compiled cache poisoned");
        // A racing writer may have inserted while we compiled; keep theirs.
        let compiled = match entries
            .get_mut(&hash)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.canon == canon))
        {
            Some(e) => {
                e.last_used = stamp;
                Arc::clone(&e.compiled)
            }
            None => {
                if let Some(cap) = self.max_entries {
                    while entries.values().map(Vec::len).sum::<usize>() >= cap {
                        self.evict_lru(&mut entries);
                    }
                }
                entries.entry(hash).or_default().push(Entry {
                    canon,
                    compiled: Arc::clone(&compiled),
                    last_used: stamp,
                });
                compiled
            }
        };
        drop(entries);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.telemetry.add("ir_cache.misses", 1);
        Ok(CacheOutcome {
            hash,
            hit: false,
            circuit,
            compiled,
        })
    }

    /// Remove the least-recently-used entry; once its hash bucket empties,
    /// drop the hash's sidecars too (no live entry can reach them).
    fn evict_lru(&self, entries: &mut HashMap<u64, Vec<Entry>>) {
        let victim = entries
            .iter()
            .flat_map(|(&h, bucket)| {
                bucket.iter().enumerate().map(move |(i, e)| (e.last_used, h, i))
            })
            .min()
            .map(|(_, h, i)| (h, i));
        let Some((h, i)) = victim else { return };
        let bucket = entries.get_mut(&h).expect("victim bucket exists");
        bucket.remove(i);
        if bucket.is_empty() {
            entries.remove(&h);
            self.sidecars
                .lock()
                .expect("sidecar cache poisoned")
                .retain(|&(sh, _), _| sh != h);
        }
        self.telemetry.add("ir_cache.evictions", 1);
    }

    /// A typed artifact previously stored for `hash` (e.g. an analog
    /// template bank), if present.
    pub fn sidecar<T: Any + Send + Sync>(&self, hash: u64) -> Option<Arc<T>> {
        let got = self
            .sidecars
            .lock()
            .expect("sidecar cache poisoned")
            .get(&(hash, TypeId::of::<T>()))
            .cloned();
        match got {
            Some(v) => {
                self.telemetry.add("ir_cache.sidecar_hits", 1);
                v.downcast::<T>().ok()
            }
            None => {
                self.telemetry.add("ir_cache.sidecar_misses", 1);
                None
            }
        }
    }

    /// Store a typed artifact under `hash`, replacing any previous value of
    /// the same type.
    pub fn put_sidecar<T: Any + Send + Sync>(&self, hash: u64, value: Arc<T>) {
        self.sidecars
            .lock()
            .expect("sidecar cache poisoned")
            .insert((hash, TypeId::of::<T>()), value);
    }

    /// Number of distinct compiled circuits held.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("compiled cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True if no compiled circuits are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cache misses (compilations) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every entry and sidecar (counters are kept).
    pub fn clear(&self) {
        self.entries
            .lock()
            .expect("compiled cache poisoned")
            .clear();
        self.sidecars
            .lock()
            .expect("sidecar cache poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::small_jtl_ir;
    use super::*;

    #[test]
    fn hit_after_miss_shares_the_compiled_tables() {
        let tel = Telemetry::new();
        let cache = CompiledCache::new().with_telemetry(&tel);
        let ir = small_jtl_ir();
        let a = cache.get_or_compile(&ir).unwrap();
        let b = cache.get_or_compile(&ir).unwrap();
        assert!(!a.hit);
        assert!(b.hit);
        assert_eq!(a.hash, b.hash);
        assert!(Arc::ptr_eq(&a.compiled, &b.compiled));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let report = tel.report();
        assert_eq!(report.counter("ir_cache.hits"), 1);
        assert_eq!(report.counter("ir_cache.misses"), 1);
    }

    #[test]
    fn different_content_occupies_different_entries() {
        let cache = CompiledCache::new();
        let ir = small_jtl_ir();
        let mut stretched = ir.clone();
        if let super::super::IrNode::Source { pulses } = &mut stretched.nodes[0] {
            for t in pulses.iter_mut() {
                *t += 1.0;
            }
        }
        cache.get_or_compile(&ir).unwrap();
        cache.get_or_compile(&stretched).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn malformed_ir_is_an_error_not_a_panic() {
        // REVIEW regression: a dangling machine index must surface as the
        // `to_circuit` validation error — previously `canonical_bytes` ran
        // first and panicked on the unchecked index.
        let mut ir = small_jtl_ir();
        if let super::super::IrNode::Instance { machine, .. } = &mut ir.nodes[1] {
            *machine = 99;
        }
        let cache = CompiledCache::new();
        assert!(matches!(
            cache.get_or_compile(&ir),
            Err(IrError::Malformed(_))
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn max_entries_evicts_least_recently_used() {
        let tel = Telemetry::new();
        let cache = CompiledCache::new().with_max_entries(2).with_telemetry(&tel);
        let base = small_jtl_ir();
        let variant = |shift: f64| {
            let mut ir = base.clone();
            if let super::super::IrNode::Source { pulses } = &mut ir.nodes[0] {
                for t in pulses.iter_mut() {
                    *t += shift;
                }
            }
            ir
        };
        let (a, b, c) = (variant(0.0), variant(1.0), variant(2.0));
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap();
        cache.put_sidecar(b.content_hash(), Arc::new(vec![1u8]));
        // Touch `a` so `b` is the LRU entry, then overflow with `c`.
        assert!(cache.get_or_compile(&a).unwrap().hit);
        cache.get_or_compile(&c).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get_or_compile(&a).unwrap().hit, "a survived");
        assert!(cache.get_or_compile(&c).unwrap().hit, "c survived");
        assert!(!cache.get_or_compile(&b).unwrap().hit, "b was evicted");
        assert!(
            cache.sidecar::<Vec<u8>>(b.content_hash()).is_none(),
            "b's sidecar went with it"
        );
        assert!(tel.report().counter("ir_cache.evictions") >= 2);
    }

    #[test]
    fn sidecar_round_trips_typed_artifacts() {
        let cache = CompiledCache::new();
        let ir = small_jtl_ir();
        let hash = ir.content_hash();
        assert!(cache.sidecar::<Vec<u32>>(hash).is_none());
        cache.put_sidecar(hash, Arc::new(vec![1u32, 2, 3]));
        assert_eq!(*cache.sidecar::<Vec<u32>>(hash).unwrap(), vec![1, 2, 3]);
        // Type-keyed: a different type under the same hash is independent.
        assert!(cache.sidecar::<String>(hash).is_none());
        cache.clear();
        assert!(cache.sidecar::<Vec<u32>>(hash).is_none());
        assert!(cache.is_empty());
    }
}
