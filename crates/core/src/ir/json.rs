//! Minimal hand-rolled JSON values: a parser and two writers (compact and
//! pretty), shared by the netlist IR and the serve front end.
//!
//! The workspace deliberately has no serde dependency; telemetry renders its
//! reports by hand and this module is the matching *reader* side. It covers
//! the JSON grammar the IR and request formats need: objects, arrays,
//! strings (with `\uXXXX` escapes and surrogate pairs), finite numbers,
//! booleans, and `null`. Object key order is preserved, so a value written
//! by [`JsonValue::write`] parses back to an equal value.

use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved and duplicates are kept.
    Obj(Vec<(String, JsonValue)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Deepest array/object nesting [`JsonValue::parse`] accepts. Deeper
/// documents fail with a [`JsonError`] instead of overflowing the stack
/// (the parser recurses once per level, so untrusted input must be
/// depth-bounded).
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError {
                pos: start,
                msg: "invalid UTF-8 in number".into(),
            })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
            _ => Err(JsonError {
                pos: start,
                msg: format!("invalid number '{text}'"),
            }),
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError {
                pos: self.pos,
                msg: "invalid UTF-8 in \\u escape".into(),
            })?;
        let v = u16::from_str_radix(text, 16).map_err(|_| JsonError {
            pos: self.pos,
            msg: format!("invalid \\u escape '{text}'"),
        })?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let c = 0x10000
                                    + ((hi as u32 - 0xD800) << 10)
                                    + (lo as u32 - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi as u32)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonError {
                            pos: self.pos,
                            msg: "invalid UTF-8 in string".into(),
                        }
                    })?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.err(format!("nesting deeper than {MAX_DEPTH} levels"))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.descend()?;
        let v = self.array_body();
        self.depth -= 1;
        v
    }

    fn array_body(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.descend()?;
        let v = self.object_body();
        self.depth -= 1;
        v
    }

    fn object_body(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            items.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(items));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Escape `s` into `out` as the body of a JSON string (no surrounding
/// quotes). This is the one escaping helper shared by every hand-rolled
/// JSON emitter in the workspace (telemetry reports, serve summaries,
/// access logs): hostile cell/wire/tenant names must never break a JSON
/// document, so new emitters must route strings through here.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Write a finite `f64` deterministically (shortest round-tripping form,
/// Rust's `{}` formatting). Non-finite values are a caller bug; they are
/// written as `null` so the output stays valid JSON.
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error, as is array/object nesting deeper than [`MAX_DEPTH`] levels.
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after document");
        }
        Ok(v)
    }

    /// Member `key` of an object, or `None` for non-objects / absent keys.
    /// The first occurrence wins when keys repeat.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(items) => items.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an exact
    /// integral value.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(items) => Some(items),
            _ => None,
        }
    }

    /// Write compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_f64(*n, out),
            JsonValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(items) => {
                out.push('{');
                for (i, (k, v)) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(k, out);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Write with 2-space-per-level indentation — the fixture / golden-file
    /// form. Arrays of scalars stay on one line; arrays or objects holding
    /// containers break one element per line.
    pub fn write_pretty(&self, indent: usize, out: &mut String) {
        fn pad(n: usize, out: &mut String) {
            for _ in 0..n {
                out.push_str("  ");
            }
        }
        let is_container =
            |v: &JsonValue| matches!(v, JsonValue::Arr(a) if !a.is_empty()) || matches!(v, JsonValue::Obj(o) if !o.is_empty());
        match self {
            JsonValue::Arr(items) if items.iter().any(is_container) => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(indent + 1, out);
                    v.write_pretty(indent + 1, out);
                }
                out.push('\n');
                pad(indent, out);
                out.push(']');
            }
            JsonValue::Obj(items) if !items.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(indent + 1, out);
                    out.push('"');
                    escape_json(k, out);
                    out.push_str("\": ");
                    v.write_pretty(indent + 1, out);
                }
                out.push('\n');
                pad(indent, out);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// The compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// The pretty multi-line rendering (ends without a trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u00e9\"").unwrap(),
            JsonValue::Str("a\nbé".into())
        );
    }

    #[test]
    fn parses_surrogate_pairs() {
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".into())
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "tru", "{", "[1,", "{\"a\":}", "1 2", "\"\\q\"", "nan", "1e999",
            "\"\\ud83d\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // REVIEW regression: the recursive parser must bound its depth —
        // a line of hundreds of thousands of '[' previously aborted the
        // whole process with a stack overflow.
        let bomb = "[".repeat(200_000);
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        let deep_obj = "{\"k\":".repeat(MAX_DEPTH + 1);
        let err = JsonValue::parse(&deep_obj).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        // Exactly MAX_DEPTH levels still parse.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn write_parse_round_trip() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x \"y\" z","d":null},"e":true,"f":[]}"#;
        let v = JsonValue::parse(doc).unwrap();
        let compact = v.to_compact();
        assert_eq!(JsonValue::parse(&compact).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn get_and_accessors() {
        let v = JsonValue::parse(r#"{"n":3,"s":"x","b":false,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_usize), Some(3));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(JsonValue::as_arr).map(<[_]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Num(1.5).as_usize(), None);
        assert_eq!(JsonValue::Num(-1.0).as_usize(), None);
    }
}
