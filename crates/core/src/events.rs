//! The events dictionary returned by a simulation run (paper Fig. 12a):
//! a mapping from each named wire to the ordered list of pulse times that
//! appeared on it, plus helpers for the dynamic correctness checks of §5.2.

use crate::circuit::Circuit;
use crate::error::Time;
use std::collections::BTreeMap;

/// Pulse times observed on every named wire during a simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Events {
    named: BTreeMap<String, Vec<Time>>,
    all: BTreeMap<String, Vec<Time>>,
}

impl Events {
    pub(crate) fn from_wires(circuit: &Circuit, wire_events: &[Vec<Time>]) -> Self {
        let mut named = BTreeMap::new();
        let mut all = BTreeMap::new();
        for (idx, evs) in wire_events.iter().enumerate() {
            let wd = &circuit.wires[idx];
            if wd.observed {
                named.insert(wd.name.clone(), evs.clone());
            }
            all.insert(wd.name.clone(), evs.clone());
        }
        Events { named, all }
    }

    /// Pre-build an events dictionary with one empty entry per observed
    /// wire, for the batch sweep kernel's per-lane check calls. `names`
    /// must be sorted ascending, so the `BTreeMap` iterates in exactly
    /// that order — the contract [`refill_named`](Self::refill_named)
    /// relies on. Only observed wires are present (anonymous internal
    /// wires are not recorded by the batch kernel).
    pub(crate) fn preallocated(names: &[String]) -> Self {
        Events {
            named: names.iter().map(|n| (n.clone(), Vec::new())).collect(),
            all: BTreeMap::new(),
        }
    }

    /// Replace every named entry's pulse list in place, in sorted-name
    /// order, reusing the map and the per-entry allocations. `columns`
    /// must yield exactly one slice per named wire.
    pub(crate) fn refill_named<'t>(&mut self, mut columns: impl Iterator<Item = &'t [Time]>) {
        for v in self.named.values_mut() {
            v.clear();
            v.extend_from_slice(columns.next().expect("one column per named wire"));
        }
    }

    /// Build an events map directly (useful in tests and when importing
    /// externally produced traces).
    pub fn from_map(map: BTreeMap<String, Vec<Time>>) -> Self {
        Events {
            all: map.clone(),
            named: map,
        }
    }

    /// The pulses seen on the named wire, in time order. Unknown names
    /// yield an empty slice.
    pub fn times(&self, name: &str) -> &[Time] {
        self.named
            .get(name)
            .or_else(|| self.all.get(name))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Names of all observed (user-named) wires.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.named.keys().map(String::as_str)
    }

    /// Iterate over `(name, times)` for observed wires.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Time])> {
        self.named.iter().map(|(n, t)| (n.as_str(), t.as_slice()))
    }

    /// Iterate over `(name, times)` for *every* wire, including anonymous
    /// internal ones (named `_N`).
    pub fn iter_all(&self) -> impl Iterator<Item = (&str, &[Time])> {
        self.all.iter().map(|(n, t)| (n.as_str(), t.as_slice()))
    }

    /// Total number of pulses observed on named wires.
    pub fn pulse_count(&self) -> usize {
        self.named.values().map(Vec::len).sum()
    }

    /// Total number of pulses on all wires (a measure of simulation work).
    pub fn pulse_count_all(&self) -> usize {
        self.all.values().map(Vec::len).sum()
    }

    /// True if no pulses were observed on any named wire.
    pub fn is_empty(&self) -> bool {
        self.pulse_count() == 0
    }

    /// All pulses on wires whose name satisfies `pred`, as `(name, time)`
    /// pairs sorted by time — the shape used by the paper's §5.2 assertions.
    pub fn pulses_where<F: Fn(&str) -> bool>(&self, pred: F) -> Vec<(&str, Time)> {
        let mut out: Vec<(&str, Time)> = self
            .named
            .iter()
            .filter(|(n, _)| pred(n))
            .flat_map(|(n, ts)| ts.iter().map(move |t| (n.as_str(), *t)))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(b.0)));
        out
    }

    /// Check the §5.2 interleaving property: among the pulses on the given
    /// wires, no two consecutive pulses (by time) come from the same group.
    /// `group` maps a wire name to its group key (e.g. `A_T`/`A_F` → `"A"`).
    pub fn interleaved<F: Fn(&str) -> Option<String>>(&self, group: F) -> bool {
        let pulses = self.pulses_where(|n| group(n).is_some());
        pulses
            .windows(2)
            .all(|w| group(w[0].0) != group(w[1].0))
    }

    /// Render as CSV: `wire,time` rows in time order per wire.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("wire,time\n");
        for (name, times) in &self.named {
            for t in times {
                s.push_str(&format!("{name},{t}\n"));
            }
        }
        s
    }

    /// Compare against expected pulse times with an absolute tolerance.
    pub fn matches(&self, name: &str, expected: &[Time], tol: Time) -> bool {
        let got = self.times(name);
        got.len() == expected.len()
            && got
                .iter()
                .zip(expected)
                .all(|(g, e)| (g - e).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Events {
        let mut m = BTreeMap::new();
        m.insert("A_T".to_string(), vec![10.0, 40.0]);
        m.insert("B_T".to_string(), vec![20.0]);
        m.insert("B_F".to_string(), vec![55.0]);
        m.insert("Q".to_string(), vec![30.0, 60.0]);
        Events::from_map(m)
    }

    #[test]
    fn times_and_names() {
        let e = sample();
        assert_eq!(e.times("Q"), &[30.0, 60.0]);
        assert_eq!(e.times("missing"), &[] as &[f64]);
        assert_eq!(e.names().count(), 4);
        assert_eq!(e.pulse_count(), 6);
        assert!(!e.is_empty());
    }

    #[test]
    fn pulses_where_sorts_by_time() {
        let e = sample();
        let ps = e.pulses_where(|n| n.starts_with('A') || n.starts_with('B'));
        assert_eq!(
            ps,
            vec![("A_T", 10.0), ("B_T", 20.0), ("A_T", 40.0), ("B_F", 55.0)]
        );
    }

    #[test]
    fn interleaving_check() {
        let e = sample();
        let group = |n: &str| {
            if n.starts_with("A_") {
                Some("A".to_string())
            } else if n.starts_with("B_") {
                Some("B".to_string())
            } else {
                None
            }
        };
        // A@10, B@20, A@40, B@55: interleaved.
        assert!(e.interleaved(group));
        let mut m = BTreeMap::new();
        m.insert("A_T".to_string(), vec![10.0, 20.0]);
        m.insert("B_T".to_string(), vec![30.0]);
        let bad = Events::from_map(m);
        assert!(!bad.interleaved(|n: &str| Some(n[..1].to_string())));
    }

    #[test]
    fn csv_shape() {
        let e = sample();
        let csv = e.to_csv();
        assert!(csv.starts_with("wire,time\n"));
        assert!(csv.contains("Q,30\n"));
    }

    #[test]
    fn matches_with_tolerance() {
        let e = sample();
        assert!(e.matches("Q", &[30.0, 60.0], 0.0));
        assert!(e.matches("Q", &[30.05, 59.95], 0.1));
        assert!(!e.matches("Q", &[30.0], 0.1));
        assert!(!e.matches("Q", &[31.0, 60.0], 0.1));
    }
}
