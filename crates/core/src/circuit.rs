//! Circuits: networks of PyLSE Machines, holes, and input sources connected
//! by wires (paper §3.2 and §4.1, Full-Circuit Design level).
//!
//! Wires are stateless and point-to-point: each wire has exactly one driver
//! and at most one reader. SCE outputs cannot fan out; attempting to read a
//! wire twice is a [`WiringError::FanoutViolation`] and a splitter cell must
//! be used instead (paper §4.2).

use crate::error::{Time, WiringError};
use crate::functional::Hole;
use crate::machine::Machine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_CIRCUIT_ID: AtomicU64 = AtomicU64::new(0);

/// A handle to a wire in a [`Circuit`].
///
/// Handles are cheap to copy and are tied to the circuit that created them;
/// using a handle with a different circuit panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire {
    pub(crate) circuit: u64,
    pub(crate) index: usize,
}

/// Identifier of a node (input source, machine instance, or hole) in a
/// [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Per-instance overrides applied when adding a machine to a circuit
/// (paper §4.1: encapsulating functions "take in optional arguments, making
/// it easy to override properties like firing delay, transition time ...").
#[derive(Debug, Clone, Default)]
pub struct NodeOverrides {
    /// Override the default firing delay of every fired output.
    pub firing_delay: Option<Time>,
    /// Override the transition time of every transition.
    pub transition_time: Option<Time>,
    /// Override the JJ count reported for this instance.
    pub jjs: Option<u32>,
    /// Exempt this instance from simulation-wide variability.
    pub exempt_from_variability: bool,
}

#[derive(Debug)]
pub(crate) enum NodeKind {
    /// External stimulus: produces pulses at fixed times on its one output.
    Source { pulses: Vec<Time> },
    /// A PyLSE Machine instance.
    Machine {
        spec: Arc<Machine>,
        overrides: NodeOverrides,
    },
    /// A behavioral hole.
    Hole(Hole),
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    /// Wires driven by this node, one per output port.
    pub(crate) out_wires: Vec<usize>,
    /// Wires read by this node, one per input port.
    pub(crate) in_wires: Vec<usize>,
}

#[derive(Debug)]
pub(crate) struct WireData {
    /// User-facing name; auto-generated (`_N`) unless set by `inp*`/`inspect`.
    pub(crate) name: String,
    /// True if the name was given by the user (named wires appear in events).
    pub(crate) observed: bool,
    pub(crate) driver: (NodeId, usize),
    pub(crate) sink: Option<(NodeId, usize)>,
}

/// A workspace holding cells and the wires connecting them.
///
/// ```
/// use rlse_core::circuit::Circuit;
/// let mut c = Circuit::new();
/// let a = c.inp_at(&[10.0, 20.0], "A");
/// assert_eq!(c.wire_name(a), "A");
/// ```
#[derive(Debug)]
pub struct Circuit {
    pub(crate) id: u64,
    pub(crate) nodes: Vec<Node>,
    pub(crate) wires: Vec<WireData>,
    anon_counter: usize,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Create an empty circuit workspace.
    pub fn new() -> Self {
        Circuit {
            id: NEXT_CIRCUIT_ID.fetch_add(1, Ordering::Relaxed),
            nodes: Vec::new(),
            wires: Vec::new(),
            anon_counter: 0,
        }
    }

    /// Assemble a circuit directly from pre-validated parts — the netlist-IR
    /// import path (see [`crate::ir`]). The caller guarantees node/wire
    /// cross-references are consistent; `anon_counter` seeds future
    /// auto-generated `_N` wire names past any already present.
    pub(crate) fn from_parts(nodes: Vec<Node>, wires: Vec<WireData>, anon_counter: usize) -> Self {
        Circuit {
            id: NEXT_CIRCUIT_ID.fetch_add(1, Ordering::Relaxed),
            nodes,
            wires,
            anon_counter,
        }
    }

    fn new_wire(&mut self, driver: (NodeId, usize), name: Option<&str>) -> Wire {
        let (name, observed) = match name {
            Some(n) => (n.to_string(), true),
            None => {
                let n = format!("_{}", self.anon_counter);
                self.anon_counter += 1;
                (n, false)
            }
        };
        self.wires.push(WireData {
            name,
            observed,
            driver,
            sink: None,
        });
        Wire {
            circuit: self.id,
            index: self.wires.len() - 1,
        }
    }

    fn check_wire(&self, w: Wire) -> usize {
        assert_eq!(
            w.circuit, self.id,
            "wire handle belongs to a different circuit"
        );
        w.index
    }

    fn connect(&mut self, w: Wire, sink: (NodeId, usize)) -> Result<(), WiringError> {
        let idx = self.check_wire(w);
        let wd = &mut self.wires[idx];
        if wd.sink.is_some() {
            return Err(WiringError::FanoutViolation {
                wire: wd.name.clone(),
            });
        }
        wd.sink = Some(sink);
        Ok(())
    }

    /// Create an input producing pulses at each given time (Table 1,
    /// `inp_at`). The returned wire is named and observed.
    ///
    /// # Panics
    ///
    /// Panics if any time is negative or not finite.
    pub fn inp_at(&mut self, times: &[Time], name: &str) -> Wire {
        let mut pulses: Vec<Time> = times.to_vec();
        assert!(
            pulses.iter().all(|t| t.is_finite() && *t >= 0.0),
            "input pulse times must be finite and non-negative"
        );
        pulses.sort_by(f64::total_cmp);
        let node = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Source { pulses },
            out_wires: Vec::new(),
            in_wires: Vec::new(),
        });
        let w = self.new_wire((node, 0), Some(name));
        self.nodes[node.0].out_wires.push(w.index);
        w
    }

    /// Create a periodic input: `n` pulses starting at `start`, one every
    /// `period` (Table 1, `inp`).
    ///
    /// # Errors
    ///
    /// Returns [`WiringError::InvalidStimulus`] when `start` is NaN,
    /// non-finite, or negative, or — for trains of more than one pulse —
    /// when `period` is non-finite or not strictly positive (a zero or
    /// negative period would produce a coincident or non-monotonic train
    /// that only fails deep inside the kernel).
    pub fn inp(
        &mut self,
        start: Time,
        period: Time,
        n: usize,
        name: &str,
    ) -> Result<Wire, WiringError> {
        if !(start.is_finite() && start >= 0.0) {
            return Err(WiringError::InvalidStimulus {
                wire: name.to_string(),
                reason: format!("start time {start} must be finite and non-negative"),
            });
        }
        if n > 1 && !(period.is_finite() && period > 0.0) {
            return Err(WiringError::InvalidStimulus {
                wire: name.to_string(),
                reason: format!(
                    "period {period} must be finite and positive for a {n}-pulse train"
                ),
            });
        }
        let times: Vec<Time> = (0..n).map(|i| start + period * i as f64).collect();
        Ok(self.inp_at(&times, name))
    }

    /// Add a machine instance, connecting `inputs` (in the machine's input
    /// order) and returning its output wires (in output order).
    ///
    /// # Errors
    ///
    /// Fails with [`WiringError::FanoutViolation`] if any input wire already
    /// has a reader.
    ///
    /// # Panics
    ///
    /// Panics if the number of input wires does not match the machine's
    /// declared inputs or a wire belongs to another circuit.
    pub fn add_machine(
        &mut self,
        spec: &Arc<Machine>,
        inputs: &[Wire],
    ) -> Result<Vec<Wire>, WiringError> {
        self.add_machine_with(spec, inputs, NodeOverrides::default())
    }

    /// [`add_machine`](Self::add_machine) with per-instance overrides.
    pub fn add_machine_with(
        &mut self,
        spec: &Arc<Machine>,
        inputs: &[Wire],
        overrides: NodeOverrides,
    ) -> Result<Vec<Wire>, WiringError> {
        assert_eq!(
            inputs.len(),
            spec.inputs().len(),
            "machine '{}' takes {} inputs, got {}",
            spec.name(),
            spec.inputs().len(),
            inputs.len()
        );
        let mut spec = Arc::clone(spec);
        if let Some(d) = overrides.firing_delay {
            spec = spec.with_firing_delay(d);
        }
        if let Some(t) = overrides.transition_time {
            spec = spec.with_transition_time(t);
        }
        let n_out = spec.outputs().len();
        let node = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Machine { spec, overrides },
            out_wires: Vec::new(),
            in_wires: Vec::new(),
        });
        for (port, w) in inputs.iter().enumerate() {
            self.connect(*w, (node, port))?;
            let idx = w.index;
            self.nodes[node.0].in_wires.push(idx);
        }
        let mut outs = Vec::new();
        for port in 0..n_out {
            let w = self.new_wire((node, port), None);
            self.nodes[node.0].out_wires.push(w.index);
            outs.push(w);
        }
        Ok(outs)
    }

    /// Add a behavioral hole, connecting `inputs` and returning its output
    /// wires.
    ///
    /// # Errors
    ///
    /// Fails with [`WiringError::FanoutViolation`] if any input wire already
    /// has a reader.
    pub fn add_hole(&mut self, hole: Hole, inputs: &[Wire]) -> Result<Vec<Wire>, WiringError> {
        assert_eq!(
            inputs.len(),
            hole.inputs().len(),
            "hole '{}' takes {} inputs, got {}",
            hole.name(),
            hole.inputs().len(),
            inputs.len()
        );
        let n_out = hole.outputs().len();
        let node = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Hole(hole),
            out_wires: Vec::new(),
            in_wires: Vec::new(),
        });
        for (port, w) in inputs.iter().enumerate() {
            self.connect(*w, (node, port))?;
            let idx = w.index;
            self.nodes[node.0].in_wires.push(idx);
        }
        let mut outs = Vec::new();
        for port in 0..n_out {
            let w = self.new_wire((node, port), None);
            self.nodes[node.0].out_wires.push(w.index);
            outs.push(w);
        }
        Ok(outs)
    }

    /// Create a *loopback* wire: a wire with no driver yet, so feedback
    /// loops can be wired up forward. Use it as a cell input now, then call
    /// [`close_loop`](Self::close_loop) to splice the loop shut.
    pub fn loopback_wire(&mut self) -> Wire {
        self.new_wire((NodeId(usize::MAX), 0), None)
    }

    /// Splice a feedback loop: redirect the reader of the pending loopback
    /// wire to read from `from` instead. `from` must be an ordinary driven
    /// wire with no reader; `loopback` must come from
    /// [`loopback_wire`](Self::loopback_wire) and already be connected to a
    /// cell input.
    ///
    /// # Errors
    ///
    /// * [`WiringError::FanoutViolation`] if `from` already has a reader.
    /// * [`WiringError::Unconnected`] if `loopback` is not a pending
    ///   loopback with a reader.
    pub fn close_loop(&mut self, from: Wire, loopback: Wire) -> Result<(), WiringError> {
        let fi = self.check_wire(from);
        let li = self.check_wire(loopback);
        if self.wires[fi].sink.is_some() {
            return Err(WiringError::FanoutViolation {
                wire: self.wires[fi].name.clone(),
            });
        }
        let pending = self.wires[li].driver.0 == NodeId(usize::MAX);
        let Some((snode, sport)) = self.wires[li].sink else {
            return Err(WiringError::Unconnected {
                node: "loopback".into(),
                port: self.wires[li].name.clone(),
            });
        };
        if !pending {
            return Err(WiringError::AlreadyDriven {
                wire: self.wires[li].name.clone(),
            });
        }
        self.wires[fi].sink = Some((snode, sport));
        self.nodes[snode.0].in_wires[sport] = fi;
        // Retire the loopback placeholder.
        self.wires[li].sink = None;
        Ok(())
    }

    /// True if the wire has a real driver (false only for pending or
    /// retired loopback placeholders).
    pub fn wire_has_driver(&self, w: Wire) -> bool {
        let idx = self.check_wire(w);
        self.wires[idx].driver.0 != NodeId(usize::MAX)
    }

    /// Give a wire a name for observation during simulation (Table 1,
    /// `inspect`). Named wires appear in the simulation's events dictionary.
    pub fn inspect(&mut self, w: Wire, name: &str) {
        let idx = self.check_wire(w);
        self.wires[idx].name = name.to_string();
        self.wires[idx].observed = true;
    }

    /// The current name of a wire (auto-generated `_N` unless named).
    pub fn wire_name(&self, w: Wire) -> &str {
        let idx = self.check_wire(w);
        &self.wires[idx].name
    }

    /// All wires that have no reader: the circuit's outputs. Retired
    /// loopback placeholders are excluded.
    pub fn output_wires(&self) -> Vec<Wire> {
        self.wires
            .iter()
            .enumerate()
            .filter(|(_, w)| w.sink.is_none() && w.driver.0 != NodeId(usize::MAX))
            .map(|(i, _)| Wire {
                circuit: self.id,
                index: i,
            })
            .collect()
    }

    /// Validate the finished circuit (paper §4.2, Circuit Design level).
    ///
    /// Fanout-of-one is enforced structurally at connection time; this check
    /// additionally verifies that observed wire names are unique.
    ///
    /// # Errors
    ///
    /// Returns [`WiringError::DuplicateWireName`] on a name clash.
    pub fn check(&self) -> Result<(), WiringError> {
        let mut names = std::collections::HashSet::new();
        for w in self.wires.iter().filter(|w| w.observed) {
            if !names.insert(&w.name) {
                return Err(WiringError::DuplicateWireName {
                    name: w.name.clone(),
                });
            }
        }
        // Loopback wires still feeding a cell must have been closed.
        for w in &self.wires {
            if w.driver.0 == NodeId(usize::MAX) && w.sink.is_some() {
                return Err(WiringError::Unconnected {
                    node: "loopback".into(),
                    port: w.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Number of cell instances (machines and holes, excluding sources).
    pub fn cell_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.kind, NodeKind::Source { .. }))
            .count()
    }

    /// Aggregate statistics over every machine instance, for Table-3-style
    /// reporting: `(cells, states, transitions, jjs)`.
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats::default();
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Machine { spec, overrides } => {
                    s.cells += 1;
                    s.states += spec.states().len();
                    s.transitions += spec.transitions().len();
                    s.jjs += overrides.jjs.unwrap_or_else(|| spec.jjs());
                }
                NodeKind::Hole(_) => s.cells += 1,
                NodeKind::Source { .. } => s.sources += 1,
            }
        }
        s.wires = self.wires.len();
        s
    }

    /// Iterate over `(NodeId, machine)` for every machine instance.
    pub fn machines(&self) -> impl Iterator<Item = (NodeId, &Arc<Machine>)> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match &n.kind {
            NodeKind::Machine { spec, .. } => Some((NodeId(i), spec)),
            _ => None,
        })
    }

    /// The stimulus times of every source node, with the source's wire name.
    pub fn sources(&self) -> impl Iterator<Item = (&str, &[Time])> {
        self.nodes.iter().filter_map(|n| match &n.kind {
            NodeKind::Source { pulses } => {
                Some((self.wires[n.out_wires[0]].name.as_str(), pulses.as_slice()))
            }
            _ => None,
        })
    }

    /// The name of the wire driven by output port 0 of `node` — the paper's
    /// convention for identifying a node instance in diagnostics.
    pub fn node_wire_name(&self, node: NodeId) -> String {
        self.nodes[node.0]
            .out_wires
            .first()
            .map(|w| self.wires[*w].name.clone())
            .unwrap_or_else(|| format!("<node {}>", node.0))
    }

    /// Borrowing variant of [`node_wire_name`](Self::node_wire_name):
    /// `None` when the node drives no wires (the caller supplies the
    /// `<node N>` placeholder). Used by circuit compilation to intern names
    /// without cloning.
    pub(crate) fn node_wire_name_ref(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.0]
            .out_wires
            .first()
            .map(|&w| self.wires[w].name.as_str())
    }

    /// Number of nodes (sources, machines, and holes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of wires.
    pub fn wire_count(&self) -> usize {
        self.wires.len()
    }

    /// The dense index of a wire handle (inverse of [`wire_at`](Self::wire_at)).
    pub fn wire_index(&self, w: Wire) -> usize {
        self.check_wire(w)
    }

    /// The wire handle with the given index (0..`wire_count`).
    pub fn wire_at(&self, index: usize) -> Wire {
        assert!(index < self.wires.len(), "wire index out of range");
        Wire {
            circuit: self.id,
            index,
        }
    }

    /// The `(node, output port)` driving a wire.
    pub fn wire_driver(&self, w: Wire) -> (NodeId, usize) {
        let idx = self.check_wire(w);
        self.wires[idx].driver
    }

    /// The `(node, input port)` reading a wire, if any.
    pub fn wire_sink(&self, w: Wire) -> Option<(NodeId, usize)> {
        let idx = self.check_wire(w);
        self.wires[idx].sink
    }

    /// True if the wire was given a user-facing name.
    pub fn wire_observed(&self, w: Wire) -> bool {
        let idx = self.check_wire(w);
        self.wires[idx].observed
    }

    /// The machine spec of `node`, if it is a machine instance (with
    /// per-instance overrides already applied).
    pub fn node_machine(&self, node: NodeId) -> Option<&Arc<Machine>> {
        match &self.nodes[node.0].kind {
            NodeKind::Machine { spec, .. } => Some(spec),
            _ => None,
        }
    }

    /// The stimulus times of `node`, if it is an input source.
    pub fn node_source_times(&self, node: NodeId) -> Option<&[Time]> {
        match &self.nodes[node.0].kind {
            NodeKind::Source { pulses } => Some(pulses),
            _ => None,
        }
    }

    /// The wires driven by `node`, in output-port order.
    pub fn node_out_wires(&self, node: NodeId) -> Vec<Wire> {
        self.nodes[node.0]
            .out_wires
            .iter()
            .map(|&i| Wire {
                circuit: self.id,
                index: i,
            })
            .collect()
    }

    /// The wires read by `node`, in input-port order.
    pub fn node_in_wires(&self, node: NodeId) -> Vec<Wire> {
        self.nodes[node.0]
            .in_wires
            .iter()
            .map(|&i| Wire {
                circuit: self.id,
                index: i,
            })
            .collect()
    }
}

/// Aggregate circuit statistics (see [`Circuit::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Machine + hole instances.
    pub cells: usize,
    /// Sum of machine state counts.
    pub states: usize,
    /// Sum of machine transition counts.
    pub transitions: usize,
    /// Sum of JJ counts.
    pub jjs: u32,
    /// Stimulus sources.
    pub sources: usize,
    /// Total wires.
    pub wires: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EdgeDef;

    fn jtl() -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            5.7,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    #[test]
    fn wires_are_named_and_observed() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        assert_eq!(c.wire_name(a), "A");
        let q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        assert!(c.wire_name(q).starts_with('_'));
        c.inspect(q, "Q");
        assert_eq!(c.wire_name(q), "Q");
        c.check().unwrap();
    }

    #[test]
    fn fanout_violation_is_rejected() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        let _ = c.add_machine(&jtl(), &[a]).unwrap();
        let err = c.add_machine(&jtl(), &[a]).unwrap_err();
        assert!(matches!(err, WiringError::FanoutViolation { .. }));
    }

    #[test]
    fn duplicate_observed_names_are_rejected() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        let q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        c.inspect(q, "A");
        assert!(matches!(
            c.check(),
            Err(WiringError::DuplicateWireName { .. })
        ));
    }

    #[test]
    fn output_wires_are_sinkless_wires() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        let q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        let outs = c.output_wires();
        assert_eq!(outs, vec![q]);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        let q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        let _ = c.add_machine(&jtl(), &[q]).unwrap();
        let s = c.stats();
        assert_eq!(s.cells, 2);
        assert_eq!(s.states, 2);
        assert_eq!(s.transitions, 2);
        assert_eq!(s.jjs, 4);
        assert_eq!(s.sources, 1);
    }

    #[test]
    fn overrides_apply_at_instantiation() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c
            .add_machine_with(
                &jtl(),
                &[a],
                NodeOverrides {
                    firing_delay: Some(2.0),
                    jjs: Some(99),
                    ..Default::default()
                },
            )
            .unwrap()[0];
        let _ = q;
        assert_eq!(c.stats().jjs, 99);
        let node = c.machines().next().unwrap().0;
        assert_eq!(c.node_machine(node).unwrap().firing_delay(), 2.0);
    }

    #[test]
    #[should_panic(expected = "different circuit")]
    fn foreign_wire_panics() {
        let mut c1 = Circuit::new();
        let mut c2 = Circuit::new();
        let a = c1.inp_at(&[1.0], "A");
        let _ = c2.add_machine(&jtl(), &[a]);
    }

    #[test]
    fn inp_generates_periodic_pulses() {
        let mut c = Circuit::new();
        let _clk = c.inp(50.0, 50.0, 6, "CLK").unwrap();
        let (name, times) = c.sources().next().unwrap();
        assert_eq!(name, "CLK");
        assert_eq!(times, &[50.0, 100.0, 150.0, 200.0, 250.0, 300.0]);
    }

    #[test]
    fn inp_rejects_bad_periods_and_starts() {
        let mut c = Circuit::new();
        for (start, period, n) in [
            (0.0, 0.0, 2),
            (0.0, -5.0, 3),
            (0.0, f64::NAN, 2),
            (0.0, f64::INFINITY, 2),
            (f64::NAN, 10.0, 1),
            (-1.0, 10.0, 4),
            (f64::INFINITY, 10.0, 1),
        ] {
            let err = c.inp(start, period, n, "BAD").unwrap_err();
            assert!(
                matches!(err, WiringError::InvalidStimulus { .. }),
                "({start}, {period}, {n}) should be InvalidStimulus, got {err:?}"
            );
            assert!(!err.to_string().is_empty());
        }
        // Degenerate-but-harmless trains still build: period unused for n <= 1.
        let _ = c.inp(5.0, 0.0, 1, "ONE").unwrap();
        let _ = c.inp(5.0, -1.0, 0, "EMPTY").unwrap();
    }
}
