//! The discrete-event pulse simulator (paper §4.3).
//!
//! The simulator maintains a priority heap of pending pulses tagged with
//! their destination cells. Pulses are extracted in time order, grouped into
//! the earliest set of simultaneous pulses destined for the same cell
//! (`getSimPulses` from Fig. 6), and dispatched through that cell's PyLSE
//! Machine; newly fired pulses are pushed back onto the heap until it is
//! empty or the user-defined target time is reached.
//!
//! ## Kernel architecture
//!
//! The hot loop is **allocation-free**. On first use, the circuit is lowered
//! by [`CompiledCircuit::compile`] into flat transition tables and an
//! interned symbol table (see [`crate::compiled`]); the event loop then works
//! entirely with `u32` state/port/symbol indices, mutates the flat
//! `(state, τ_done, Θ)` runtime arrays in place, and reuses per-simulation
//! scratch buffers for the simultaneous-pulse batch, the dispatch working
//! set, and the fired-output list. Strings are materialized only at the
//! boundary: [`TraceEntry`] construction, timing diagnostics, and the final
//! [`Events`] dictionary. Compiled tables survive [`Simulation::reset`], so
//! Monte-Carlo sweep workers compile once per circuit, not once per trial.

use crate::circuit::{Circuit, NodeKind};
use crate::compiled::{CompiledCircuit, CompiledNode};
use crate::error::{Error, HoleError, Time, TimingViolation, ViolationKind};
use crate::events::Events;
use crate::telemetry::{CellTally, Telemetry};
use std::sync::Arc;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BinaryHeap;

pub mod parallel;

/// Per-firing propagation-delay variability (paper §5.2).
///
/// With variability enabled, every individual propagation delay that occurs
/// during the simulation has a small amount of jitter added to it.
pub enum Variability {
    /// Add zero-mean Gaussian noise with the given standard deviation (in
    /// time units) to every firing delay. This is the paper's default.
    Gaussian {
        /// Standard deviation of the added jitter.
        std: f64,
    },
    /// Gaussian noise with a per-cell-type standard deviation; cell types not
    /// in the map get no jitter.
    PerCellType(std::collections::HashMap<String, f64>),
    /// A user-defined function from `(nominal_delay, cell_name, rng)` to the
    /// actual delay, for fine-grained control.
    Custom(CustomDelayFn),
}

/// The boxed delay-model signature accepted by [`Variability::Custom`]:
/// `(nominal_delay, cell_name, rng) -> actual_delay`.
pub type CustomDelayFn = Box<dyn FnMut(Time, &str, &mut dyn RngCore) -> Time + Send>;

impl Variability {
    /// The paper's default jitter: Gaussian with σ = 0.2 ps.
    pub fn default_gaussian() -> Self {
        Variability::Gaussian { std: 0.2 }
    }
}

impl std::fmt::Debug for Variability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variability::Gaussian { std } => f.debug_struct("Gaussian").field("std", std).finish(),
            Variability::PerCellType(m) => f.debug_tuple("PerCellType").field(m).finish(),
            Variability::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// Resolve a variability model to the per-node jitter sigma the kernels
/// cache: `NaN` means "no jitter for this node" — an absent [`PerCellType`]
/// (Variability::PerCellType) entry (which draws no RNG sample, matching
/// the interpreted kernel), or an exact σ = 0. The σ = 0 case must
/// reproduce the nominal run **bit for bit**, and applying a `0·sample`
/// term would not: the delay round-trips through `t + (fire − t)`, which is
/// not an f64 identity. `0.0` marks a [`Custom`](Variability::Custom)
/// model, which always calls the user closure. Shared by the scalar
/// simulator and the batch sweep kernel so both resolve identically.
pub(crate) fn resolve_sigma(v: &Variability, cell: &str) -> f64 {
    match v {
        Variability::Gaussian { std } => {
            if *std == 0.0 {
                f64::NAN
            } else {
                *std
            }
        }
        Variability::PerCellType(map) => match map.get(cell).copied() {
            Some(s) if s != 0.0 => s,
            _ => f64::NAN,
        },
        Variability::Custom(_) => 0.0,
    }
}

/// Standard-normal sampler using the Box–Muller transform, keeping the sine
/// half of each generated pair as a spare for the next call — halving the
/// `ln`/`sqrt`/trig work per jittered delay.
///
/// The spare lives on the sampler (one per simulation run), never in
/// thread-local or global state, so the jitter stream for a given seed is
/// identical no matter which thread runs the trial.
#[derive(Debug, Default)]
pub(crate) struct BoxMuller {
    spare: Option<f64>,
}

impl BoxMuller {
    pub(crate) fn sample(&mut self, rng: &mut StdRng) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare = Some(r * sin);
        r * cos
    }
}

/// One dispatched batch in a simulation trace (see
/// [`Simulation::with_trace`]): which cell received which simultaneous
/// inputs at what time, the state movement, and the pulses fired.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Arrival time of the batch.
    pub time: Time,
    /// Name of the receiving node's first output wire (the paper's node id).
    pub node_wire: String,
    /// Cell type name (machine name or hole name).
    pub cell: String,
    /// Input port names that pulsed in this batch.
    pub inputs: Vec<String>,
    /// Machine state before the batch (empty for holes).
    pub state_before: String,
    /// Machine state after the batch (empty for holes).
    pub state_after: String,
    /// Output pulses fired: `(output name, absolute time)`.
    pub fired: Vec<(String, Time)>,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={:<8} {:<12} {:<8} in={:?}",
            self.time, self.node_wire, self.cell, self.inputs
        )?;
        if !self.state_before.is_empty() {
            write!(f, " {} -> {}", self.state_before, self.state_after)?;
        }
        if !self.fired.is_empty() {
            write!(f, " fires {:?}", self.fired)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Pulse {
    time: Time,
    node: usize,
    port: usize,
    seq: u64,
}

impl Eq for Pulse {}
impl Ord for Pulse {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (time, node, seq).
        other
            .time
            .total_cmp(&self.time)
            .then(other.node.cmp(&self.node))
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Pulse {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A configured simulation of one [`Circuit`].
///
/// ```
/// use rlse_core::prelude::*;
/// use rlse_core::machine::{EdgeDef, Machine};
///
/// # fn main() -> Result<(), rlse_core::Error> {
/// let jtl = Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
///     src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default()
/// }])?;
/// let mut c = Circuit::new();
/// let a = c.inp_at(&[10.0, 20.0], "A");
/// let q = c.add_machine(&jtl, &[a])?[0];
/// c.inspect(q, "Q");
/// let events = Simulation::new(c).run()?;
/// assert_eq!(events.times("Q"), &[15.0, 25.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    circuit: Circuit,
    /// Built lazily on first `reset`/`run` and retained for the lifetime of
    /// the simulation (the circuit is immutable while owned here), so sweep
    /// workers compile once per circuit, not per trial. Held behind an
    /// `Arc` so a shared compiled form (e.g. from an
    /// [`ir::CompiledCache`](crate::ir::CompiledCache)) can be injected with
    /// [`with_compiled`](Simulation::with_compiled) instead of recompiled.
    compiled: Option<Arc<CompiledCircuit>>,
    until: Option<Time>,
    variability: Option<Variability>,
    seed: u64,
    trace_enabled: bool,
    trace: Vec<TraceEntry>,
    // Flat machine runtime state κ = ⟨q, τ_done, Θ⟩, indexed by node (Θ by
    // the node's theta offset from the compiled circuit). Reset per run,
    // mutated in place by the event loop.
    states: Vec<u32>,
    tau_done: Vec<f64>,
    theta: Vec<f64>,
    // Reusable per-run buffers (see `reset`): the per-wire event lists and
    // the pending-pulse heap. Kept on the struct so repeated runs
    // (Monte-Carlo sweeps) reuse their allocations instead of rebuilding
    // them per trial.
    wire_events: Vec<Vec<Time>>,
    heap: BinaryHeap<Pulse>,
    // Scratch buffers reused across every dispatched batch: the
    // simultaneous-pulse batch (input ports in arrival order), the dispatch
    // working set, the fired-output list, the hole pulse-presence vector,
    // and the per-node pre-resolved variability sigma (NaN = exempt).
    batch: Vec<u32>,
    rest: Vec<u32>,
    fired: Vec<(u32, f64)>,
    present: Vec<bool>,
    var_std: Vec<f64>,
    // Telemetry: a shared handle (no-op when disabled), the timeline track
    // this simulation records spans onto, and a per-node tally scratch
    // buffer that is only ever allocated when the handle is enabled.
    telemetry: Telemetry,
    tel_track: u32,
    tel_cells: Vec<CellTally>,
}

impl Simulation {
    /// Create a simulation over `circuit` with no target time and no
    /// variability.
    pub fn new(circuit: Circuit) -> Self {
        Simulation {
            circuit,
            compiled: None,
            until: None,
            variability: None,
            seed: 0xC0FFEE,
            trace_enabled: false,
            trace: Vec::new(),
            states: Vec::new(),
            tau_done: Vec::new(),
            theta: Vec::new(),
            wire_events: Vec::new(),
            heap: BinaryHeap::new(),
            batch: Vec::new(),
            rest: Vec::new(),
            fired: Vec::new(),
            present: Vec::new(),
            var_std: Vec::new(),
            telemetry: Telemetry::disabled(),
            tel_track: 0,
            tel_cells: Vec::new(),
        }
    }

    /// Create a simulation over `circuit` with a pre-compiled dispatch
    /// table, skipping compilation entirely — the cache-hit fast path of
    /// [`ir::CompiledCache`](crate::ir::CompiledCache).
    ///
    /// `compiled` must have been produced by
    /// [`CompiledCircuit::compile`] from a circuit structurally identical to
    /// `circuit` (same nodes, wires, and machine specs in the same order);
    /// the cache guarantees this by keying on the IR's canonical bytes.
    pub fn with_compiled(circuit: Circuit, compiled: Arc<CompiledCircuit>) -> Self {
        let mut sim = Self::new(circuit);
        sim.compiled = Some(compiled);
        sim
    }

    /// Simulate only until the given time. Required when the circuit has
    /// feedback loops, which would otherwise generate pulses forever.
    pub fn until(mut self, t: Time) -> Self {
        self.until = Some(t);
        self
    }

    /// Enable firing-delay variability.
    pub fn variability(mut self, v: Variability) -> Self {
        self.variability = Some(v);
        self
    }

    /// Seed the variability RNG for reproducible jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Change the variability RNG seed of an existing simulation (the
    /// in-place counterpart of [`seed`](Self::seed), for reusing one
    /// simulation across many trials).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Change or clear the target time in place.
    pub fn set_until(&mut self, until: Option<Time>) {
        self.until = until;
    }

    /// Change or clear the variability model in place.
    pub fn set_variability(&mut self, v: Option<Variability>) {
        self.variability = v;
    }

    /// Attach a [`Telemetry`] handle: every subsequent [`run`](Self::run)
    /// flushes its counters, per-cell tallies, and a `sim.run` span into it.
    /// A [disabled](Telemetry::disabled) handle (the default) keeps the hot
    /// loop on its no-op path — see the [`telemetry`](crate::telemetry)
    /// module docs for the cost model.
    pub fn telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    /// Attach or detach the telemetry handle in place (the counterpart of
    /// [`telemetry`](Self::telemetry) for a simulation already built).
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.telemetry = tel.clone();
    }

    /// Set the timeline track (Chrome-trace lane) this simulation's spans
    /// are recorded onto. Track 0 is the driving thread; sweep workers use
    /// their 1-based worker index.
    pub fn set_telemetry_track(&mut self, track: u32) {
        self.tel_track = track;
    }

    /// The circuit lowered to flat dispatch tables, compiling it now if this
    /// simulation has not yet run. The compiled form is cached for the
    /// simulation's lifetime.
    pub fn compiled(&mut self) -> &CompiledCircuit {
        if self.compiled.is_none() {
            self.compiled = Some(Arc::new(CompiledCircuit::compile(&self.circuit)));
        }
        self.compiled.as_deref().expect("just compiled")
    }

    /// Restore the simulation to its pre-run state so it can be run again:
    /// every machine configuration ⟨q, τ_done, Θ⟩ is reset to its initial
    /// value, and the pulse heap, per-wire event lists, and dispatch trace
    /// are emptied — **keeping their allocations** for the next run. The
    /// compiled dispatch tables are retained (the circuit cannot change
    /// while owned by the simulation), so a reset run pays no recompilation.
    ///
    /// [`run`](Self::run) calls this automatically on entry, so an explicit
    /// call is only needed to drop stale state eagerly (e.g. after a run
    /// aborted with a timing violation left pulses pending).
    pub fn reset(&mut self) {
        self.trace.clear();
        self.heap.clear();
        if self.compiled.is_none() {
            self.compiled = Some(Arc::new(CompiledCircuit::compile(&self.circuit)));
        }
        let cc = self.compiled.as_deref().expect("compiled above");
        let n_nodes = cc.nodes.len();
        self.states.clear();
        self.tau_done.clear();
        self.tau_done.resize(n_nodes, 0.0);
        self.states.extend(cc.nodes.iter().map(|n| match n {
            CompiledNode::Machine { cm, .. } => cc.machines[*cm as usize].start,
            _ => 0,
        }));
        self.theta.clear();
        self.theta.resize(cc.theta_len, f64::NEG_INFINITY);
        let n_wires = self.circuit.wires.len();
        if self.wire_events.len() != n_wires {
            self.wire_events.resize_with(n_wires, Vec::new);
        }
        for evs in &mut self.wire_events {
            evs.clear();
        }
        // Pre-size the pulse heap from the same dispatch estimate the trace
        // uses: the heap's peak depth is bounded by pending stimulus plus
        // in-flight fan-out, both covered by `event_estimate`, so the hot
        // loop never pays a sift-and-reallocate mid-run.
        let est = cc.event_estimate();
        if self.heap.capacity() < est {
            self.heap.reserve(est);
        }
        if self.trace_enabled {
            // Pre-size the trace from the compiled circuit's dispatch
            // estimate so a traced run does not grow the Vec batch by batch.
            if self.trace.capacity() < est {
                self.trace.reserve(est);
            }
        }
    }

    /// Number of pulses currently pending in the heap (0 outside of `run`
    /// and after a `reset`; nonzero after a run aborted by an error).
    pub fn pending_pulses(&self) -> usize {
        self.heap.len()
    }

    /// Record a [`TraceEntry`] for every dispatched batch; retrieve the log
    /// with [`trace`](Self::trace) after running. Each entry materializes
    /// the batch's names as owned `String`s — several heap allocations per
    /// dispatched batch, not one — so leave tracing off for benchmarking.
    /// The trace `Vec` itself is pre-sized from the compiled circuit's
    /// [`event_estimate`](CompiledCircuit::event_estimate), so its growth
    /// is not part of the per-batch cost on feed-forward circuits.
    pub fn with_trace(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// The dispatch log of the most recent [`run`](Self::run), if tracing
    /// was enabled.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Borrow the circuit under simulation.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Take the circuit back out of the simulation.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// Run the simulation to completion (empty pulse heap or target time)
    /// and return the events observed on every named wire.
    ///
    /// Machine configurations are reset on every call, so `run` may be
    /// called repeatedly; note however that hole closures keep whatever
    /// internal state the user function carries.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timing`] if any cell detects a transition-time or
    /// past-constraint violation, with a Figure-13-style diagnostic, or
    /// [`Error::Hole`] if a hole returns the wrong number of outputs.
    pub fn run(&mut self) -> Result<Events, Error> {
        self.circuit.check()?;
        // Telemetry state is hoisted out of the hot loop: one enabled check
        // per run, local u64 tallies while running, one flush at the end.
        let tel_on = self.telemetry.is_enabled();
        let t_compile = if self.compiled.is_none() {
            self.telemetry.now()
        } else {
            None
        };
        self.reset();
        if let Some(t0) = t_compile {
            self.telemetry.record_span("sim.compile", self.tel_track, t0, 0);
        }
        let t_run = self.telemetry.now();
        // Split the struct into disjoint field borrows so the circuit, the
        // compiled tables, the flat runtime state, and the scratch buffers
        // can be used together.
        let Simulation {
            circuit,
            compiled,
            until,
            variability,
            seed,
            trace_enabled,
            trace,
            states,
            tau_done,
            theta,
            wire_events,
            heap,
            batch,
            rest,
            fired,
            present,
            var_std,
            telemetry,
            tel_track,
            tel_cells,
        } = self;
        let cc: &CompiledCircuit = compiled.as_deref().expect("compiled in reset");
        if tel_on {
            tel_cells.clear();
            tel_cells.resize(cc.nodes.len(), CellTally::default());
        }
        let mut n_dispatches = 0u64;
        let mut n_transitions = 0u64;
        let mut n_pushed = 0u64;
        let mut n_popped = 0u64;
        let mut n_wire = 0u64;
        let mut max_heap = 0usize;
        let until = *until;
        let trace_enabled = *trace_enabled;
        let mut rng = StdRng::seed_from_u64(*seed);
        let mut bm = BoxMuller::default();
        let mut seq = 0u64;

        // Pre-resolve variability to a per-node sigma so the hot loop never
        // touches cell-name strings: NaN means "no jitter for this node"
        // (variability off for it, exempt instance, hole, σ = 0, or an
        // absent PerCellType entry). Custom models get a 0.0 marker and
        // call the user closure with the interned cell name. See
        // [`resolve_sigma`] for the σ = 0 bit-identity rationale.
        let var_active = variability.is_some();
        var_std.clear();
        if var_active {
            var_std.resize(cc.nodes.len(), f64::NAN);
            for (i, cn) in cc.nodes.iter().enumerate() {
                if let CompiledNode::Machine { exempt, .. } = cn {
                    if *exempt {
                        continue;
                    }
                    var_std[i] = resolve_sigma(
                        variability.as_ref().expect("active"),
                        cc.symbols.resolve(cc.cell[i]),
                    );
                }
            }
        }
        let mut custom = match variability.as_mut() {
            Some(Variability::Custom(f)) => Some(f),
            _ => None,
        };

        let record_ok = |t: Time, until: Option<Time>| until.is_none_or(|u| t <= u);

        // The whole event loop lives in one labeled block so every exit —
        // normal completion and the three abort paths — funnels through the
        // single telemetry flush below.
        let outcome: Result<(), Error> = 'run: {
        // Seed the heap from stimulus sources.
        for node in circuit.nodes.iter() {
            if let NodeKind::Source { pulses } = &node.kind {
                let wire = node.out_wires[0];
                for &t in pulses {
                    if record_ok(t, until) {
                        wire_events[wire].push(t);
                        if tel_on {
                            n_wire += 1;
                        }
                    }
                    if let Some((sink, port)) = circuit.wires[wire].sink {
                        heap.push(Pulse {
                            time: t,
                            node: sink.0,
                            port,
                            seq,
                        });
                        seq += 1;
                        if tel_on {
                            n_pushed += 1;
                        }
                    }
                }
            }
        }
        if tel_on {
            max_heap = heap.len();
        }

        // Main discrete-event loop.
        while let Some(first) = heap.pop() {
            if let Some(u) = until {
                if first.time > u {
                    break;
                }
            }
            // getSimPulses: gather all pulses with the same (time, node).
            let node = first.node;
            let t = first.time;
            batch.clear();
            batch.push(first.port as u32);
            while let Some(p) = heap.peek() {
                if p.time == t && p.node == node {
                    batch.push(heap.pop().expect("peeked").port as u32);
                } else {
                    break;
                }
            }
            if tel_on {
                n_popped += batch.len() as u64;
                n_dispatches += 1;
            }
            fired.clear();
            match cc.nodes[node] {
                CompiledNode::Source => unreachable!("sources receive no pulses"),
                CompiledNode::Machine { cm, theta_off, .. } => {
                    let m = &cc.machines[cm as usize];
                    let th =
                        &mut theta[theta_off as usize..theta_off as usize + m.n_inputs as usize];
                    let mut q = states[node];
                    let state_before = q;
                    let mut td = tau_done[node];
                    // Dispatch (Fig. 6): handle the batch in priority order
                    // (lowest priority number first, ties broken by input
                    // index), mutating κ in place. On a violation the run
                    // aborts, so partial in-place updates never leak: the
                    // next run resets the flat state.
                    rest.clear();
                    rest.extend_from_slice(batch);
                    while !rest.is_empty() {
                        let mut pos = 0usize;
                        let mut best = (m.transition(q, rest[0]).priority, rest[0]);
                        for (i, &p) in rest.iter().enumerate().skip(1) {
                            let key = (m.transition(q, p).priority, p);
                            if key < best {
                                pos = i;
                                best = key;
                            }
                        }
                        let sigma = rest.remove(pos);
                        let tr = *m.transition(q, sigma);
                        if t < td {
                            break 'run Err(violation(
                                cc,
                                m,
                                node,
                                batch,
                                &tr,
                                t,
                                ViolationKind::TransitionTime { tau_done: td },
                            )
                            .into());
                        }
                        for &(cin, dist) in &m.pasts[tr.past.0 as usize..tr.past.1 as usize] {
                            let last = th[cin as usize];
                            if t < last + dist {
                                break 'run Err(violation(
                                    cc,
                                    m,
                                    node,
                                    batch,
                                    &tr,
                                    t,
                                    ViolationKind::PastConstraint {
                                        constrained: cc
                                            .symbols
                                            .resolve(m.inputs[cin as usize])
                                            .to_string(),
                                        required: dist,
                                        last_seen: last,
                                    },
                                )
                                .into());
                            }
                        }
                        q = tr.dst;
                        td = t + tr.tau_tran;
                        th[sigma as usize] = t;
                        for &(o, d) in &m.firings[tr.fire.0 as usize..tr.fire.1 as usize] {
                            fired.push((o, t + d));
                        }
                    }
                    states[node] = q;
                    tau_done[node] = td;
                    if tel_on {
                        n_transitions += batch.len() as u64;
                        let tc = &mut tel_cells[node];
                        tc.dispatches += 1;
                        tc.transitions += batch.len() as u64;
                        tc.fired += fired.len() as u64;
                    }
                    if trace_enabled {
                        // Boundary string materialization: the trace records
                        // nominal firing times (pre-variability), exactly as
                        // the interpreted kernel did.
                        trace.push(TraceEntry {
                            time: t,
                            node_wire: cc.symbols.resolve(cc.node_wire[node]).to_string(),
                            cell: cc.symbols.resolve(m.name).to_string(),
                            inputs: batch
                                .iter()
                                .map(|&p| cc.symbols.resolve(m.inputs[p as usize]).to_string())
                                .collect(),
                            state_before: cc
                                .symbols
                                .resolve(m.states[state_before as usize])
                                .to_string(),
                            state_after: cc.symbols.resolve(m.states[q as usize]).to_string(),
                            fired: fired
                                .iter()
                                .map(|&(o, ft)| {
                                    (cc.symbols.resolve(m.outputs[o as usize]).to_string(), ft)
                                })
                                .collect(),
                        });
                    }
                }
                CompiledNode::Hole { in_syms, out_syms } => {
                    let NodeKind::Hole(hole) = &mut circuit.nodes[node].kind else {
                        unreachable!("compiled node kind matches circuit node kind")
                    };
                    present.clear();
                    present.resize(hole.inputs().len(), false);
                    for &p in batch.iter() {
                        present[p as usize] = true;
                    }
                    let outs = hole.call(present, t);
                    if outs.len() != hole.outputs().len() {
                        break 'run Err(HoleError::ArityMismatch {
                            hole: hole.name().to_string(),
                            expected: hole.outputs().len(),
                            got: outs.len(),
                        }
                        .into());
                    }
                    let delay = hole.delay();
                    for (port, fire) in outs.into_iter().enumerate() {
                        if fire {
                            fired.push((port as u32, t + delay));
                        }
                    }
                    if tel_on {
                        let tc = &mut tel_cells[node];
                        tc.dispatches += 1;
                        tc.fired += fired.len() as u64;
                    }
                    if trace_enabled {
                        trace.push(TraceEntry {
                            time: t,
                            node_wire: cc.symbols.resolve(cc.node_wire[node]).to_string(),
                            cell: cc.symbols.resolve(cc.cell[node]).to_string(),
                            inputs: batch
                                .iter()
                                .map(|&p| {
                                    cc.symbols
                                        .resolve(cc.hole_port_syms[(in_syms + p) as usize])
                                        .to_string()
                                })
                                .collect(),
                            state_before: String::new(),
                            state_after: String::new(),
                            fired: fired
                                .iter()
                                .map(|&(o, ft)| {
                                    (
                                        cc.symbols
                                            .resolve(cc.hole_port_syms[(out_syms + o) as usize])
                                            .to_string(),
                                        ft,
                                    )
                                })
                                .collect(),
                        });
                    }
                }
            }
            // Apply firing-delay variability in place (machines only; holes
            // and exempt/unmapped nodes have a NaN sigma).
            if var_active {
                let std = var_std[node];
                if !std.is_nan() {
                    for fo in fired.iter_mut() {
                        let nominal = fo.1 - t;
                        let actual = match custom.as_mut() {
                            Some(f) => f(nominal, cc.symbols.resolve(cc.cell[node]), &mut rng),
                            None => nominal + std * bm.sample(&mut rng),
                        };
                        fo.1 = t + actual.max(0.0);
                    }
                }
            }
            // Deliver fired pulses through the flat routing arrays.
            let outs = cc.node_out_wires(node);
            for &(port, t_out) in fired.iter() {
                let wire = outs[port as usize] as usize;
                if record_ok(t_out, until) {
                    wire_events[wire].push(t_out);
                    if tel_on {
                        n_wire += 1;
                    }
                }
                let (sink, sport) = cc.sink[wire];
                if sink != u32::MAX {
                    heap.push(Pulse {
                        time: t_out,
                        node: sink as usize,
                        port: sport as usize,
                        seq,
                    });
                    seq += 1;
                    if tel_on {
                        n_pushed += 1;
                    }
                }
            }
            if tel_on {
                max_heap = max_heap.max(heap.len());
            }
        }
        Ok(())
        }; // 'run

        if tel_on {
            telemetry.add_many(&[
                ("sim.runs", 1),
                ("sim.dispatches", n_dispatches),
                ("sim.transitions", n_transitions),
                ("sim.pulses_pushed", n_pushed),
                ("sim.pulses_popped", n_popped),
                ("sim.wire_pulses", n_wire),
            ]);
            telemetry.peak("sim.max_heap_depth", max_heap as u64);
            match &outcome {
                Err(Error::Timing(_)) => telemetry.add("sim.timing_violations", 1),
                Err(_) => telemetry.add("sim.error_runs", 1),
                Ok(()) => {}
            }
            for (node, tally) in tel_cells.iter().enumerate() {
                telemetry.add_cell(cc.symbols.resolve(cc.cell[node]), tally);
            }
            if let Some(t0) = t_run {
                telemetry.record_span("sim.run", *tel_track, t0, n_dispatches);
            }
        }
        outcome?;

        for evs in wire_events.iter_mut() {
            evs.sort_by(f64::total_cmp);
        }
        Ok(Events::from_wires(circuit, wire_events))
    }
}

/// Materialize a Figure-13-style timing diagnostic from compiled indices
/// (cold path: only reached when the run is about to abort).
#[cold]
fn violation(
    cc: &CompiledCircuit,
    m: &crate::compiled::CompiledMachine,
    node: usize,
    batch: &[u32],
    tr: &crate::compiled::CompiledTransition,
    tau_arr: Time,
    kind: ViolationKind,
) -> TimingViolation {
    TimingViolation {
        machine: cc.symbols.resolve(m.name).to_string(),
        node_wire: cc.symbols.resolve(cc.node_wire[node]).to_string(),
        transition: tr.id as usize,
        inputs: batch
            .iter()
            .map(|&p| cc.symbols.resolve(m.inputs[p as usize]).to_string())
            .collect(),
        tau_arr,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{EdgeDef, Machine};
    use std::sync::Arc;

    fn jtl(delay: f64) -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            delay,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    fn merger() -> Arc<Machine> {
        Machine::new(
            "M",
            &["a", "b"],
            &["q"],
            6.3,
            5,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
                EdgeDef { src: "idle", trigger: "b", dst: "idle", firing: "q", ..Default::default() },
            ],
        )
        .unwrap()
    }

    #[test]
    fn pulses_propagate_through_a_chain() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q1 = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        let q2 = c.add_machine(&jtl(5.0), &[q1]).unwrap()[0];
        c.inspect(q2, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[20.0]);
    }

    #[test]
    fn merger_merges_both_streams() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let b = c.inp_at(&[20.0], "B");
        let q = c.add_machine(&merger(), &[a, b]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[16.3, 26.3, 36.3]);
    }

    #[test]
    fn until_cuts_off_late_pulses() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 100.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c).until(50.0).run().unwrap();
        assert_eq!(ev.times("Q"), &[15.0]);
        assert_eq!(ev.times("A"), &[10.0]);
    }

    #[test]
    fn simultaneous_pulses_are_batched() {
        // Two pulses at the same instant into a merger: both handled, two
        // output pulses at the same time.
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let b = c.inp_at(&[10.0], "B");
        let q = c.add_machine(&merger(), &[a, b]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[16.3, 16.3]);
    }

    #[test]
    fn variability_jitters_delays_reproducibly() {
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0], "A");
            let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let ev1 = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(42)
            .run()
            .unwrap();
        let ev2 = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(42)
            .run()
            .unwrap();
        let ev3 = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(43)
            .run()
            .unwrap();
        assert_eq!(ev1.times("Q"), ev2.times("Q"));
        assert_ne!(ev1.times("Q"), ev3.times("Q"));
        assert_ne!(ev1.times("Q"), &[15.0]);
        // Jitter is small: within 5 sigma of nominal.
        assert!((ev1.times("Q")[0] - 15.0).abs() < 2.5);
    }

    #[test]
    fn zero_sigma_gaussian_is_bitwise_identical_to_nominal() {
        // σ = 0 must not merely be "close to" the nominal run — the delays
        // must round-trip untouched. (Applying a 0·sample jitter term would
        // re-derive each firing time as t + (fire − t), which is not an f64
        // identity at every time scale.)
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[0.1, 10.3, 1000.7], "A");
            let q1 = c.add_machine(&jtl(5.3), &[a]).unwrap()[0];
            let q2 = c.add_machine(&jtl(0.2), &[q1]).unwrap()[0];
            c.inspect(q2, "Q");
            c
        };
        let nominal = Simulation::new(build()).run().unwrap();
        let zero = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.0 })
            .seed(99)
            .run()
            .unwrap();
        let t_n = nominal.times("Q");
        let t_z = zero.times("Q");
        assert_eq!(t_n.len(), t_z.len());
        for (a, b) in t_n.iter().zip(t_z) {
            assert_eq!(a.to_bits(), b.to_bits(), "σ=0 must be bit-identical");
        }
    }

    #[test]
    fn zero_sigma_per_cell_entry_is_bitwise_identical_to_nominal() {
        let mut map = std::collections::HashMap::new();
        map.insert("JTL".to_string(), 0.0);
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[0.1, 10.3], "A");
            let q = c.add_machine(&jtl(5.3), &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let nominal = Simulation::new(build()).run().unwrap();
        let zero = Simulation::new(build())
            .variability(Variability::PerCellType(map))
            .seed(7)
            .run()
            .unwrap();
        for (a, b) in nominal.times("Q").iter().zip(zero.times("Q")) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn per_cell_variability_only_hits_named_cells() {
        let mut map = std::collections::HashMap::new();
        map.insert("OTHER".to_string(), 1.0);
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c)
            .variability(Variability::PerCellType(map))
            .run()
            .unwrap();
        assert_eq!(ev.times("Q"), &[15.0]);
    }

    #[test]
    fn exempt_instances_skip_variability() {
        use crate::circuit::NodeOverrides;
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c
            .add_machine_with(
                &jtl(5.0),
                &[a],
                NodeOverrides {
                    exempt_from_variability: true,
                    ..Default::default()
                },
            )
            .unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c)
            .variability(Variability::Gaussian { std: 2.0 })
            .run()
            .unwrap();
        assert_eq!(ev.times("Q"), &[15.0]);
    }

    #[test]
    fn custom_variability_sees_interned_cell_names() {
        // The custom model gets the cell-type name; symbols round-trip
        // through the compiled table without garbling it.
        let mut seen: Vec<String> = Vec::new();
        let names = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let names2 = std::sync::Arc::clone(&names);
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c)
            .variability(Variability::Custom(Box::new(move |d, cell, _rng| {
                names2.lock().unwrap().push(cell.to_string());
                d + 1.0
            })))
            .run()
            .unwrap();
        assert_eq!(ev.times("Q"), &[16.0]);
        seen.extend(names.lock().unwrap().iter().cloned());
        assert_eq!(seen, vec!["JTL".to_string()]);
    }

    #[test]
    fn hole_arity_mismatch_is_reported() {
        use crate::functional::Hole;
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let h = Hole::new("bad", 1.0, &["a"], &["q"], |_, _| vec![]);
        let q = c.add_hole(h, &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let err = Simulation::new(c).run().unwrap_err();
        assert!(matches!(err, Error::Hole(_)));
    }

    #[test]
    fn timing_violation_includes_node_wire() {
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 11.0], "A");
        let q = c.add_machine(&m, &[a]).unwrap()[0];
        c.inspect(q, "OUT");
        let err = Simulation::new(c).run().unwrap_err();
        match err {
            Error::Timing(v) => {
                assert_eq!(v.node_wire, "OUT");
                assert_eq!(v.inputs, vec!["a".to_string()]);
            }
            e => panic!("expected timing violation, got {e}"),
        }
    }

    #[test]
    fn rerun_reuses_buffers_with_identical_results() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c).with_trace();
        let ev1 = sim.run().unwrap();
        let n_trace = sim.trace().len();
        let ev2 = sim.run().unwrap();
        assert_eq!(ev1, ev2);
        // The trace is rebuilt, not appended to.
        assert_eq!(sim.trace().len(), n_trace);
    }

    #[test]
    fn compiled_tables_survive_reset() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c);
        let before = sim.compiled() as *const CompiledCircuit;
        sim.run().unwrap();
        sim.reset();
        sim.run().unwrap();
        let after = sim.compiled() as *const CompiledCircuit;
        assert_eq!(before, after, "reset must not recompile the circuit");
    }

    #[test]
    fn reset_clears_state_after_error_transition_run() {
        // A fan-in of widely and narrowly spaced pulses: the narrow pair
        // trips the transition-time constraint mid-run, leaving pending
        // pulses in the heap and a partial trace.
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 11.0, 50.0, 90.0], "A");
        let q = c.add_machine(&m, &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c).with_trace();
        sim.run().unwrap_err();
        assert!(sim.pending_pulses() > 0, "error run leaves the heap dirty");
        sim.reset();
        assert_eq!(sim.pending_pulses(), 0);
        assert!(sim.trace().is_empty());
        // The machine configuration ⟨q, τ_done, Θ⟩ is back to initial: the
        // rerun fails at the same place with the same diagnostic instead of
        // carrying stale θ entries over.
        let err1 = format!("{:?}", sim.run().unwrap_err());
        let err2 = format!("{:?}", sim.run().unwrap_err());
        assert_eq!(err1, err2);
    }

    #[test]
    fn reset_clears_state_after_variability_run() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c)
            .with_trace()
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(9);
        let jittered = sim.run().unwrap();
        assert_ne!(jittered.times("Q"), &[15.0, 35.0]);
        // Same seed on the reused simulation: identical jitter stream (the
        // Box–Muller spare is per-run state, so reruns start fresh).
        assert_eq!(sim.run().unwrap(), jittered);
        // Turn variability off in place: exact nominal times — no leftover
        // heap pulses, RNG state, or machine configurations from the
        // jittered runs can leak into this one.
        sim.set_variability(None);
        let exact = sim.run().unwrap();
        assert_eq!(exact.times("Q"), &[15.0, 35.0]);
        // New seeds change the jittered run again.
        sim.set_variability(Some(Variability::Gaussian { std: 0.5 }));
        sim.set_seed(10);
        assert_ne!(sim.run().unwrap(), jittered);
    }

    #[test]
    fn telemetry_counts_dispatches_and_cells() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let q1 = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        let q2 = c.add_machine(&jtl(5.0), &[q1]).unwrap()[0];
        c.inspect(q2, "Q");
        let tel = Telemetry::new();
        let mut sim = Simulation::new(c).telemetry(&tel);
        let ev = sim.run().unwrap();
        let r = tel.report();
        assert_eq!(r.counter("sim.runs"), 1);
        // 2 stimulus pulses through 2 JTLs: 4 dispatched batches, each a
        // single-pulse batch, each taking one transition and firing once.
        assert_eq!(r.counter("sim.dispatches"), 4);
        assert_eq!(r.counter("sim.transitions"), 4);
        assert_eq!(r.counter("sim.pulses_popped"), 4);
        assert_eq!(r.counter("sim.pulses_pushed"), 4);
        assert_eq!(r.counter("sim.wire_pulses") as usize, ev.pulse_count_all());
        assert!(r.gauge("sim.max_heap_depth") >= 1);
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells[0].0, "JTL");
        assert_eq!(
            r.cells[0].1,
            crate::telemetry::CellTally { dispatches: 4, transitions: 4, fired: 4 }
        );
        // A second run doubles every additive counter.
        sim.run().unwrap();
        let r2 = tel.report();
        assert_eq!(r2.counter("sim.runs"), 2);
        assert_eq!(r2.counter("sim.dispatches"), 8);
    }

    #[test]
    fn telemetry_flushes_on_abort_paths() {
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 11.0], "A");
        let q = c.add_machine(&m, &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let tel = Telemetry::new();
        let mut sim = Simulation::new(c).telemetry(&tel);
        sim.run().unwrap_err();
        let r = tel.report();
        // The counters recorded up to the violation are flushed, not lost.
        assert_eq!(r.counter("sim.runs"), 1);
        assert_eq!(r.counter("sim.timing_violations"), 1);
        assert!(r.counter("sim.dispatches") >= 1);
    }

    #[test]
    fn disabled_telemetry_allocates_no_tally_storage() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c);
        sim.run().unwrap();
        assert!(!sim.telemetry.is_enabled());
        assert_eq!(
            sim.tel_cells.capacity(),
            0,
            "telemetry-off runs must not allocate tally scratch"
        );
        // Same with an explicitly attached disabled handle.
        let tel = Telemetry::disabled();
        sim.set_telemetry(&tel);
        sim.run().unwrap();
        assert_eq!(sim.tel_cells.capacity(), 0);
        assert!(tel.report().is_empty());
    }

    #[test]
    fn traced_run_presizes_from_event_estimate() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c).with_trace();
        sim.reset();
        let est = sim.compiled().event_estimate();
        assert!(est >= 2);
        assert!(sim.trace.capacity() >= est);
    }

    #[test]
    fn gaussian_sampler_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut bm = BoxMuller::default();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| bm.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn box_muller_spare_halves_rng_draws() {
        // Two samples from the cached sampler consume one uniform pair; the
        // RNG position after 2k samples equals the position after k pairs.
        let mut rng1 = StdRng::seed_from_u64(11);
        let mut bm = BoxMuller::default();
        for _ in 0..10 {
            bm.sample(&mut rng1);
        }
        let mut rng2 = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let _: f64 = rng2.gen_range(f64::MIN_POSITIVE..1.0);
            let _: f64 = rng2.gen();
        }
        assert_eq!(rng1.gen::<u64>(), rng2.gen::<u64>());
    }
}
