//! The discrete-event pulse simulator (paper §4.3).
//!
//! The simulator maintains a priority heap of pending pulses tagged with
//! their destination cells. Pulses are extracted in time order, grouped into
//! the earliest set of simultaneous pulses destined for the same cell
//! (`getSimPulses` from Fig. 6), and dispatched through that cell's PyLSE
//! Machine; newly fired pulses are pushed back onto the heap until it is
//! empty or the user-defined target time is reached.

use crate::circuit::{Circuit, NodeId, NodeKind};
use crate::error::{Error, HoleError, Time};
use crate::events::Events;
use crate::machine::{Config, InputId};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BinaryHeap;

/// Per-firing propagation-delay variability (paper §5.2).
///
/// With variability enabled, every individual propagation delay that occurs
/// during the simulation has a small amount of jitter added to it.
pub enum Variability {
    /// Add zero-mean Gaussian noise with the given standard deviation (in
    /// time units) to every firing delay. This is the paper's default.
    Gaussian {
        /// Standard deviation of the added jitter.
        std: f64,
    },
    /// Gaussian noise with a per-cell-type standard deviation; cell types not
    /// in the map get no jitter.
    PerCellType(std::collections::HashMap<String, f64>),
    /// A user-defined function from `(nominal_delay, cell_name, rng)` to the
    /// actual delay, for fine-grained control.
    Custom(CustomDelayFn),
}

/// The boxed delay-model signature accepted by [`Variability::Custom`]:
/// `(nominal_delay, cell_name, rng) -> actual_delay`.
pub type CustomDelayFn = Box<dyn FnMut(Time, &str, &mut dyn RngCore) -> Time + Send>;

impl Variability {
    /// The paper's default jitter: Gaussian with σ = 0.2 ps.
    pub fn default_gaussian() -> Self {
        Variability::Gaussian { std: 0.2 }
    }

    fn apply(&mut self, delay: Time, cell: &str, rng: &mut StdRng) -> Time {
        let jittered = match self {
            Variability::Gaussian { std } => delay + *std * gaussian(rng),
            Variability::PerCellType(map) => match map.get(cell) {
                Some(std) => delay + *std * gaussian(rng),
                None => delay,
            },
            Variability::Custom(f) => f(delay, cell, rng),
        };
        jittered.max(0.0)
    }
}

impl std::fmt::Debug for Variability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variability::Gaussian { std } => f.debug_struct("Gaussian").field("std", std).finish(),
            Variability::PerCellType(m) => f.debug_tuple("PerCellType").field(m).finish(),
            Variability::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// Standard-normal sample via the Box–Muller transform.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One dispatched batch in a simulation trace (see
/// [`Simulation::with_trace`]): which cell received which simultaneous
/// inputs at what time, the state movement, and the pulses fired.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Arrival time of the batch.
    pub time: Time,
    /// Name of the receiving node's first output wire (the paper's node id).
    pub node_wire: String,
    /// Cell type name (machine name or hole name).
    pub cell: String,
    /// Input port names that pulsed in this batch.
    pub inputs: Vec<String>,
    /// Machine state before the batch (empty for holes).
    pub state_before: String,
    /// Machine state after the batch (empty for holes).
    pub state_after: String,
    /// Output pulses fired: `(output name, absolute time)`.
    pub fired: Vec<(String, Time)>,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={:<8} {:<12} {:<8} in={:?}",
            self.time, self.node_wire, self.cell, self.inputs
        )?;
        if !self.state_before.is_empty() {
            write!(f, " {} -> {}", self.state_before, self.state_after)?;
        }
        if !self.fired.is_empty() {
            write!(f, " fires {:?}", self.fired)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Pulse {
    time: Time,
    node: usize,
    port: usize,
    seq: u64,
}

impl Eq for Pulse {}
impl Ord for Pulse {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (time, node, seq).
        other
            .time
            .total_cmp(&self.time)
            .then(other.node.cmp(&self.node))
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Pulse {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A configured simulation of one [`Circuit`].
///
/// ```
/// use rlse_core::prelude::*;
/// use rlse_core::machine::{EdgeDef, Machine};
///
/// # fn main() -> Result<(), rlse_core::Error> {
/// let jtl = Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
///     src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default()
/// }])?;
/// let mut c = Circuit::new();
/// let a = c.inp_at(&[10.0, 20.0], "A");
/// let q = c.add_machine(&jtl, &[a])?[0];
/// c.inspect(q, "Q");
/// let events = Simulation::new(c).run()?;
/// assert_eq!(events.times("Q"), &[15.0, 25.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    circuit: Circuit,
    until: Option<Time>,
    variability: Option<Variability>,
    seed: u64,
    trace_enabled: bool,
    trace: Vec<TraceEntry>,
    // Reusable per-run buffers (see `reset`): machine configurations, the
    // per-wire event lists, and the pending-pulse heap. Kept on the struct so
    // repeated runs (Monte-Carlo sweeps) reuse their allocations instead of
    // rebuilding them per trial.
    configs: Vec<Option<Config>>,
    wire_events: Vec<Vec<Time>>,
    heap: BinaryHeap<Pulse>,
}

impl Simulation {
    /// Create a simulation over `circuit` with no target time and no
    /// variability.
    pub fn new(circuit: Circuit) -> Self {
        Simulation {
            circuit,
            until: None,
            variability: None,
            seed: 0xC0FFEE,
            trace_enabled: false,
            trace: Vec::new(),
            configs: Vec::new(),
            wire_events: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Simulate only until the given time. Required when the circuit has
    /// feedback loops, which would otherwise generate pulses forever.
    pub fn until(mut self, t: Time) -> Self {
        self.until = Some(t);
        self
    }

    /// Enable firing-delay variability.
    pub fn variability(mut self, v: Variability) -> Self {
        self.variability = Some(v);
        self
    }

    /// Seed the variability RNG for reproducible jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Change the variability RNG seed of an existing simulation (the
    /// in-place counterpart of [`seed`](Self::seed), for reusing one
    /// simulation across many trials).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Change or clear the target time in place.
    pub fn set_until(&mut self, until: Option<Time>) {
        self.until = until;
    }

    /// Change or clear the variability model in place.
    pub fn set_variability(&mut self, v: Option<Variability>) {
        self.variability = v;
    }

    /// Restore the simulation to its pre-run state so it can be run again:
    /// every machine configuration ⟨q, τ_done, Θ⟩ is reset to its initial
    /// value, and the pulse heap, per-wire event lists, and dispatch trace
    /// are emptied — **keeping their allocations** for the next run.
    ///
    /// [`run`](Self::run) calls this automatically on entry, so an explicit
    /// call is only needed to drop stale state eagerly (e.g. after a run
    /// aborted with a timing violation left pulses pending).
    pub fn reset(&mut self) {
        self.trace.clear();
        self.heap.clear();
        let n_nodes = self.circuit.nodes.len();
        self.configs.resize(n_nodes, None);
        for (slot, node) in self.configs.iter_mut().zip(&self.circuit.nodes) {
            *slot = match &node.kind {
                NodeKind::Machine { spec, .. } => Some(spec.initial_config()),
                _ => None,
            };
        }
        let n_wires = self.circuit.wires.len();
        if self.wire_events.len() != n_wires {
            self.wire_events.resize_with(n_wires, Vec::new);
        }
        for evs in &mut self.wire_events {
            evs.clear();
        }
    }

    /// Number of pulses currently pending in the heap (0 outside of `run`
    /// and after a `reset`; nonzero after a run aborted by an error).
    pub fn pending_pulses(&self) -> usize {
        self.heap.len()
    }

    /// Record a [`TraceEntry`] for every dispatched batch; retrieve the log
    /// with [`trace`](Self::trace) after running. Costs one allocation per
    /// batch, so leave it off for benchmarking.
    pub fn with_trace(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// The dispatch log of the most recent [`run`](Self::run), if tracing
    /// was enabled.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Borrow the circuit under simulation.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Take the circuit back out of the simulation.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// Run the simulation to completion (empty pulse heap or target time)
    /// and return the events observed on every named wire.
    ///
    /// Machine configurations are reset on every call, so `run` may be
    /// called repeatedly; note however that hole closures keep whatever
    /// internal state the user function carries.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timing`] if any cell detects a transition-time or
    /// past-constraint violation, with a Figure-13-style diagnostic, or
    /// [`Error::Hole`] if a hole returns the wrong number of outputs.
    pub fn run(&mut self) -> Result<Events, Error> {
        self.circuit.check()?;
        self.reset();
        // Split the struct into disjoint field borrows so the circuit, the
        // reusable buffers, and the variability model can be used together.
        let Simulation {
            circuit,
            until,
            variability,
            seed,
            trace_enabled,
            trace,
            configs,
            wire_events,
            heap,
        } = self;
        let until = *until;
        let trace_enabled = *trace_enabled;
        let mut rng = StdRng::seed_from_u64(*seed);
        let mut seq = 0u64;

        let record_ok = |t: Time, until: Option<Time>| until.is_none_or(|u| t <= u);

        // Seed the heap from stimulus sources.
        for node in circuit.nodes.iter() {
            if let NodeKind::Source { pulses } = &node.kind {
                let wire = node.out_wires[0];
                for &t in pulses {
                    if record_ok(t, until) {
                        wire_events[wire].push(t);
                    }
                    if let Some((sink, port)) = circuit.wires[wire].sink {
                        heap.push(Pulse {
                            time: t,
                            node: sink.0,
                            port,
                            seq,
                        });
                        seq += 1;
                    }
                }
            }
        }

        // Main discrete-event loop.
        while let Some(first) = heap.pop() {
            if let Some(u) = until {
                if first.time > u {
                    break;
                }
            }
            // getSimPulses: gather all pulses with the same (time, node).
            let mut batch = vec![first];
            while let Some(p) = heap.peek() {
                if p.time == first.time && p.node == first.node {
                    batch.push(heap.pop().expect("peeked"));
                } else {
                    break;
                }
            }
            let node_id = NodeId(first.node);
            let node_wire = circuit.node_wire_name(node_id);
            let t = first.time;
            let mut fired: Vec<(usize, Time)> = Vec::new(); // (output port, time)
            let mut trace_entry: Option<TraceEntry> = None;
            match &mut circuit.nodes[first.node].kind {
                NodeKind::Source { .. } => unreachable!("sources receive no pulses"),
                NodeKind::Machine { spec, overrides } => {
                    let cfg = configs[first.node].as_ref().expect("machine config");
                    let state_before = spec.states()[cfg.state.0].clone();
                    let sigmas: Vec<InputId> = batch.iter().map(|p| InputId(p.port)).collect();
                    let (next, outs) = spec.dispatch(cfg, &sigmas, t).map_err(|mut v| {
                        v.node_wire = node_wire.clone();
                        v
                    })?;
                    if trace_enabled {
                        trace_entry = Some(TraceEntry {
                            time: t,
                            node_wire: node_wire.clone(),
                            cell: spec.name().to_string(),
                            inputs: sigmas
                                .iter()
                                .map(|s| spec.inputs()[s.0].clone())
                                .collect(),
                            state_before,
                            state_after: spec.states()[next.state.0].clone(),
                            fired: outs
                                .iter()
                                .map(|(o, t)| (spec.outputs()[o.0].clone(), *t))
                                .collect(),
                        });
                    }
                    configs[first.node] = Some(next);
                    let exempt = overrides.exempt_from_variability;
                    let cell_name = spec.name().to_string();
                    for (oid, t_out) in outs {
                        let t_out = match (variability.as_mut(), exempt) {
                            (Some(v), false) => t + v.apply(t_out - t, &cell_name, &mut rng),
                            _ => t_out,
                        };
                        fired.push((oid.0, t_out));
                    }
                }
                NodeKind::Hole(hole) => {
                    let mut present = vec![false; hole.inputs().len()];
                    for p in &batch {
                        present[p.port] = true;
                    }
                    let outs = hole.call(&present, t);
                    if outs.len() != hole.outputs().len() {
                        return Err(HoleError::ArityMismatch {
                            hole: hole.name().to_string(),
                            expected: hole.outputs().len(),
                            got: outs.len(),
                        }
                        .into());
                    }
                    let delay = hole.delay();
                    let mut hole_fired = Vec::new();
                    for (port, fire) in outs.into_iter().enumerate() {
                        if fire {
                            fired.push((port, t + delay));
                            hole_fired.push((hole.outputs()[port].clone(), t + delay));
                        }
                    }
                    if trace_enabled {
                        trace_entry = Some(TraceEntry {
                            time: t,
                            node_wire: node_wire.clone(),
                            cell: hole.name().to_string(),
                            inputs: batch
                                .iter()
                                .map(|p| hole.inputs()[p.port].clone())
                                .collect(),
                            state_before: String::new(),
                            state_after: String::new(),
                            fired: hole_fired,
                        });
                    }
                }
            }
            if let Some(e) = trace_entry {
                trace.push(e);
            }
            // Deliver fired pulses.
            for (port, t_out) in fired {
                let wire = circuit.nodes[first.node].out_wires[port];
                if record_ok(t_out, until) {
                    wire_events[wire].push(t_out);
                }
                if let Some((sink, sport)) = circuit.wires[wire].sink {
                    heap.push(Pulse {
                        time: t_out,
                        node: sink.0,
                        port: sport,
                        seq,
                    });
                    seq += 1;
                }
            }
        }

        for evs in wire_events.iter_mut() {
            evs.sort_by(f64::total_cmp);
        }
        // Clone keeps the buffers (and their capacity) for the next run.
        Ok(Events::from_wires(circuit, wire_events.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{EdgeDef, Machine};
    use std::sync::Arc;

    fn jtl(delay: f64) -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            delay,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    fn merger() -> Arc<Machine> {
        Machine::new(
            "M",
            &["a", "b"],
            &["q"],
            6.3,
            5,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
                EdgeDef { src: "idle", trigger: "b", dst: "idle", firing: "q", ..Default::default() },
            ],
        )
        .unwrap()
    }

    #[test]
    fn pulses_propagate_through_a_chain() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q1 = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        let q2 = c.add_machine(&jtl(5.0), &[q1]).unwrap()[0];
        c.inspect(q2, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[20.0]);
    }

    #[test]
    fn merger_merges_both_streams() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let b = c.inp_at(&[20.0], "B");
        let q = c.add_machine(&merger(), &[a, b]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[16.3, 26.3, 36.3]);
    }

    #[test]
    fn until_cuts_off_late_pulses() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 100.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c).until(50.0).run().unwrap();
        assert_eq!(ev.times("Q"), &[15.0]);
        assert_eq!(ev.times("A"), &[10.0]);
    }

    #[test]
    fn simultaneous_pulses_are_batched() {
        // Two pulses at the same instant into a merger: both handled, two
        // output pulses at the same time.
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let b = c.inp_at(&[10.0], "B");
        let q = c.add_machine(&merger(), &[a, b]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[16.3, 16.3]);
    }

    #[test]
    fn variability_jitters_delays_reproducibly() {
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0], "A");
            let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let ev1 = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(42)
            .run()
            .unwrap();
        let ev2 = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(42)
            .run()
            .unwrap();
        let ev3 = Simulation::new(build())
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(43)
            .run()
            .unwrap();
        assert_eq!(ev1.times("Q"), ev2.times("Q"));
        assert_ne!(ev1.times("Q"), ev3.times("Q"));
        assert_ne!(ev1.times("Q"), &[15.0]);
        // Jitter is small: within 5 sigma of nominal.
        assert!((ev1.times("Q")[0] - 15.0).abs() < 2.5);
    }

    #[test]
    fn per_cell_variability_only_hits_named_cells() {
        let mut map = std::collections::HashMap::new();
        map.insert("OTHER".to_string(), 1.0);
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c)
            .variability(Variability::PerCellType(map))
            .run()
            .unwrap();
        assert_eq!(ev.times("Q"), &[15.0]);
    }

    #[test]
    fn exempt_instances_skip_variability() {
        use crate::circuit::NodeOverrides;
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let q = c
            .add_machine_with(
                &jtl(5.0),
                &[a],
                NodeOverrides {
                    exempt_from_variability: true,
                    ..Default::default()
                },
            )
            .unwrap()[0];
        c.inspect(q, "Q");
        let ev = Simulation::new(c)
            .variability(Variability::Gaussian { std: 2.0 })
            .run()
            .unwrap();
        assert_eq!(ev.times("Q"), &[15.0]);
    }

    #[test]
    fn hole_arity_mismatch_is_reported() {
        use crate::functional::Hole;
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let h = Hole::new("bad", 1.0, &["a"], &["q"], |_, _| vec![]);
        let q = c.add_hole(h, &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let err = Simulation::new(c).run().unwrap_err();
        assert!(matches!(err, Error::Hole(_)));
    }

    #[test]
    fn timing_violation_includes_node_wire() {
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 11.0], "A");
        let q = c.add_machine(&m, &[a]).unwrap()[0];
        c.inspect(q, "OUT");
        let err = Simulation::new(c).run().unwrap_err();
        match err {
            Error::Timing(v) => {
                assert_eq!(v.node_wire, "OUT");
                assert_eq!(v.inputs, vec!["a".to_string()]);
            }
            e => panic!("expected timing violation, got {e}"),
        }
    }

    #[test]
    fn rerun_reuses_buffers_with_identical_results() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c).with_trace();
        let ev1 = sim.run().unwrap();
        let n_trace = sim.trace().len();
        let ev2 = sim.run().unwrap();
        assert_eq!(ev1, ev2);
        // The trace is rebuilt, not appended to.
        assert_eq!(sim.trace().len(), n_trace);
    }

    #[test]
    fn reset_clears_state_after_error_transition_run() {
        // A fan-in of widely and narrowly spaced pulses: the narrow pair
        // trips the transition-time constraint mid-run, leaving pending
        // pulses in the heap and a partial trace.
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 11.0, 50.0, 90.0], "A");
        let q = c.add_machine(&m, &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c).with_trace();
        sim.run().unwrap_err();
        assert!(sim.pending_pulses() > 0, "error run leaves the heap dirty");
        sim.reset();
        assert_eq!(sim.pending_pulses(), 0);
        assert!(sim.trace().is_empty());
        // The machine configuration ⟨q, τ_done, Θ⟩ is back to initial: the
        // rerun fails at the same place with the same diagnostic instead of
        // carrying stale θ entries over.
        let err1 = format!("{:?}", sim.run().unwrap_err());
        let err2 = format!("{:?}", sim.run().unwrap_err());
        assert_eq!(err1, err2);
    }

    #[test]
    fn reset_clears_state_after_variability_run() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 30.0], "A");
        let q = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
        c.inspect(q, "Q");
        let mut sim = Simulation::new(c)
            .with_trace()
            .variability(Variability::Gaussian { std: 0.5 })
            .seed(9);
        let jittered = sim.run().unwrap();
        assert_ne!(jittered.times("Q"), &[15.0, 35.0]);
        // Same seed on the reused simulation: identical jitter stream.
        assert_eq!(sim.run().unwrap(), jittered);
        // Turn variability off in place: exact nominal times — no leftover
        // heap pulses, RNG state, or machine configurations from the
        // jittered runs can leak into this one.
        sim.set_variability(None);
        let exact = sim.run().unwrap();
        assert_eq!(exact.times("Q"), &[15.0, 35.0]);
        // New seeds change the jittered run again.
        sim.set_variability(Some(Variability::Gaussian { std: 0.5 }));
        sim.set_seed(10);
        assert_ne!(sim.run().unwrap(), jittered);
    }

    #[test]
    fn gaussian_sampler_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
