//! Parallel Monte-Carlo sweeps over a circuit under timing variability
//! (paper §5.2 / Fig. 13 and the Table 2 robustness experiments).
//!
//! The paper's variability analysis needs thousands of independent
//! simulation trials with Gaussian jitter on every propagation delay. A
//! [`Sweep`] fans those trials out across a thread pool while staying
//! **deterministic**: each trial's RNG seed is derived from the master seed
//! with a SplitMix64 finalizer over the trial index, so trial *i* sees the
//! same jitter stream no matter which thread runs it or how many threads
//! exist. Per-trial statistics are reduced on the driving thread in trial
//! order, so the aggregated [`SweepReport`] is **bit-identical** for a given
//! master seed at any thread count.
//!
//! Each worker builds the circuit **once** and then reuses the simulation
//! across its trials via [`Simulation::reset`], which keeps the pulse heap,
//! event buffers, and machine-configuration vector allocated — the hot-path
//! win over the naive rebuild-per-trial loop. Because reset retains the
//! [compiled dispatch tables](crate::compiled) as well, each worker pays
//! circuit compilation exactly once; every trial after the first runs the
//! allocation-free steady-state kernel.
//!
//! ```
//! use rlse_core::prelude::*;
//! use rlse_core::machine::{EdgeDef, Machine};
//! use rlse_core::sweep::Sweep;
//!
//! # fn main() -> Result<(), rlse_core::Error> {
//! let jtl = Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
//!     src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default()
//! }])?;
//! let report = Sweep::over(move || {
//!     let mut c = Circuit::new();
//!     let a = c.inp_at(&[10.0], "A");
//!     let q = c.add_machine(&jtl, &[a]).unwrap()[0];
//!     c.inspect(q, "Q");
//!     c
//! })
//! .variability(|| Variability::Gaussian { std: 0.3 })
//! .trials(256)
//! .master_seed(42)
//! .run();
//! assert_eq!(report.trials, 256);
//! let q = report.output("Q").unwrap();
//! assert!((q.mean - 15.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

use crate::circuit::{Circuit, NodeKind};
use crate::error::{Error, Time};
use crate::events::Events;
use crate::sim::{Simulation, Variability};
use crate::telemetry::Telemetry;

pub mod batch;

pub use batch::BatchSweep;

/// SplitMix64 finalizer: derive the RNG seed of trial `trial` from the
/// sweep's master seed. A pure function of `(master, trial)`, so the
/// assignment of trials to threads cannot perturb any trial's jitter stream.
pub fn trial_seed(master: u64, trial: u64) -> u64 {
    let mut z = master
        .wrapping_add(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Firing-time statistics for one observed output wire, aggregated over
/// every successful trial of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputStats {
    /// The observed wire's name.
    pub name: String,
    /// Total pulses seen on the wire across all successful trials.
    pub pulses: u64,
    /// Mean firing time over those pulses.
    pub mean: Time,
    /// Standard deviation of the firing times.
    pub std: Time,
    /// Earliest firing time seen.
    pub min: Time,
    /// Latest firing time seen.
    pub max: Time,
}

/// The aggregate of one Monte-Carlo sweep (see [`Sweep::run`]).
///
/// Comparable with `==`: two reports from the same circuit builder, trial
/// count, and master seed are bit-identical regardless of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Number of trials executed.
    pub trials: u64,
    /// Trials that simulated cleanly and passed the output check (if any).
    pub ok: u64,
    /// Trials that simulated cleanly but failed the output check.
    pub check_failures: u64,
    /// Trials aborted by a timing violation (an error transition — the
    /// paper's transition-time or past-constraint errors).
    pub timing_violations: u64,
    /// Trials aborted by any other simulation error.
    pub other_errors: u64,
    /// Per-output firing-time statistics, sorted by wire name.
    pub outputs: Vec<OutputStats>,
}

impl SweepReport {
    /// Fraction of trials that did not end in `ok` (0.0 when no trials ran).
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            (self.trials - self.ok) as f64 / self.trials as f64
        }
    }

    /// Statistics for the named output wire, if it was observed.
    pub fn output(&self, name: &str) -> Option<&OutputStats> {
        self.outputs.iter().find(|o| o.name == name)
    }
}

/// Per-trial, per-output accumulator (count/sum/sum-of-squares/min/max).
/// Computed identically for a trial regardless of scheduling, then folded
/// serially in trial order — the key to bit-identical reports.
#[derive(Debug, Clone, Copy)]
struct OutAcc {
    count: u64,
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
}

impl OutAcc {
    fn empty() -> Self {
        OutAcc {
            count: 0,
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn of(times: &[Time]) -> Self {
        let mut acc = OutAcc::empty();
        for &t in times {
            acc.count += 1;
            acc.sum += t;
            acc.sumsq += t * t;
            acc.min = acc.min.min(t);
            acc.max = acc.max.max(t);
        }
        acc
    }

    fn fold(&mut self, other: &OutAcc) {
        self.count += other.count;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// What one trial produced.
#[derive(Debug, Clone)]
enum TrialOutcome {
    /// Clean simulation: per-output stats (aligned with the sweep's sorted
    /// output-name list) and the check verdict.
    Done { per_output: Vec<OutAcc>, check_ok: bool },
    /// Aborted by a timing violation (error transition).
    Timing,
    /// Aborted by any other error.
    Other,
}

impl TrialOutcome {
    fn verdict(&self) -> TrialVerdict {
        match self {
            TrialOutcome::Done { check_ok: true, .. } => TrialVerdict::Ok,
            TrialOutcome::Done { check_ok: false, .. } => TrialVerdict::CheckFailed,
            TrialOutcome::Timing => TrialVerdict::Timing,
            TrialOutcome::Other => TrialVerdict::Other,
        }
    }
}

/// The pass/fail classification of one trial, as exposed by
/// [`Sweep::run_detailed`] and [`BatchSweep::run_detailed`](batch::BatchSweep::run_detailed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialVerdict {
    /// Clean simulation, check passed (or no check installed).
    Ok,
    /// Clean simulation, check failed.
    CheckFailed,
    /// Aborted by a timing violation.
    Timing,
    /// Aborted by any other simulation error.
    Other,
}

/// One trial's full result: its verdict and, for clean trials, every pulse
/// time on every observed output (aligned with [`SweepDetails::names`];
/// empty for aborted trials, whose events are discarded).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialDetail {
    /// The trial index (0-based, the same index [`trial_seed`] consumes).
    pub trial: u64,
    /// How the trial ended.
    pub verdict: TrialVerdict,
    /// Per-output pulse times, one list per name in
    /// [`SweepDetails::names`] order. Empty for aborted trials.
    pub outputs: Vec<Vec<Time>>,
}

/// Per-trial results of a sweep (see [`Sweep::run_detailed`]): the
/// differential-testing view, where every verdict and pulse time is exposed
/// instead of aggregated. Comparable with `==`; equal inputs produce
/// bit-identical details regardless of engine, thread count, or batch
/// width.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDetails {
    /// Observed output names, sorted ascending.
    pub names: Vec<String>,
    /// One entry per trial, in trial order.
    pub trials: Vec<TrialDetail>,
}

/// Why a sweep refused to start (detected on the probe build, before any
/// trial runs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// A [`Variability::PerCellType`] map names cell types that do not
    /// exist in the circuit. Unmatched keys used to be a silent no-op (the
    /// sigma resolver's NaN "no jitter" sentinel), so a typo'd key ran the
    /// whole sweep at σ = 0 with no diagnostic.
    UnknownCellTypes {
        /// The keys with no matching cell type, sorted ascending.
        unmatched: Vec<String>,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownCellTypes { unmatched } => {
                let keys = unmatched
                    .iter()
                    .map(|k| format!("'{k}'"))
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(
                    f,
                    "per-cell-type variability names cell types not present in the \
                     circuit: {keys}"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Check a variability value against the probe circuit before the sweep
/// starts: every key of a [`Variability::PerCellType`] map must name a cell
/// type (machine or hole) that actually occurs in the circuit.
pub(crate) fn validate_variability(
    v: Option<&Variability>,
    probe: &Circuit,
) -> Result<(), SweepError> {
    let Some(Variability::PerCellType(map)) = v else {
        return Ok(());
    };
    let mut cell_types = std::collections::HashSet::new();
    for n in &probe.nodes {
        match &n.kind {
            NodeKind::Machine { spec, .. } => {
                cell_types.insert(spec.name());
            }
            NodeKind::Hole(h) => {
                cell_types.insert(h.name());
            }
            NodeKind::Source { .. } => {}
        }
    }
    let mut unmatched: Vec<String> = map
        .keys()
        .filter(|k| !cell_types.contains(k.as_str()))
        .cloned()
        .collect();
    if unmatched.is_empty() {
        Ok(())
    } else {
        unmatched.sort();
        Err(SweepError::UnknownCellTypes { unmatched })
    }
}

/// The sorted observed-wire name list shared by every trial of a sweep
/// (sorted ascending, which matches the `Events` BTreeMap iteration order).
fn observed_names(probe: &Circuit) -> Vec<String> {
    let mut names: Vec<String> = (0..probe.wire_count())
        .map(|i| probe.wire_at(i))
        .filter(|w| probe.wire_observed(*w))
        .map(|w| probe.wire_name(w).to_string())
        .collect();
    names.sort();
    names
}

/// Serial, trial-ordered reduction of per-trial outcomes into a
/// [`SweepReport`]. Shared by the scalar and batch engines: both feed it
/// outcomes in trial order, so the floating-point accumulation order — and
/// therefore the report — is bitwise-equal whenever the outcomes are.
fn reduce(names: Vec<String>, trials: u64, records: &[TrialOutcome]) -> SweepReport {
    let mut accs: Vec<OutAcc> = vec![OutAcc::empty(); names.len()];
    let (mut ok, mut check_failures, mut timing, mut other) = (0u64, 0u64, 0u64, 0u64);
    for rec in records {
        match rec {
            TrialOutcome::Done {
                per_output,
                check_ok,
            } => {
                if *check_ok {
                    ok += 1;
                } else {
                    check_failures += 1;
                }
                for (acc, one) in accs.iter_mut().zip(per_output) {
                    acc.fold(one);
                }
            }
            TrialOutcome::Timing => timing += 1,
            TrialOutcome::Other => other += 1,
        }
    }

    let outputs = names
        .into_iter()
        .zip(accs)
        .map(|(name, a)| {
            let n = a.count as f64;
            let (mean, std, min, max) = if a.count == 0 {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                let mean = a.sum / n;
                let var = (a.sumsq / n - mean * mean).max(0.0);
                (mean, var.sqrt(), a.min, a.max)
            };
            OutputStats {
                name,
                pulses: a.count,
                mean,
                std,
                min,
                max,
            }
        })
        .collect();

    SweepReport {
        trials,
        ok,
        check_failures,
        timing_violations: timing,
        other_errors: other,
        outputs,
    }
}

/// The boxed per-trial acceptance predicate installed by [`Sweep::check`].
type CheckFn<'a> = Box<dyn Fn(&Events) -> bool + Sync + 'a>;

/// A deterministically-seeded, parallel Monte-Carlo sweep builder.
///
/// See the [module docs](self) for the determinism contract and an example.
pub struct Sweep<'a> {
    build: Box<dyn Fn() -> Circuit + Sync + 'a>,
    variability: Option<Box<dyn Fn() -> Variability + Sync + 'a>>,
    check: Option<CheckFn<'a>>,
    trials: u64,
    master_seed: u64,
    threads: usize,
    until: Option<Time>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for Sweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("trials", &self.trials)
            .field("master_seed", &self.master_seed)
            .field("threads", &self.threads)
            .field("until", &self.until)
            .finish_non_exhaustive()
    }
}

impl<'a> Sweep<'a> {
    /// Start a sweep over the circuit produced by `build`. The builder is
    /// called once per worker thread (not once per trial); it must be
    /// deterministic — every call must produce the same circuit.
    pub fn over(build: impl Fn() -> Circuit + Sync + 'a) -> Self {
        Sweep {
            build: Box::new(build),
            variability: None,
            check: None,
            trials: 100,
            master_seed: 0,
            threads: 0,
            until: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a [`Telemetry`] handle. Every worker's simulation flushes its
    /// counters into it (summed over trials, so the resulting
    /// [`TelemetryReport`](crate::telemetry::TelemetryReport) is
    /// bit-identical at any thread count), workers record per-worker spans
    /// on 1-based timeline tracks, and the sweep itself adds `sweep.*`
    /// counters plus a `sweep.run` span on track 0.
    pub fn telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    /// Set the number of independent trials (default 100).
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Set the master seed from which every trial's RNG stream is derived
    /// (default 0).
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Set the worker thread count. `0` (the default) uses the machine's
    /// available parallelism. The thread count affects wall-clock only,
    /// never the report's contents.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Simulate each trial only until the given time (required for circuits
    /// with feedback loops).
    pub fn until(mut self, t: Time) -> Self {
        self.until = Some(t);
        self
    }

    /// Apply a variability model to every trial. The factory is called once
    /// per trial, so stateful [`Variability::Custom`] closures start fresh
    /// each time.
    pub fn variability(mut self, factory: impl Fn() -> Variability + Sync + 'a) -> Self {
        self.variability = Some(Box::new(factory));
        self
    }

    /// Add a per-trial output check (e.g. "outputs are rank-ordered"); a
    /// clean simulation whose events fail the check counts as a
    /// `check_failure` instead of `ok`.
    pub fn check(mut self, check: impl Fn(&Events) -> bool + Sync + 'a) -> Self {
        self.check = Some(Box::new(check));
        self
    }

    fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        // No point spawning more workers than trials.
        t.min(self.trials.max(1) as usize)
    }

    /// Run one trial on a reusable simulation. Pure in `(sweep, trial)`.
    fn run_trial(&self, sim: &mut Simulation, trial: u64, names: &[String]) -> TrialOutcome {
        sim.set_seed(trial_seed(self.master_seed, trial));
        if let Some(v) = &self.variability {
            sim.set_variability(Some(v()));
        }
        match sim.run() {
            Ok(events) => {
                let per_output = names.iter().map(|n| OutAcc::of(events.times(n))).collect();
                let check_ok = self.check.as_ref().is_none_or(|c| c(&events));
                TrialOutcome::Done {
                    per_output,
                    check_ok,
                }
            }
            Err(Error::Timing(_)) => TrialOutcome::Timing,
            Err(_) => TrialOutcome::Other,
        }
    }

    /// Execute the sweep and aggregate the per-trial results.
    ///
    /// Trials are split into contiguous chunks, one per worker; workers
    /// return their chunk's outcomes, which are folded on the calling thread
    /// in trial order. Floating-point accumulation order is therefore fixed,
    /// making the report bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit (the
    /// per-trial simulation errors are *counted*, not propagated, but a
    /// wiring error on the probe build is a bug in the builder), or if the
    /// sweep configuration is invalid — see [`try_run`](Self::try_run) for
    /// the non-panicking form.
    pub fn run(&self) -> SweepReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run`](Self::run), but invalid sweep configuration (e.g. a
    /// [`Variability::PerCellType`] map naming cell types absent from the
    /// circuit) is reported as a [`SweepError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SweepError::UnknownCellTypes`] when per-cell-type variability keys
    /// do not match any cell type in the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit.
    pub fn try_run(&self) -> Result<SweepReport, SweepError> {
        // Probe build: capture the observed-output name list (sorted, which
        // matches the Events BTreeMap order) shared by every trial.
        let probe = (self.build)();
        probe.check().expect("sweep circuit builder must be valid");
        let v = self.variability.as_ref().map(|f| f());
        validate_variability(v.as_ref(), &probe)?;
        let names = observed_names(&probe);
        drop(probe);

        let t_sweep = self.telemetry.now();
        let threads = self.effective_threads();
        let chunk = (self.trials as usize).div_ceil(threads.max(1)).max(1) as u64;
        let mut records: Vec<TrialOutcome> = Vec::with_capacity(self.trials as usize);
        std::thread::scope(|scope| {
            let names = &names;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = (w as u64) * chunk;
                    let hi = (lo + chunk).min(self.trials);
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity((hi.saturating_sub(lo)) as usize);
                        if lo >= hi {
                            return out;
                        }
                        let mut sim = Simulation::new((self.build)());
                        sim.set_until(self.until);
                        // Workers flush into the shared handle; their
                        // counters are additive over trials, so the merged
                        // totals cannot depend on the trial→worker split.
                        let track = w as u32 + 1;
                        sim.set_telemetry(&self.telemetry);
                        sim.set_telemetry_track(track);
                        let t_worker = self.telemetry.now();
                        for trial in lo..hi {
                            out.push(self.run_trial(&mut sim, trial, names));
                        }
                        if let Some(t0) = t_worker {
                            self.telemetry
                                .record_span("sweep.worker", track, t0, hi - lo);
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                records.extend(h.join().expect("sweep worker panicked"));
            }
        });

        // Serial, trial-ordered reduction.
        let report = reduce(names, self.trials, &records);

        if self.telemetry.is_enabled() {
            // Sweep-level counters come from the serial reduction, so they
            // are as deterministic as the report itself.
            self.telemetry.add_many(&[
                ("sweep.runs", 1),
                ("sweep.trials", self.trials),
                ("sweep.ok", report.ok),
                ("sweep.check_failures", report.check_failures),
                ("sweep.timing_violations", report.timing_violations),
                ("sweep.other_errors", report.other_errors),
            ]);
            if let Some(t0) = t_sweep {
                self.telemetry.record_span("sweep.run", 0, t0, self.trials);
            }
        }

        Ok(report)
    }

    /// Run every trial and return its individual verdict and output pulse
    /// times instead of the aggregate — the reference view the batch
    /// kernel's differential tests compare against.
    ///
    /// Per-trial results are pure functions of `(sweep, trial)` — the
    /// determinism property [`run`](Self::run) parallelizes over — so this
    /// runs serially on the calling thread; thread count cannot change the
    /// outcome, only [`run`]'s wall clock.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit or the
    /// sweep configuration is invalid, as [`run`](Self::run) does.
    pub fn run_detailed(&self) -> SweepDetails {
        self.try_run_detailed().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_detailed`](Self::run_detailed) with invalid sweep configuration
    /// reported as a [`SweepError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SweepError::UnknownCellTypes`] when per-cell-type variability keys
    /// do not match any cell type in the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit builder produces an ill-formed circuit.
    pub fn try_run_detailed(&self) -> Result<SweepDetails, SweepError> {
        let probe = (self.build)();
        probe.check().expect("sweep circuit builder must be valid");
        let v = self.variability.as_ref().map(|f| f());
        validate_variability(v.as_ref(), &probe)?;
        let names = observed_names(&probe);
        drop(probe);

        let mut sim = Simulation::new((self.build)());
        sim.set_until(self.until);
        let mut trials = Vec::with_capacity(self.trials as usize);
        for trial in 0..self.trials {
            sim.set_seed(trial_seed(self.master_seed, trial));
            if let Some(v) = &self.variability {
                sim.set_variability(Some(v()));
            }
            let (verdict, outputs) = match sim.run() {
                Ok(events) => {
                    let outputs: Vec<Vec<Time>> =
                        names.iter().map(|n| events.times(n).to_vec()).collect();
                    let ok = self.check.as_ref().is_none_or(|c| c(&events));
                    (
                        if ok {
                            TrialVerdict::Ok
                        } else {
                            TrialVerdict::CheckFailed
                        },
                        outputs,
                    )
                }
                Err(Error::Timing(_)) => (TrialVerdict::Timing, Vec::new()),
                Err(_) => (TrialVerdict::Other, Vec::new()),
            };
            trials.push(TrialDetail {
                trial,
                verdict,
                outputs,
            });
        }
        Ok(SweepDetails { names, trials })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{EdgeDef, Machine};
    use std::sync::Arc;

    fn jtl(delay: f64) -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            delay,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    fn chain_builder() -> impl Fn() -> Circuit + Sync {
        move || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 30.0], "A");
            let q1 = c.add_machine(&jtl(5.0), &[a]).unwrap()[0];
            let q2 = c.add_machine(&jtl(5.0), &[q1]).unwrap()[0];
            c.inspect(q2, "Q");
            c
        }
    }

    #[test]
    fn sweep_without_variability_is_exact() {
        let report = Sweep::over(chain_builder()).trials(16).run();
        assert_eq!(report.ok, 16);
        assert_eq!(report.failure_rate(), 0.0);
        let q = report.output("Q").unwrap();
        assert_eq!(q.pulses, 32); // 2 pulses × 16 trials
        assert_eq!(q.min, 20.0);
        assert_eq!(q.max, 40.0);
        assert!((q.mean - 30.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_report_across_thread_counts() {
        let sweep = |threads| {
            Sweep::over(chain_builder())
                .variability(|| Variability::Gaussian { std: 0.4 })
                .trials(64)
                .master_seed(7)
                .threads(threads)
                .run()
        };
        let serial = sweep(1);
        let parallel = sweep(4);
        let excessive = sweep(64);
        assert_eq!(serial, parallel);
        assert_eq!(serial, excessive);
    }

    #[test]
    fn different_master_seeds_differ() {
        let sweep = |seed| {
            Sweep::over(chain_builder())
                .variability(|| Variability::Gaussian { std: 0.4 })
                .trials(32)
                .master_seed(seed)
                .run()
        };
        assert_ne!(sweep(1), sweep(2));
    }

    #[test]
    fn per_cell_type_with_unknown_keys_refuses_to_start() {
        let vars = || {
            let mut m = std::collections::HashMap::new();
            m.insert("JTLL".to_string(), 0.4);
            m.insert("DRO".to_string(), 0.2);
            m.insert("JTL".to_string(), 0.1);
            Variability::PerCellType(m)
        };
        let err = Sweep::over(chain_builder())
            .variability(vars)
            .trials(4)
            .try_run()
            .unwrap_err();
        assert_eq!(
            err,
            SweepError::UnknownCellTypes {
                unmatched: vec!["DRO".to_string(), "JTLL".to_string()],
            }
        );
        assert!(err.to_string().contains("'DRO', 'JTLL'"));
        let detailed = Sweep::over(chain_builder())
            .variability(vars)
            .trials(4)
            .try_run_detailed()
            .unwrap_err();
        assert_eq!(detailed, err);
        let build = chain_builder();
        let batch = BatchSweep::over(&build)
            .variability(vars)
            .trials(4)
            .try_run()
            .unwrap_err();
        assert_eq!(batch, err);
    }

    #[test]
    #[should_panic(expected = "per-cell-type variability names cell types")]
    fn run_panics_on_unknown_per_cell_type_keys() {
        let vars = || {
            let mut m = std::collections::HashMap::new();
            m.insert("NO_SUCH_CELL".to_string(), 0.4);
            Variability::PerCellType(m)
        };
        let _ = Sweep::over(chain_builder()).variability(vars).trials(2).run();
    }

    #[test]
    fn per_cell_type_with_matching_keys_runs() {
        let vars = || {
            let mut m = std::collections::HashMap::new();
            m.insert("JTL".to_string(), 0.4);
            Variability::PerCellType(m)
        };
        let report = Sweep::over(chain_builder())
            .variability(vars)
            .trials(8)
            .try_run()
            .unwrap();
        assert_eq!(report.trials, 8);
    }

    #[test]
    fn hole_names_count_as_cell_types_for_variability() {
        use crate::functional::Hole;
        let build = || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0], "A");
            let h = Hole::new("MODEL", 1.0, &["a"], &["q"], |ins: &[bool], _| {
                vec![ins[0]]
            });
            let q = c.add_hole(h, &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        };
        let vars = || {
            let mut m = std::collections::HashMap::new();
            m.insert("MODEL".to_string(), 0.0);
            Variability::PerCellType(m)
        };
        let report = Sweep::over(build)
            .variability(vars)
            .trials(2)
            .try_run()
            .unwrap();
        assert_eq!(report.trials, 2);
    }

    #[test]
    fn check_failures_are_counted() {
        let report = Sweep::over(chain_builder())
            .trials(10)
            .check(|ev| ev.times("Q").len() == 3) // actually 2: always fails
            .run();
        assert_eq!(report.ok, 0);
        assert_eq!(report.check_failures, 10);
        assert_eq!(report.failure_rate(), 1.0);
    }

    #[test]
    fn timing_violations_are_counted_not_propagated() {
        // A machine with a 10 ps transition time fed pulses 1 ps apart
        // violates on every trial.
        let m = Machine::new(
            "DUT",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                transition_time: 10.0,
                ..Default::default()
            }],
        )
        .unwrap();
        let report = Sweep::over(move || {
            let mut c = Circuit::new();
            let a = c.inp_at(&[10.0, 11.0], "A");
            let q = c.add_machine(&m, &[a]).unwrap()[0];
            c.inspect(q, "Q");
            c
        })
        .trials(8)
        .run();
        assert_eq!(report.timing_violations, 8);
        assert_eq!(report.ok, 0);
        assert_eq!(report.failure_rate(), 1.0);
    }

    #[test]
    fn telemetry_report_is_identical_across_thread_counts() {
        let run = |threads| {
            let tel = Telemetry::new();
            Sweep::over(chain_builder())
                .variability(|| Variability::Gaussian { std: 0.4 })
                .trials(64)
                .master_seed(7)
                .threads(threads)
                .telemetry(&tel)
                .run();
            tel.report()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.counter("sweep.trials"), 64);
        assert_eq!(serial.counter("sweep.ok"), 64);
        assert_eq!(serial.counter("sim.runs"), 64);
        assert!(serial.counter("sim.dispatches") > 0);
    }

    #[test]
    fn trial_seed_is_a_bijection_like_mix() {
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|i| trial_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
    }

    #[test]
    fn until_is_applied_to_every_trial() {
        let report = Sweep::over(chain_builder()).trials(4).until(25.0).run();
        let q = report.output("Q").unwrap();
        // Only the first pulse (t=20) fits under until=25.
        assert_eq!(q.pulses, 4);
        assert_eq!(q.max, 20.0);
    }
}
