//! Behavioral "holes" (paper §4.1, Hole Description Level).
//!
//! A [`Hole`] wraps an arbitrary Rust closure in a pulse-communicating
//! interface, so abstract software models can be mixed with transition-based
//! cells for agile development. Holes do not follow the formal PyLSE Machine
//! semantics: on every instant at which at least one input pulse arrives,
//! the wrapped function is called with a boolean per input (true = a pulse is
//! present now) plus the current time, and returns a boolean per output; each
//! true output emits a pulse `delay` time units later.

use crate::error::Time;

/// The function type wrapped by a hole: `(inputs, time) -> outputs`.
pub type HoleFn = Box<dyn FnMut(&[bool], Time) -> Vec<bool> + Send>;

/// A behavioral element with a pulse interface (the `@pylse.hole` decorator).
///
/// ```
/// use rlse_core::functional::Hole;
/// // An "or" hole: emits on q whenever any input pulses.
/// let h = Hole::new("or", 5.0, &["a", "b"], &["q"], |ins, _t| {
///     vec![ins.iter().any(|&p| p)]
/// });
/// assert_eq!(h.delay(), 5.0);
/// ```
pub struct Hole {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    delay: Time,
    func: HoleFn,
}

impl Hole {
    /// Wrap `func` as a pulse-processing element.
    ///
    /// `delay` is the firing delay applied to every emitted output pulse.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite, or if no inputs or no
    /// outputs are given.
    pub fn new<F>(name: &str, delay: Time, inputs: &[&str], outputs: &[&str], func: F) -> Self
    where
        F: FnMut(&[bool], Time) -> Vec<bool> + Send + 'static,
    {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "hole delay must be finite and non-negative"
        );
        assert!(
            !inputs.is_empty() && !outputs.is_empty(),
            "hole must have at least one input and one output"
        );
        Hole {
            name: name.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            delay,
            func: Box::new(func),
        }
    }

    /// The hole's name (used in diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Input port names.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }
    /// Output port names.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }
    /// Firing delay applied to every output pulse.
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// Invoke the wrapped function for one instant.
    pub(crate) fn call(&mut self, inputs: &[bool], time: Time) -> Vec<bool> {
        (self.func)(inputs, time)
    }
}

impl std::fmt::Debug for Hole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hole")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .field("delay", &self.delay)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hole_remembers_state_between_calls() {
        // A toggling hole: emits on every second pulse.
        let mut count = 0u32;
        let mut h = Hole::new("toggle", 1.0, &["a"], &["q"], move |ins, _| {
            if ins[0] {
                count += 1;
            }
            vec![count.is_multiple_of(2) && ins[0]]
        });
        assert_eq!(h.call(&[true], 0.0), vec![false]);
        assert_eq!(h.call(&[true], 1.0), vec![true]);
        assert_eq!(h.call(&[true], 2.0), vec![false]);
    }

    #[test]
    #[should_panic(expected = "delay must be finite")]
    fn negative_delay_panics() {
        let _ = Hole::new("bad", -1.0, &["a"], &["q"], |_, _| vec![false]);
    }

    #[test]
    fn debug_is_nonempty() {
        let h = Hole::new("h", 0.0, &["a"], &["q"], |_, _| vec![false]);
        assert!(format!("{h:?}").contains("Hole"));
    }
}
