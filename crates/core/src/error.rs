//! Error types for cell definition, circuit construction, and simulation.
//!
//! Timing violations reproduce the diagnostic style of the paper's Figure 13:
//! the error names the machine, the offending transition, the trigger time,
//! and — for past-constraint (setup) violations — how recently the
//! constrained input was last seen.

use std::fmt;

/// The time unit used throughout RLSE is picoseconds, represented as `f64`.
pub type Time = f64;

/// Any error produced while defining cells, wiring circuits, or simulating.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A cell definition is ill-formed (paper §4.2, Cell Definition level).
    Definition(DefinitionError),
    /// A circuit is ill-formed (paper §4.2, Circuit Design level).
    Wiring(WiringError),
    /// A timing constraint was violated during simulation (paper Fig. 13).
    Timing(TimingViolation),
    /// A behavioral hole panicked or returned the wrong number of outputs.
    Hole(HoleError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Definition(e) => write!(f, "{e}"),
            Error::Wiring(e) => write!(f, "{e}"),
            Error::Timing(e) => write!(f, "{e}"),
            Error::Hole(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DefinitionError> for Error {
    fn from(e: DefinitionError) -> Self {
        Error::Definition(e)
    }
}
impl From<WiringError> for Error {
    fn from(e: WiringError) -> Self {
        Error::Wiring(e)
    }
}
impl From<TimingViolation> for Error {
    fn from(e: TimingViolation) -> Self {
        Error::Timing(e)
    }
}
impl From<HoleError> for Error {
    fn from(e: HoleError) -> Self {
        Error::Hole(e)
    }
}

/// An ill-formed transition system at the Cell Definition level.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DefinitionError {
    /// Two ports (inputs or outputs) or two states share a name.
    DuplicateName {
        /// Machine being defined.
        machine: String,
        /// The duplicated name.
        name: String,
    },
    /// A transition references a source or destination state that is not
    /// introduced by any transition endpoint.
    UnknownState {
        /// Machine being defined.
        machine: String,
        /// The unknown state name.
        state: String,
    },
    /// A transition's trigger is not a declared input.
    UnknownTrigger {
        /// Machine being defined.
        machine: String,
        /// The unknown trigger name.
        trigger: String,
    },
    /// A transition fires an output that is not declared.
    UnknownOutput {
        /// Machine being defined.
        machine: String,
        /// The unknown output name.
        output: String,
    },
    /// A past constraint references a name that is neither `*` nor an input.
    UnknownConstraintInput {
        /// Machine being defined.
        machine: String,
        /// The unknown constrained-input name.
        input: String,
    },
    /// The machine has no `idle` starting state.
    MissingIdleState {
        /// Machine being defined.
        machine: String,
    },
    /// Some (state, input) pair has no transition: the machine must be fully
    /// specified.
    IncompleteSpecification {
        /// Machine being defined.
        machine: String,
        /// State with the missing transition.
        state: String,
        /// Input with no transition from `state`.
        input: String,
    },
    /// Two transitions leave the same state on the same trigger.
    ConflictingTransitions {
        /// Machine being defined.
        machine: String,
        /// Source state of the conflict.
        state: String,
        /// Trigger with more than one transition.
        input: String,
    },
    /// No transition fires any output, so the cell can never produce a pulse.
    NoFiringTransition {
        /// Machine being defined.
        machine: String,
    },
    /// A numeric field (delay, transition time, constraint distance) is
    /// negative or not finite.
    BadNumericValue {
        /// Machine being defined.
        machine: String,
        /// Which field held the bad value.
        field: String,
        /// The offending value.
        value: f64,
    },
    /// The machine declares no inputs or no outputs.
    NoPorts {
        /// Machine being defined.
        machine: String,
    },
}

impl fmt::Display for DefinitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DefinitionError::*;
        match self {
            DuplicateName { machine, name } => {
                write!(f, "duplicate name '{name}' in definition of FSM '{machine}'")
            }
            UnknownState { machine, state } => {
                write!(f, "FSM '{machine}' references unknown state '{state}'")
            }
            UnknownTrigger { machine, trigger } => write!(
                f,
                "FSM '{machine}' has a transition triggered by '{trigger}', which is not a declared input"
            ),
            UnknownOutput { machine, output } => write!(
                f,
                "FSM '{machine}' fires '{output}', which is not a declared output"
            ),
            UnknownConstraintInput { machine, input } => write!(
                f,
                "FSM '{machine}' constrains past input '{input}', which is not a declared input (use '*' for all inputs)"
            ),
            MissingIdleState { machine } => {
                write!(f, "FSM '{machine}' has no 'idle' starting state")
            }
            IncompleteSpecification { machine, state, input } => write!(
                f,
                "FSM '{machine}' is not fully specified: no transition from state '{state}' on input '{input}'"
            ),
            ConflictingTransitions { machine, state, input } => write!(
                f,
                "FSM '{machine}' has conflicting transitions from state '{state}' on input '{input}'"
            ),
            NoFiringTransition { machine } => write!(
                f,
                "FSM '{machine}' has no transition that fires an output"
            ),
            BadNumericValue { machine, field, value } => write!(
                f,
                "FSM '{machine}' has invalid value {value} for field '{field}' (must be finite and non-negative)"
            ),
            NoPorts { machine } => {
                write!(f, "FSM '{machine}' must declare at least one input and one output")
            }
        }
    }
}

impl std::error::Error for DefinitionError {}

/// An ill-formed circuit at the Full-Circuit Design level.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WiringError {
    /// A wire is read by more than one cell input: SCE outputs have a fanout
    /// of one, and a splitter cell must be used to share a pulse stream.
    FanoutViolation {
        /// The doubly-read wire.
        wire: String,
    },
    /// A wire is already driven by another output.
    AlreadyDriven {
        /// The doubly-driven wire.
        wire: String,
    },
    /// A cell input was left unconnected.
    Unconnected {
        /// The node with the dangling input.
        node: String,
        /// The unconnected port.
        port: String,
    },
    /// A wire handle belongs to a different circuit.
    ForeignWire,
    /// A circuit output wire is also consumed internally.
    OutputConsumed {
        /// The wire in question.
        wire: String,
    },
    /// Two observed wires share a name.
    DuplicateWireName {
        /// The clashing name.
        name: String,
    },
    /// A stimulus schedule is invalid: a NaN/negative start time, or a
    /// non-finite or non-positive period for a multi-pulse train.
    InvalidStimulus {
        /// The stimulus wire being defined.
        wire: String,
        /// Human-readable description of the bad value.
        reason: String,
    },
}

impl fmt::Display for WiringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use WiringError::*;
        match self {
            FanoutViolation { wire } => write!(
                f,
                "wire '{wire}' already has a reader; SCE cells have fanout one, insert a splitter to share it"
            ),
            AlreadyDriven { wire } => write!(f, "wire '{wire}' is already driven by another output"),
            Unconnected { node, port } => {
                write!(f, "input port '{port}' of node '{node}' is unconnected")
            }
            ForeignWire => write!(f, "wire handle belongs to a different circuit"),
            OutputConsumed { wire } => {
                write!(f, "circuit output wire '{wire}' is also consumed internally")
            }
            DuplicateWireName { name } => write!(f, "two observed wires are both named '{name}'"),
            InvalidStimulus { wire, reason } => {
                write!(f, "invalid stimulus on wire '{wire}': {reason}")
            }
        }
    }
}

impl std::error::Error for WiringError {}

/// The reason a machine entered the error state `q_err` (paper Fig. 6).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ViolationKind {
    /// Error-κ Tran: an input arrived at `tau_arr < tau_done`, i.e. during a
    /// transitionary (hold-time) period that ends at `tau_done`.
    TransitionTime {
        /// End of the unstable period that was still in progress.
        tau_done: Time,
    },
    /// Error-κ Cons: a constrained input was seen more recently than the
    /// required distance (setup-time style constraint).
    PastConstraint {
        /// The constrained input that was seen too recently.
        constrained: String,
        /// Required minimum distance `tau_dist`.
        required: Time,
        /// When the constrained input was last seen.
        last_seen: Time,
    },
}

/// A timing violation detected while simulating, carrying enough context to
/// reproduce the paper's Figure 13 diagnostic text.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingViolation {
    /// Name of the machine type, e.g. `AND`.
    pub machine: String,
    /// Name of the output wire identifying the failing node instance (the
    /// paper identifies nodes by their first output wire, e.g. `_0`).
    pub node_wire: String,
    /// Index of the transition whose timing condition failed.
    pub transition: usize,
    /// The input(s) being delivered when the violation occurred.
    pub inputs: Vec<String>,
    /// The arrival time of the offending pulse.
    pub tau_arr: Time,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inputs = self
            .inputs
            .iter()
            .map(|s| format!("'{s}'"))
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            f,
            "Error while sending input(s) {inputs} to the node with output wire '{}': ",
            self.node_wire
        )?;
        match &self.kind {
            ViolationKind::TransitionTime { tau_done } => write!(
                f,
                "Transition time violation on FSM '{}'. A transition triggered at time {} \
                 arrived while transition '{}' was still in progress; the machine is \
                 unstable until {} and receiving any input during this period is illegal.",
                self.machine, self.tau_arr, self.transition, tau_done
            ),
            ViolationKind::PastConstraint {
                constrained,
                required,
                last_seen,
            } => write!(
                f,
                "Prior input violation on FSM '{}'. A constraint on transition '{}', \
                 triggered at time {}, given via the 'past_constraints' field says it is \
                 an error to trigger this transition if input '{}' was seen as recently as \
                 {} time units ago. It was last seen at {}, which is {} time units to soon.",
                self.machine,
                self.transition,
                self.tau_arr,
                constrained,
                required,
                last_seen,
                required - (self.tau_arr - last_seen)
            ),
        }
    }
}

impl std::error::Error for TimingViolation {}

/// An error raised by a behavioral hole.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HoleError {
    /// The user function returned the wrong number of outputs.
    ArityMismatch {
        /// The hole's name.
        hole: String,
        /// Declared number of outputs.
        expected: usize,
        /// Number of outputs actually returned.
        got: usize,
    },
}

impl fmt::Display for HoleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoleError::ArityMismatch { hole, expected, got } => write!(
                f,
                "hole '{hole}' returned {got} outputs, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for HoleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_message_shape() {
        let v = TimingViolation {
            machine: "AND".into(),
            node_wire: "_0".into(),
            transition: 7,
            inputs: vec!["clk".into()],
            tau_arr: 100.0,
            kind: ViolationKind::PastConstraint {
                constrained: "b".into(),
                required: 2.8,
                last_seen: 99.0,
            },
        };
        let msg = v.to_string();
        assert!(msg.starts_with(
            "Error while sending input(s) 'clk' to the node with output wire '_0': Prior input violation on FSM 'AND'."
        ));
        assert!(msg.contains("A constraint on transition '7', triggered at time 100"));
        assert!(msg.contains("input 'b' was seen as recently as 2.8 time units ago"));
        assert!(msg.contains("It was last seen at 99"));
        assert!(msg.contains("1.7999999999999998 time units to soon"));
    }

    #[test]
    fn transition_time_message_shape() {
        let v = TimingViolation {
            machine: "AND".into(),
            node_wire: "q0".into(),
            transition: 0,
            inputs: vec!["a".into()],
            tau_arr: 51.0,
            kind: ViolationKind::TransitionTime { tau_done: 53.0 },
        };
        let msg = v.to_string();
        assert!(msg.contains("Transition time violation on FSM 'AND'"));
        assert!(msg.contains("unstable until 53"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
        assert_err::<DefinitionError>();
        assert_err::<TimingViolation>();
    }

    #[test]
    fn display_is_nonempty_for_all_wiring_variants() {
        let cases: Vec<WiringError> = vec![
            WiringError::FanoutViolation { wire: "w".into() },
            WiringError::AlreadyDriven { wire: "w".into() },
            WiringError::Unconnected {
                node: "n".into(),
                port: "p".into(),
            },
            WiringError::ForeignWire,
            WiringError::OutputConsumed { wire: "w".into() },
            WiringError::DuplicateWireName { name: "w".into() },
            WiringError::InvalidStimulus {
                wire: "w".into(),
                reason: "r".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
